"""Tests for UncertainObject and UncertainDataset (S3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
)
from repro.objects import UncertainDataset, UncertainObject, objects_dim


class TestUncertainObject:
    def test_moment_caching_matches_distribution(self, mixed_cluster):
        for obj in mixed_cluster:
            assert np.allclose(obj.mu, obj.distribution.mean_vector)
            assert np.allclose(obj.mu2, obj.distribution.second_moment_vector)
            assert np.allclose(
                obj.sigma2, obj.distribution.variance_vector, atol=1e-12
            )

    def test_total_variance_is_l1_norm(self, mixed_cluster):
        for obj in mixed_cluster:
            assert obj.total_variance == pytest.approx(obj.sigma2.sum())

    def test_from_point_zero_variance(self):
        obj = UncertainObject.from_point([1.0, 2.0], label=3)
        assert obj.total_variance == 0.0
        assert obj.label == 3
        assert np.allclose(obj.mu, [1.0, 2.0])

    def test_uniform_box_constructor(self):
        obj = UncertainObject.uniform_box([0.0, 0.0], [1.0, 2.0])
        assert np.allclose(obj.mu, [0.0, 0.0])
        assert obj.sigma2[0] == pytest.approx(4.0 / 12.0)
        assert obj.sigma2[1] == pytest.approx(16.0 / 12.0)

    def test_gaussian_constructor_mean_preserved(self):
        obj = UncertainObject.gaussian([1.0, -1.0], [0.5, 0.2], mass=0.95)
        assert np.allclose(obj.mu, [1.0, -1.0], atol=1e-9)
        # Truncation shrinks variance below the parent's.
        assert obj.sigma2[0] < 0.25

    def test_moments_read_only(self):
        obj = UncertainObject.from_point([1.0])
        with pytest.raises(ValueError):
            obj.mu[0] = 9.0

    def test_sampling_passthrough(self):
        obj = UncertainObject.uniform_box([0.0], [1.0])
        samples = obj.sample(100, seed=0)
        assert samples.shape == (100, 1)
        assert np.all(np.abs(samples) <= 1.0)

    def test_repr_contains_label(self):
        obj = UncertainObject.from_point([1.0], label=2)
        assert "label=2" in repr(obj)

    def test_objects_dim(self, mixed_cluster):
        assert objects_dim(mixed_cluster) == 2

    def test_objects_dim_empty(self):
        with pytest.raises(EmptyDatasetError):
            objects_dim([])

    def test_objects_dim_mismatch(self):
        objs = [
            UncertainObject.from_point([0.0]),
            UncertainObject.from_point([0.0, 1.0]),
        ]
        with pytest.raises(DimensionMismatchError):
            objects_dim(objs)


class TestUncertainDataset:
    def test_stacked_views(self, mixed_dataset, mixed_cluster):
        assert mixed_dataset.mu_matrix.shape == (5, 2)
        for idx, obj in enumerate(mixed_cluster):
            assert np.allclose(mixed_dataset.mu_matrix[idx], obj.mu)
            assert np.allclose(mixed_dataset.sigma2_matrix[idx], obj.sigma2)
            assert mixed_dataset.total_variances[idx] == pytest.approx(
                obj.total_variance
            )

    def test_sequence_protocol(self, mixed_dataset):
        assert len(mixed_dataset) == 5
        assert mixed_dataset[0] is mixed_dataset.objects[0]
        assert len(list(iter(mixed_dataset))) == 5

    def test_slicing_returns_dataset(self, mixed_dataset):
        sliced = mixed_dataset[1:4]
        assert isinstance(sliced, UncertainDataset)
        assert len(sliced) == 3

    def test_labels_present_only_when_all_labeled(self, blob_dataset):
        assert blob_dataset.labels is not None
        assert blob_dataset.n_classes == 3
        unlabeled = UncertainDataset(
            [UncertainObject.from_point([0.0]), UncertainObject.from_point([1.0])]
        )
        assert unlabeled.labels is None
        assert unlabeled.n_classes is None

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            UncertainDataset([])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            UncertainDataset(
                [
                    UncertainObject.from_point([0.0]),
                    UncertainObject.from_point([0.0, 1.0]),
                ]
            )

    def test_subset(self, blob_dataset):
        sub = blob_dataset.subset([0, 5, 10])
        assert len(sub) == 3
        assert sub[0] is blob_dataset[0]

    def test_subset_empty_rejected(self, blob_dataset):
        with pytest.raises(EmptyDatasetError):
            blob_dataset.subset([])

    def test_sample_fraction_stratified_keeps_all_classes(self, blob_dataset):
        sub = blob_dataset.sample_fraction(0.2, seed=0, stratified=True)
        assert sub.n_classes == blob_dataset.n_classes
        assert len(sub) < len(blob_dataset)

    def test_sample_fraction_full_is_identity(self, blob_dataset):
        assert blob_dataset.sample_fraction(1.0) is blob_dataset

    def test_sample_fraction_invalid(self, blob_dataset):
        with pytest.raises(InvalidParameterError):
            blob_dataset.sample_fraction(0.0)
        with pytest.raises(InvalidParameterError):
            blob_dataset.sample_fraction(1.5)

    def test_from_points(self):
        pts = np.array([[0.0, 1.0], [2.0, 3.0]])
        ds = UncertainDataset.from_points(pts, labels=[0, 1])
        assert len(ds) == 2
        assert np.allclose(ds.mu_matrix, pts)
        assert np.all(ds.total_variances == 0.0)
        assert list(ds.labels) == [0, 1]

    def test_from_points_label_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            UncertainDataset.from_points(np.zeros((2, 2)), labels=[0])

    def test_views_read_only(self, mixed_dataset):
        with pytest.raises(ValueError):
            mixed_dataset.mu_matrix[0, 0] = 99.0
