"""Tests for the UCPC algorithm (Algorithm 1, Propositions 4-5)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.clustering import UCPC, ClusterStatsMatrix, UKMeans
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects import UncertainDataset, UncertainObject


class TestBasics:
    def test_produces_k_clusters(self, blob_dataset):
        result = UCPC(n_clusters=3).fit(blob_dataset, seed=0)
        assert result.n_clusters == 3
        assert result.labels.shape == (len(blob_dataset),)
        assert np.all(result.labels >= 0)

    def test_every_cluster_nonempty(self, blob_dataset):
        result = UCPC(n_clusters=5).fit(blob_dataset, seed=1)
        counts = np.bincount(result.labels, minlength=5)
        assert np.all(counts > 0)

    def test_reproducible_with_seed(self, blob_dataset):
        a = UCPC(n_clusters=3).fit(blob_dataset, seed=7)
        b = UCPC(n_clusters=3).fit(blob_dataset, seed=7)
        assert np.array_equal(a.labels, b.labels)
        assert a.objective == pytest.approx(b.objective)

    def test_recovers_separated_blobs(self):
        """Local search from a random partition can stall in a local
        minimum; the best of a few restarts must recover the structure
        (the paper likewise averages 50 runs)."""
        data = make_blobs_uncertain(
            n_objects=120, n_clusters=3, separation=8.0, seed=3
        )
        best = max(
            f_measure(UCPC(n_clusters=3).fit(data, seed=s).labels, data.labels)
            for s in range(5)
        )
        assert best > 0.95

    def test_kmeanspp_recovers_blobs_single_run(self):
        data = make_blobs_uncertain(
            n_objects=120, n_clusters=3, separation=8.0, seed=3
        )
        result = UCPC(n_clusters=3, init="kmeans++").fit(data, seed=0)
        assert f_measure(result.labels, data.labels) > 0.95

    def test_kmeanspp_init(self, blob_dataset):
        result = UCPC(n_clusters=3, init="kmeans++").fit(blob_dataset, seed=0)
        assert result.n_clusters == 3
        assert result.converged

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            UCPC(n_clusters=3, init="bogus")
        with pytest.raises(InvalidParameterError):
            UCPC(n_clusters=3, max_iter=0)
        with pytest.raises(InvalidParameterError):
            UCPC(n_clusters=3, min_improvement=-1.0)

    def test_k_larger_than_n_rejected(self, mixed_dataset):
        with pytest.raises(InvalidParameterError):
            UCPC(n_clusters=10).fit(mixed_dataset, seed=0)

    def test_k_equals_n(self, mixed_dataset):
        result = UCPC(n_clusters=len(mixed_dataset)).fit(mixed_dataset, seed=0)
        assert result.n_clusters == len(mixed_dataset)

    def test_k_equals_one(self, blob_dataset):
        result = UCPC(n_clusters=1).fit(blob_dataset, seed=0)
        assert result.n_clusters == 1


class TestProposition4Convergence:
    def test_objective_monotonically_nonincreasing(self, blob_dataset):
        """Proposition 4: each sweep cannot increase the objective."""
        result = UCPC(n_clusters=4).fit(blob_dataset, seed=2)
        history = result.objective_history
        assert len(history) >= 2
        for prev, curr in zip(history, history[1:]):
            assert curr <= prev + 1e-6 * max(1.0, abs(prev))

    def test_converges_and_flags_it(self, blob_dataset):
        result = UCPC(n_clusters=3, max_iter=200).fit(blob_dataset, seed=0)
        assert result.converged
        assert result.n_iterations <= 200

    def test_max_iter_cap_warns(self, blob_dataset):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            UCPC(n_clusters=4, max_iter=1).fit(blob_dataset, seed=5)
        assert any(issubclass(w.category, ConvergenceWarning) for w in caught)

    def test_final_objective_matches_labels(self, blob_dataset):
        """The reported objective equals J recomputed from the labels."""
        result = UCPC(n_clusters=3).fit(blob_dataset, seed=4)
        stats = ClusterStatsMatrix.from_assignment(
            blob_dataset, result.labels, 3
        )
        assert result.objective == pytest.approx(stats.total_objective())


class TestBehaviour:
    def test_not_worse_than_ukmeans_objective(self):
        """On the shared decomposition J = sum_var/|C| + J_UK, UCPC's local
        search (best of a few restarts) should find an objective at least
        as good as evaluating J on the UK-means partition."""
        data = make_blobs_uncertain(
            n_objects=150, n_clusters=3, separation=7.0, seed=9
        )
        best_ucpc = min(
            UCPC(n_clusters=3).fit(data, seed=s).objective for s in range(5)
        )
        ukm = UKMeans(n_clusters=3).fit(data, seed=9)
        ukm_stats = ClusterStatsMatrix.from_assignment(data, ukm.labels, 3)
        assert best_ucpc <= ukm_stats.total_objective() + 1e-6

    def test_variance_aware_assignment(self):
        """UCPC's objective is variance-aware where UK-means' is not.

        Two clusters of point masses: L (8 objects at -2) and R (2 objects
        at +2); a middle object M at 0 with variance v.  Adding M to a
        cluster of n points at distance d costs
        ``Delta = v/(n+1) + v + n d^2/(n+1)``, so

            Delta_L - Delta_R = v (1/9 - 1/3) + d^2 (8/9 - 2/3)

        is negative (L wins) iff v > d^2.  The preferred cluster therefore
        *flips with the variance of M* — a distinction invisible to the
        UK-means criterion, for which M is exactly tied either way.
        """
        from repro.clustering import ClusterStats

        left = [UncertainObject.from_point([-2.0]) for _ in range(8)]
        right = [UncertainObject.from_point([2.0]) for _ in range(2)]

        def total_j(middle_obj, join_left):
            l_stats = ClusterStats.from_objects(
                left + ([middle_obj] if join_left else [])
            )
            r_stats = ClusterStats.from_objects(
                right + ([] if join_left else [middle_obj])
            )
            return l_stats.objective() + r_stats.objective()

        # High variance (v = 12 > d^2 = 4): the larger cluster is cheaper.
        high_var = UncertainObject.uniform_box([0.0], [6.0])
        assert total_j(high_var, join_left=True) < total_j(high_var, join_left=False)
        # Low variance (v ~ 0.03 < 4): the smaller cluster is cheaper.
        low_var = UncertainObject.uniform_box([0.0], [0.3])
        assert total_j(low_var, join_left=False) < total_j(low_var, join_left=True)
        # UK-means sees an exact tie in both cases (equal distance to both
        # centroids regardless of variance): Eq. (8)'s variance term is a
        # per-object constant.
        from repro.objects.distance import expected_distance_to_point

        for obj in (high_var, low_var):
            d_left = expected_distance_to_point(obj, [-2.0])
            d_right = expected_distance_to_point(obj, [2.0])
            assert d_left == pytest.approx(d_right)

    def test_runtime_recorded(self, blob_dataset):
        result = UCPC(n_clusters=3).fit(blob_dataset, seed=0)
        assert result.runtime_seconds > 0.0

    def test_works_on_point_mass_data(self):
        """Deterministic data: UCPC reduces to K-means-like behaviour."""
        pts = np.vstack(
            [
                np.random.default_rng(0).normal(-5, 0.3, size=(20, 2)),
                np.random.default_rng(1).normal(5, 0.3, size=(20, 2)),
            ]
        )
        labels = [0] * 20 + [1] * 20
        data = UncertainDataset.from_points(pts, labels)
        result = UCPC(n_clusters=2).fit(data, seed=0)
        assert f_measure(result.labels, data.labels) == pytest.approx(1.0)
