"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import make_blobs_uncertain
from repro.objects import UncertainDataset, UncertainObject
from repro.uncertainty import (
    IndependentProduct,
    TruncatedExponentialDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)


@pytest.fixture
def rng():
    """A deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def blob_dataset():
    """Small, well-separated 3-cluster uncertain dataset."""
    return make_blobs_uncertain(
        n_objects=60, n_clusters=3, n_attributes=2, separation=5.0, seed=42
    )


@pytest.fixture
def mixed_cluster():
    """A heterogeneous cluster mixing all three pdf families."""
    objects = [
        UncertainObject(
            IndependentProduct(
                [
                    UniformDistribution(0.0, 2.0),
                    TruncatedNormalDistribution(1.0, 0.5, -0.5, 2.5),
                ]
            )
        ),
        UncertainObject(
            IndependentProduct(
                [
                    TruncatedExponentialDistribution(0.5, 2.0, cutoff=3.0),
                    UniformDistribution(-1.0, 1.0),
                ]
            )
        ),
        UncertainObject.gaussian([2.0, -1.0], [0.3, 0.8], mass=0.95),
        UncertainObject.uniform_box([0.5, 0.5], [1.0, 0.25]),
        UncertainObject.from_point([1.5, 0.0]),
    ]
    return objects


@pytest.fixture
def mixed_dataset(mixed_cluster):
    """The mixed cluster wrapped as a dataset."""
    return UncertainDataset(mixed_cluster)


def random_uncertain_objects(rng, n, dim, families=("uniform", "normal", "exponential")):
    """Helper: n random uncertain objects of dimension dim.

    Importable from tests via ``from tests.conftest import
    random_uncertain_objects`` — used by property-style loops that need
    diverse objects without hypothesis overhead.
    """
    objects = []
    for _ in range(n):
        marginals = []
        for _ in range(dim):
            family = families[rng.integers(0, len(families))]
            center = float(rng.normal(0.0, 5.0))
            scale = float(rng.uniform(0.1, 2.0))
            if family == "uniform":
                marginals.append(UniformDistribution.centered(center, scale))
            elif family == "normal":
                marginals.append(
                    TruncatedNormalDistribution.central_mass(center, scale, 0.95)
                )
            else:
                direction = 1 if rng.random() < 0.5 else -1
                marginals.append(
                    TruncatedExponentialDistribution.with_mean(
                        center, 1.0 / scale, direction=direction, mass=0.95
                    )
                )
        objects.append(UncertainObject(IndependentProduct(marginals)))
    return objects
