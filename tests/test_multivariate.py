"""Tests for the multivariate distributions: products, mixtures, empirical,
point masses, and the numerical moment cross-checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.uncertainty import (
    EmpiricalDistribution,
    IndependentProduct,
    MixtureDistribution,
    MultivariatePointMass,
    TruncatedNormalDistribution,
    UniformDistribution,
    monte_carlo_moments,
)


def _product_2d():
    return IndependentProduct(
        [
            UniformDistribution(0.0, 2.0),
            TruncatedNormalDistribution(1.0, 0.5, -0.5, 2.5),
        ]
    )


class TestIndependentProduct:
    def test_moments_are_concatenated_marginals(self):
        prod = _product_2d()
        assert prod.mean_vector[0] == pytest.approx(1.0)
        assert prod.mean_vector[1] == pytest.approx(1.0)
        assert prod.variance_vector[0] == pytest.approx(4.0 / 12.0)

    def test_region_is_support_box(self):
        prod = _product_2d()
        assert np.allclose(prod.region.lower, [0.0, -0.5])
        assert np.allclose(prod.region.upper, [2.0, 2.5])

    def test_pdf_is_product_of_marginals(self):
        prod = _product_2d()
        pt = np.array([[1.0, 1.0]])
        expected = (
            prod.marginal(0).pdf(np.array([1.0]))[0]
            * prod.marginal(1).pdf(np.array([1.0]))[0]
        )
        assert prod.pdf(pt)[0] == pytest.approx(expected)

    def test_pdf_zero_outside_region(self):
        prod = _product_2d()
        assert prod.pdf(np.array([[-1.0, 1.0]]))[0] == 0.0

    def test_pdf_accepts_1d_point(self):
        prod = _product_2d()
        assert prod.pdf(np.array([1.0, 1.0])).shape == (1,)

    def test_sampling_inside_region(self):
        prod = _product_2d()
        samples = prod.sample(500, seed=0)
        assert samples.shape == (500, 2)
        for row in samples:
            assert prod.region.contains(row, atol=1e-9)

    def test_monte_carlo_moments_agree(self):
        prod = _product_2d()
        estimate = monte_carlo_moments(prod, n_samples=60000, seed=3)
        assert np.allclose(estimate.mean_vector, prod.mean_vector, atol=0.02)
        assert np.allclose(
            estimate.second_moment_vector, prod.second_moment_vector, atol=0.05
        )

    def test_total_variance_is_sum(self):
        prod = _product_2d()
        assert prod.total_variance == pytest.approx(prod.variance_vector.sum())

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            IndependentProduct([])


class TestMixtureDistribution:
    def _components(self):
        return [
            IndependentProduct([UniformDistribution(0.0, 1.0)]),
            IndependentProduct([UniformDistribution(2.0, 4.0)]),
        ]

    def test_lemma2_moments(self):
        """Mixture moments are averages of component moments (Lemma 2)."""
        mix = MixtureDistribution(self._components())
        assert mix.mean_vector[0] == pytest.approx(0.5 * (0.5 + 3.0))
        mu2 = 0.5 * (1.0 / 3.0 + (4 + 8 + 16) / 3.0)
        assert mix.second_moment_vector[0] == pytest.approx(mu2)

    def test_region_is_union_box(self):
        mix = MixtureDistribution(self._components())
        assert mix.region.lower[0] == 0.0
        assert mix.region.upper[0] == 4.0

    def test_weighted_mixture(self):
        mix = MixtureDistribution(self._components(), weights=[0.25, 0.75])
        assert mix.mean_vector[0] == pytest.approx(0.25 * 0.5 + 0.75 * 3.0)

    def test_pdf_is_weighted_average(self):
        mix = MixtureDistribution(self._components())
        # x = 0.5 lies only in the first component (height 1.0).
        assert mix.pdf(np.array([[0.5]]))[0] == pytest.approx(0.5)
        # x = 3 lies only in the second (height 0.5).
        assert mix.pdf(np.array([[3.0]]))[0] == pytest.approx(0.25)

    def test_sampling_respects_weights(self):
        mix = MixtureDistribution(self._components(), weights=[0.2, 0.8])
        samples = mix.sample(5000, seed=0)
        in_second = np.mean(samples[:, 0] >= 2.0)
        assert in_second == pytest.approx(0.8, abs=0.03)

    def test_invalid_weights(self):
        with pytest.raises(InvalidParameterError):
            MixtureDistribution(self._components(), weights=[0.5, 0.6])
        with pytest.raises(InvalidParameterError):
            MixtureDistribution(self._components(), weights=[-0.5, 1.5])

    def test_dim_mismatch_rejected(self):
        comps = [
            IndependentProduct([UniformDistribution(0, 1)]),
            IndependentProduct(
                [UniformDistribution(0, 1), UniformDistribution(0, 1)]
            ),
        ]
        with pytest.raises(InvalidParameterError):
            MixtureDistribution(comps)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            MixtureDistribution([])


class TestEmpiricalDistribution:
    def test_moments_are_sample_moments(self):
        samples = np.array([[0.0, 0.0], [2.0, 4.0]])
        emp = EmpiricalDistribution(samples)
        assert np.allclose(emp.mean_vector, [1.0, 2.0])
        assert np.allclose(emp.second_moment_vector, [2.0, 8.0])

    def test_weighted_moments(self):
        samples = np.array([[0.0], [4.0]])
        emp = EmpiricalDistribution(samples, weights=[3.0, 1.0])
        assert emp.mean_vector[0] == pytest.approx(1.0)

    def test_region_is_bounding_box(self):
        emp = EmpiricalDistribution(np.array([[0.0, 5.0], [2.0, -1.0]]))
        assert np.allclose(emp.region.lower, [0.0, -1.0])
        assert np.allclose(emp.region.upper, [2.0, 5.0])

    def test_bootstrap_sampling(self):
        emp = EmpiricalDistribution(np.array([[1.0], [2.0], [3.0]]))
        draws = emp.sample(1000, seed=0)
        assert set(np.unique(draws)).issubset({1.0, 2.0, 3.0})

    def test_pmf_of_exact_match(self):
        emp = EmpiricalDistribution(np.array([[1.0], [1.0], [3.0]]))
        assert emp.pdf(np.array([[1.0]]))[0] == pytest.approx(2.0 / 3.0)
        assert emp.pdf(np.array([[2.0]]))[0] == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            EmpiricalDistribution(np.empty((0, 2)))
        with pytest.raises(InvalidParameterError):
            EmpiricalDistribution(np.array([[1.0]]), weights=[-1.0])
        with pytest.raises(InvalidParameterError):
            EmpiricalDistribution(np.array([[1.0]]), weights=[0.0])


class TestMultivariatePointMass:
    def test_moments(self):
        pm = MultivariatePointMass([1.0, -2.0])
        assert np.allclose(pm.mean_vector, [1.0, -2.0])
        assert pm.total_variance == 0.0

    def test_samples_constant(self):
        pm = MultivariatePointMass([1.0, -2.0])
        samples = pm.sample(7, seed=0)
        assert samples.shape == (7, 2)
        assert np.all(samples == [1.0, -2.0])

    def test_region_degenerate(self):
        pm = MultivariatePointMass([0.5])
        assert pm.region.volume == 0.0
