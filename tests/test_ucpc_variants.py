"""Tests for the UCPC ablation variants (VarianceOnly, UCPC-Lloyd)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import UCPC, UCPCLloyd, VarianceOnlyClustering
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import InvalidParameterError
from repro.objects import UncertainDataset, UncertainObject


@pytest.fixture(scope="module")
def blobs():
    return make_blobs_uncertain(
        n_objects=90, n_clusters=3, separation=7.0, seed=41
    )


class TestVarianceOnly:
    def test_produces_k_nonempty_clusters(self, blobs):
        result = VarianceOnlyClustering(n_clusters=3).fit(blobs, seed=0)
        assert np.all(np.bincount(result.labels, minlength=3) > 0)

    def test_objective_monotone(self, blobs):
        result = VarianceOnlyClustering(n_clusters=3).fit(blobs, seed=1)
        history = result.objective_history
        for prev, curr in zip(history, history[1:]):
            assert curr <= prev + 1e-12 * max(1.0, abs(prev))

    def test_position_blindness(self):
        """The rejected criterion ignores positions entirely: translating
        one object's mean arbitrarily far does not change its objective."""
        base = [
            UncertainObject.uniform_box([0.0], [w]) for w in (0.5, 1.0, 2.0, 3.0)
        ]
        # Moderate shifts: large enough to dominate any positional
        # criterion, small enough that the cached moments (mu2 - mu^2)
        # keep full precision.
        shifted = [
            UncertainObject.uniform_box([1e3 * i], [w])
            for i, w in enumerate((0.5, 1.0, 2.0, 3.0))
        ]
        r1 = VarianceOnlyClustering(n_clusters=2).fit(
            UncertainDataset(base), seed=3
        )
        r2 = VarianceOnlyClustering(n_clusters=2).fit(
            UncertainDataset(shifted), seed=3
        )
        assert r1.objective == pytest.approx(r2.objective)
        assert np.array_equal(r1.labels, r2.labels)

    def test_worse_than_ucpc_on_positional_structure(self, blobs):
        ucpc_f = max(
            f_measure(UCPC(3).fit(blobs, seed=s).labels, blobs.labels)
            for s in range(3)
        )
        var_f = max(
            f_measure(
                VarianceOnlyClustering(3).fit(blobs, seed=s).labels,
                blobs.labels,
            )
            for s in range(3)
        )
        assert ucpc_f > var_f

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            VarianceOnlyClustering(n_clusters=2, max_iter=0)

    def test_theorem2_objective_value(self):
        """Final objective equals sum_C |C|^-2 sum_o sigma^2(o)."""
        data = make_blobs_uncertain(n_objects=30, n_clusters=2, seed=5)
        result = VarianceOnlyClustering(n_clusters=2).fit(data, seed=5)
        total = 0.0
        for members in result.clusters():
            var_sum = sum(data[i].total_variance for i in members)
            total += var_sum / len(members) ** 2
        assert result.objective == pytest.approx(total)


class TestUCPCLloyd:
    def test_produces_k_clusters(self, blobs):
        result = UCPCLloyd(n_clusters=3).fit(blobs, seed=0)
        assert result.n_clusters == 3

    def test_reaches_comparable_objective(self, blobs):
        """Batch and relocation minimize the same J; their best-of-3
        objectives should land in the same ballpark."""
        reloc = min(UCPC(3).fit(blobs, seed=s).objective for s in range(3))
        batch = min(UCPCLloyd(3).fit(blobs, seed=s).objective for s in range(3))
        assert batch == pytest.approx(reloc, rel=0.5)

    def test_objective_matches_labels(self, blobs):
        from repro.clustering import ClusterStatsMatrix

        result = UCPCLloyd(n_clusters=3).fit(blobs, seed=2)
        stats = ClusterStatsMatrix.from_assignment(blobs, result.labels, 3)
        assert result.objective == pytest.approx(stats.total_objective())

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            UCPCLloyd(n_clusters=2, max_iter=0)

    def test_reproducible(self, blobs):
        a = UCPCLloyd(n_clusters=3).fit(blobs, seed=7)
        b = UCPCLloyd(n_clusters=3).fit(blobs, seed=7)
        assert np.array_equal(a.labels, b.labels)
