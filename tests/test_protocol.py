"""Tests for the Case-1/Case-2 Theta protocol (S19)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import UCPC, UKMeans
from repro.datagen import UncertaintyGenerator, make_classification_like
from repro.evaluation import evaluate_theta, evaluate_theta_multirun
from repro.exceptions import InvalidParameterError
from repro.objects.distance import pairwise_squared_expected_distances


@pytest.fixture(scope="module")
def pair():
    points, labels = make_classification_like(
        60, 2, 3, separation=5.0, seed=11
    )
    gen = UncertaintyGenerator(family="normal", spread=0.8)
    return gen.generate(points, labels, seed=11)


class TestEvaluateTheta:
    def test_result_fields(self, pair):
        outcome = evaluate_theta(UCPC(n_clusters=3), pair, seed=0)
        assert 0.0 <= outcome.f_case1 <= 1.0
        assert 0.0 <= outcome.f_case2 <= 1.0
        assert -1.0 <= outcome.theta <= 1.0
        assert -1.0 <= outcome.quality <= 1.0
        assert outcome.runtime_case2 >= 0.0

    def test_theta_is_difference(self, pair):
        outcome = evaluate_theta(UKMeans(n_clusters=3), pair, seed=1)
        assert outcome.theta == pytest.approx(
            outcome.f_case2 - outcome.f_case1
        )

    def test_precomputed_distances(self, pair):
        distances = pairwise_squared_expected_distances(pair.uncertain)
        a = evaluate_theta(UCPC(n_clusters=3), pair, seed=2, distances=distances)
        b = evaluate_theta(UCPC(n_clusters=3), pair, seed=2)
        assert a.quality == pytest.approx(b.quality)
        assert a.theta == pytest.approx(b.theta)

    def test_requires_labels(self):
        points, _ = make_classification_like(20, 2, 2, seed=0)
        gen = UncertaintyGenerator()
        unlabeled = gen.generate(points, seed=0)
        with pytest.raises(InvalidParameterError):
            evaluate_theta(UCPC(n_clusters=2), unlabeled, seed=0)

    def test_reproducible(self, pair):
        a = evaluate_theta(UCPC(n_clusters=3), pair, seed=5)
        b = evaluate_theta(UCPC(n_clusters=3), pair, seed=5)
        assert a.theta == pytest.approx(b.theta)


class TestMultirun:
    def test_averaging_fields(self, pair):
        outcome = evaluate_theta_multirun(
            UCPC(n_clusters=3), pair, n_runs=3, seed=0
        )
        assert outcome.n_runs == 3
        assert -1.0 <= outcome.theta_mean <= 1.0
        assert outcome.theta_std >= 0.0
        assert outcome.runtime_mean >= 0.0

    def test_single_run_zero_std(self, pair):
        outcome = evaluate_theta_multirun(
            UCPC(n_clusters=3), pair, n_runs=1, seed=1
        )
        assert outcome.theta_std == 0.0

    def test_invalid_runs(self, pair):
        with pytest.raises(InvalidParameterError):
            evaluate_theta_multirun(UCPC(n_clusters=3), pair, n_runs=0)

    def test_mean_matches_manual_average(self, pair):
        from repro.utils.rng import spawn_rngs

        outcome = evaluate_theta_multirun(
            UKMeans(n_clusters=3), pair, n_runs=3, seed=9
        )
        distances = pairwise_squared_expected_distances(pair.uncertain)
        manual = [
            evaluate_theta(
                UKMeans(n_clusters=3), pair, s, distances
            ).theta
            for s in spawn_rngs(9, 3)
        ]
        assert outcome.theta_mean == pytest.approx(float(np.mean(manual)))
