"""End-to-end integration tests across the full library stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    UCPC,
    UCentroid,
    UKMeans,
    UncertaintyGenerator,
    evaluate_theta,
    f_measure,
    internal_scores,
    make_benchmark,
    make_microarray,
)
from repro.clustering import j_ucpc
from repro.experiments.reporting import (
    PaperArtifacts,
    render_markdown,
    write_experiments_report,
)


class TestFullPipeline:
    """The paper's whole evaluation loop on one small dataset."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        points, labels = make_benchmark("iris", seed=3)
        generator = UncertaintyGenerator(family="normal", spread=1.0)
        pair = generator.generate(points, labels, seed=3)
        return points, labels, pair

    def test_benchmark_shapes(self, pipeline):
        points, labels, pair = pipeline
        assert points.shape == (150, 4)
        assert len(pair.uncertain) == 150

    def test_theta_protocol_runs(self, pipeline):
        _, _, pair = pipeline
        outcome = evaluate_theta(UCPC(n_clusters=3), pair, seed=0)
        assert -1.0 <= outcome.theta <= 1.0
        assert -1.0 <= outcome.quality <= 1.0

    def test_ucpc_objective_decomposition_holds_at_scale(self, pipeline):
        """Theorem 3 checked on a real clustering outcome: the reported
        objective equals the sum of the definitional J over the clusters."""
        _, _, pair = pipeline
        result = UCPC(n_clusters=3).fit(pair.uncertain, seed=1)
        total = sum(
            j_ucpc([pair.uncertain[i] for i in members])
            for members in result.clusters()
        )
        assert result.objective == pytest.approx(total, rel=1e-6)

    def test_ucentroids_of_fitted_clusters(self, pipeline):
        _, _, pair = pipeline
        result = UCPC(n_clusters=3).fit(pair.uncertain, seed=2)
        for members in result.clusters():
            centroid = UCentroid([pair.uncertain[i] for i in members])
            assert centroid.region.contains(centroid.mu, atol=1e-6)
            samples = centroid.sample(50, seed=0)
            assert samples.shape == (50, 4)

    def test_internal_scores_stable_across_calls(self, pipeline):
        _, _, pair = pipeline
        result = UKMeans(n_clusters=3).fit(pair.uncertain, seed=4)
        a = internal_scores(pair.uncertain, result.labels)
        b = internal_scores(pair.uncertain, result.labels)
        assert a.quality == pytest.approx(b.quality)


class TestMicroarrayPipeline:
    def test_cluster_and_score(self):
        genes = make_microarray("leukaemia", scale=0.005, seed=9)
        result = UCPC(n_clusters=5).fit(genes, seed=9)
        scores = internal_scores(genes, result.labels)
        assert -1.0 <= scores.quality <= 1.0
        assert result.n_clusters == 5

    def test_modules_recoverable_with_f_measure(self):
        genes = make_microarray("neuroblastoma", scale=0.01, seed=10)
        k = int(np.unique(genes.labels).size)
        best = max(
            f_measure(UCPC(k).fit(genes, seed=s).labels, genes.labels)
            for s in range(3)
        )
        assert best > 0.5


class TestReporting:
    @pytest.fixture(scope="class")
    def artifacts(self):
        from repro.experiments import (
            ExperimentConfig,
            run_figure4,
            run_figure5,
            run_table2,
            run_table3,
        )

        tiny = ExperimentConfig(
            scale=0.5, max_objects=60, n_runs=1, seed=1, n_samples=8
        )
        return PaperArtifacts(
            table2=run_table2(
                tiny, datasets=("iris",), families=("normal",),
                algorithms=("UKM", "UCPC"),
            ),
            table3=run_table3(
                ExperimentConfig(scale=0.003, n_runs=1, seed=1, n_samples=8),
                datasets=("neuroblastoma",),
                cluster_counts=(2,),
                algorithms=("UKM", "UCPC"),
            ),
            figure4=run_figure4(
                ExperimentConfig(
                    scale=0.01, max_objects=60, n_runs=1, seed=1, n_samples=8
                ),
                datasets=("abalone",),
                slow_group=("UKmed",),
                fast_group=("UKM",),
                n_clusters=3,
            ),
            figure5=run_figure5(
                ExperimentConfig(n_runs=1, seed=1, n_samples=8),
                fractions=(0.5, 1.0),
                algorithms=("UKM", "UCPC"),
                base_size=120,
            ),
        )

    def test_render_markdown_contains_all_sections(self, artifacts):
        text = render_markdown(artifacts, preamble="# Report")
        for heading in ("Table 2", "Table 3", "Figure 4", "Figure 5"):
            assert heading in text
        assert text.startswith("# Report")

    def test_write_report(self, artifacts, tmp_path):
        out = write_experiments_report(tmp_path / "report.md", artifacts)
        assert out.exists()
        assert "Table 2" in out.read_text()
