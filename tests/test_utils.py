"""Tests for the utils subpackage: rng, validation, numeric, timer, tables."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.utils import (
    Stopwatch,
    check_finite_array,
    check_positive,
    check_probability,
    ensure_matrix,
    ensure_rng,
    ensure_vector,
    format_table,
    kahan_sum,
    relative_error,
    safe_sqrt,
    spawn_rngs,
    stable_norm_sq,
    timed,
)
from repro.utils.numeric import improved, is_close
from repro.utils.validation import check_int_range


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_invalid_seed_type(self):
        with pytest.raises(InvalidParameterError):
            ensure_rng("seed")

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(7, 3)
        draws = [s.random(4) for s in streams]
        assert not np.array_equal(draws[0], draws[1])
        # Re-spawning from the same seed reproduces the streams.
        again = [s.random(4) for s in spawn_rngs(7, 3)]
        for a, b in zip(draws, again):
            assert np.array_equal(a, b)

    def test_spawn_from_generator(self):
        streams = spawn_rngs(np.random.default_rng(0), 2)
        assert len(streams) == 2

    def test_spawn_negative_count(self):
        with pytest.raises(InvalidParameterError):
            spawn_rngs(0, -1)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []


class TestValidation:
    def test_ensure_vector_conversions(self):
        vec = ensure_vector([1, 2, 3])
        assert vec.dtype == np.float64
        assert vec.shape == (3,)

    def test_ensure_vector_scalar_promoted(self):
        assert ensure_vector(2.0).shape == (1,)

    def test_ensure_vector_dim_check(self):
        with pytest.raises(DimensionMismatchError):
            ensure_vector([1.0, 2.0], dim=3)

    def test_ensure_vector_rejects_matrix(self):
        with pytest.raises(InvalidParameterError):
            ensure_vector(np.zeros((2, 2)))

    def test_ensure_vector_nan_always_rejected(self):
        with pytest.raises(InvalidParameterError):
            ensure_vector([np.nan], allow_infinite=True)

    def test_ensure_vector_infinite_toggle(self):
        with pytest.raises(InvalidParameterError):
            ensure_vector([np.inf])
        assert ensure_vector([np.inf], allow_infinite=True)[0] == np.inf

    def test_ensure_matrix(self):
        mat = ensure_matrix([[1, 2], [3, 4]])
        assert mat.shape == (2, 2)
        # 1-D input becomes a single row.
        assert ensure_matrix([1.0, 2.0]).shape == (1, 2)

    def test_ensure_matrix_cols_check(self):
        with pytest.raises(DimensionMismatchError):
            ensure_matrix([[1.0, 2.0]], cols=3)

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(InvalidParameterError):
            check_positive(0.0, "x")
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(InvalidParameterError):
            check_positive(-1.0, "x", strict=False)
        with pytest.raises(InvalidParameterError):
            check_positive(np.inf, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(InvalidParameterError):
            check_probability(-0.1, "p")
        with pytest.raises(InvalidParameterError):
            check_probability(1.1, "p")

    def test_check_finite_array(self):
        check_finite_array(np.array([1.0, 2.0]))
        with pytest.raises(InvalidParameterError):
            check_finite_array(np.array([np.inf]))

    def test_check_int_range(self):
        assert check_int_range(5, "k", low=1, high=10) == 5
        with pytest.raises(InvalidParameterError):
            check_int_range(0, "k", low=1)
        with pytest.raises(InvalidParameterError):
            check_int_range(11, "k", high=10)
        with pytest.raises(InvalidParameterError):
            check_int_range(1.5, "k")


class TestNumeric:
    def test_kahan_sum_accuracy(self):
        # 1 + 1e-16 * 1e16 loses everything with naive float addition order.
        values = [1e16] + [1.0] * 10000 + [-1e16]
        assert kahan_sum(values) == pytest.approx(10000.0)

    def test_stable_norm_sq(self):
        assert stable_norm_sq(np.array([3.0, 4.0])) == pytest.approx(25.0)

    def test_safe_sqrt(self):
        assert safe_sqrt(4.0) == 2.0
        assert safe_sqrt(-1e-12) == 0.0
        with pytest.raises(ValueError):
            safe_sqrt(-1.0)

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.1, 0.0) == pytest.approx(0.1)

    def test_is_close(self):
        assert is_close(1.0, 1.0 + 1e-12)
        assert not is_close(1.0, 1.1)

    def test_improved(self):
        assert improved(0.9, 1.0)
        assert not improved(1.0 - 1e-15, 1.0)
        assert not improved(1.1, 1.0)


class TestTimer:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.running():
            time.sleep(0.01)
        first = watch.elapsed_seconds
        assert first >= 0.009
        with watch.running():
            time.sleep(0.01)
        assert watch.elapsed_seconds > first

    def test_stopwatch_reset(self):
        watch = Stopwatch()
        with watch.running():
            pass
        watch.reset()
        assert watch.elapsed_seconds == 0.0

    def test_double_start_is_noop(self):
        watch = Stopwatch()
        watch.start()
        watch.start()
        watch.stop()
        assert watch.elapsed_seconds >= 0.0

    def test_elapsed_ms(self):
        watch = Stopwatch(elapsed_seconds=0.5)
        assert watch.elapsed_ms == pytest.approx(500.0)

    def test_timed(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0


class TestTables:
    def test_basic_rendering(self):
        text = format_table(
            [["iris", 0.5], ["wine", 0.25]], headers=["data", "score"]
        )
        assert "data" in text
        assert "0.500" in text
        assert "0.250" in text

    def test_none_renders_dash(self):
        text = format_table([[None, 1.0]])
        assert "-" in text

    def test_title(self):
        text = format_table([[1]], title="Table X")
        assert text.startswith("Table X")

    def test_float_format(self):
        text = format_table([[0.123456]], float_fmt=".1f")
        assert "0.1" in text
        assert "0.123" not in text

    def test_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_alignment(self):
        text = format_table([["a", 1.0], ["long-name", 2.0]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])
