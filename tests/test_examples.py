"""Smoke tests: every example script must run end-to-end.

The examples are part of the public deliverable; running them in-process
(with a stubbed ``__name__``) catches API drift the moment it happens.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "sensor_network.py",
    "microarray_clustering.py",
    "paper_figures.py",
    "moving_objects_fleet.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example missing: {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_reproduce_paper_help():
    """The reproduction driver must at least parse its CLI."""
    path = EXAMPLES_DIR / "reproduce_paper.py"
    old_argv = sys.argv
    sys.argv = ["reproduce_paper.py", "--help"]
    try:
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path(str(path), run_name="__main__")
        assert excinfo.value.code == 0
    finally:
        sys.argv = old_argv
