"""Numerical verification of every theoretical result in the paper (E7).

Covers Lemma 1, Propositions 1-3, Theorems 2-3 and the figures'
qualitative claims (variance-blindness of J_UK, failure of the
variance-only criterion), on deterministic constructions and on random
clusters drawn from all three pdf families.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import random_uncertain_objects

from repro.centroids import UCentroid
from repro.clustering import (
    j_hat,
    j_mm,
    j_uk,
    j_uk_lemma1,
    j_ucpc,
    j_ucpc_closed_form,
    sum_of_variances,
)
from repro.objects import UncertainObject


def _uniform_cluster(centers, half_widths):
    return [
        UncertainObject.uniform_box(c, h) for c, h in zip(centers, half_widths)
    ]


class TestLemma1:
    def test_juk_equals_lemma1_form(self, mixed_cluster):
        assert j_uk(mixed_cluster) == pytest.approx(j_uk_lemma1(mixed_cluster))

    def test_random_clusters(self, rng):
        for _ in range(10):
            cluster = random_uncertain_objects(rng, int(rng.integers(2, 9)), 3)
            assert j_uk(cluster) == pytest.approx(j_uk_lemma1(cluster), rel=1e-9)


class TestProposition1:
    """J_UK equality does not imply cluster-variance equality (Figure 1)."""

    def test_same_juk_different_variance(self):
        """The proof's construction: equal sum(mu), equal sum(mu2),
        different sum(mu^2) => equal J_UK, different cluster variance.

        Cluster A: means {0, 2}, half-width h each.
        Cluster B: means {1, 1}, half-width h' with h'^2 = h^2 + 3 so that
        sum(mu2) matches (sum mu^2 drops from 4 to 2, variances absorb it).
        """
        h = 0.6
        h_prime = np.sqrt(h * h + 3.0)
        cluster_a = _uniform_cluster(
            centers=[[0.0], [2.0]], half_widths=[[h], [h]]
        )
        cluster_b = _uniform_cluster(
            centers=[[1.0], [1.0]], half_widths=[[h_prime], [h_prime]]
        )
        assert j_uk(cluster_a) == pytest.approx(j_uk(cluster_b))
        # ... yet the cluster variances differ by 2 (the mean-spread that
        # J_UK cannot see):
        assert sum_of_variances(cluster_b) - sum_of_variances(
            cluster_a
        ) == pytest.approx(2.0)
        # The UCPC objective J *does* separate them:
        assert j_ucpc(cluster_a) != pytest.approx(j_ucpc(cluster_b))

    def test_figure1_scenario_jук_blind_to_variance(self):
        """Same central tendency, different variance => same J_UK shape.

        Figure 1's clusters share expected values; J_UK differs only via
        the sum of mu2 = sum of variances + fixed mean terms, so two
        clusters whose *total* variance is equal are indistinguishable to
        J_UK no matter how the variance is distributed — whereas J (UCPC)
        with different cardinalities weights it by 1/|C|.
        """
        compact = _uniform_cluster(
            centers=[[0.0], [1.0], [2.0]], half_widths=[[0.2]] * 3
        )
        spread = _uniform_cluster(
            centers=[[0.0], [1.0], [2.0]], half_widths=[[1.2]] * 3
        )
        # J_UK *does* grow with variance, but only through the aggregate:
        assert j_uk(spread) > j_uk(compact)
        # The UCPC objective grows strictly faster (extra sum_var/|C| term):
        gap_ucpc = j_ucpc(spread) - j_ucpc(compact)
        gap_uk = j_uk(spread) - j_uk(compact)
        assert gap_ucpc > gap_uk


class TestProposition2:
    """J_MM(C) = |C|^-1 J_UK(C)."""

    def test_mixed_cluster(self, mixed_cluster):
        assert j_mm(mixed_cluster) == pytest.approx(
            j_uk(mixed_cluster) / len(mixed_cluster)
        )

    def test_random_clusters(self, rng):
        for _ in range(20):
            size = int(rng.integers(1, 12))
            cluster = random_uncertain_objects(rng, size, int(rng.integers(1, 5)))
            assert j_mm(cluster) == pytest.approx(
                j_uk(cluster) / size, rel=1e-8, abs=1e-10
            )


class TestProposition3:
    """Ĵ(C) = 2|C| J_MM(C) = 2 J_UK(C)."""

    def test_mixed_cluster(self, mixed_cluster):
        assert j_hat(mixed_cluster) == pytest.approx(2.0 * j_uk(mixed_cluster))
        assert j_hat(mixed_cluster) == pytest.approx(
            2.0 * len(mixed_cluster) * j_mm(mixed_cluster)
        )

    def test_random_clusters(self, rng):
        for _ in range(20):
            cluster = random_uncertain_objects(rng, int(rng.integers(1, 10)), 2)
            assert j_hat(cluster) == pytest.approx(
                2.0 * j_uk(cluster), rel=1e-8, abs=1e-10
            )


class TestTheorem2:
    """sigma^2(C̄) = |C|^-2 sum_i sigma^2(o_i)."""

    def test_random_clusters(self, rng):
        for _ in range(15):
            size = int(rng.integers(1, 10))
            cluster = random_uncertain_objects(rng, size, 3)
            centroid = UCentroid(cluster)
            assert centroid.total_variance == pytest.approx(
                sum_of_variances(cluster) / size**2, rel=1e-8, abs=1e-12
            )

    def test_figure2_variance_only_criterion_fails(self):
        """Minimizing U-centroid variance alone picks the wrong cluster.

        Figure 2: cluster (a) = far-apart low-variance objects; cluster
        (b) = co-located higher-variance objects.  (b) is the better
        cluster, but the variance-only criterion prefers (a).
        """
        far_low_var = _uniform_cluster(
            centers=[[-5.0], [5.0]], half_widths=[[0.1], [0.1]]
        )
        close_high_var = _uniform_cluster(
            centers=[[0.0], [0.2]], half_widths=[[1.0], [1.0]]
        )
        var_a = UCentroid(far_low_var).total_variance
        var_b = UCentroid(close_high_var).total_variance
        assert var_a < var_b  # variance-only criterion prefers (a)...
        assert j_ucpc(close_high_var) < j_ucpc(far_low_var)  # ...J prefers (b)


class TestTheorem3:
    """J(C) = sum_j(Psi/|C| + Phi - Upsilon/|C|) = sum_var/|C| + J_UK."""

    def test_closed_form_equals_definition(self, mixed_cluster):
        assert j_ucpc(mixed_cluster) == pytest.approx(
            j_ucpc_closed_form(mixed_cluster)
        )

    def test_decomposition_into_variance_plus_juk(self, mixed_cluster):
        n = len(mixed_cluster)
        expected = sum_of_variances(mixed_cluster) / n + j_uk(mixed_cluster)
        assert j_ucpc(mixed_cluster) == pytest.approx(expected)

    def test_random_clusters(self, rng):
        for _ in range(20):
            size = int(rng.integers(1, 12))
            cluster = random_uncertain_objects(rng, size, int(rng.integers(1, 4)))
            definition = j_ucpc(cluster)
            closed = j_ucpc_closed_form(cluster)
            decomposition = sum_of_variances(cluster) / size + j_uk(cluster)
            assert definition == pytest.approx(closed, rel=1e-8, abs=1e-10)
            assert definition == pytest.approx(decomposition, rel=1e-8, abs=1e-10)

    @given(
        means=st.lists(
            st.floats(min_value=-20, max_value=20), min_size=2, max_size=8
        ),
        widths=st.lists(
            st.floats(min_value=0.01, max_value=5), min_size=2, max_size=8
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_theorem3_property_uniform_objects(self, means, widths):
        size = min(len(means), len(widths))
        cluster = [
            UncertainObject.uniform_box([means[i]], [widths[i]])
            for i in range(size)
        ]
        definition = j_ucpc(cluster)
        closed = j_ucpc_closed_form(cluster)
        assert definition == pytest.approx(closed, rel=1e-7, abs=1e-8)
        assert definition >= -1e-9  # J is a sum of expected squared distances


class TestObjectiveEdgeCases:
    def test_all_objectives_reject_empty(self):
        from repro.exceptions import EmptyClusterError

        for fn in (j_uk, j_mm, j_hat, j_ucpc, j_ucpc_closed_form, sum_of_variances):
            with pytest.raises(EmptyClusterError):
                fn([])

    def test_singleton_point_mass_gives_zero(self):
        cluster = [UncertainObject.from_point([1.0, 2.0])]
        assert j_uk(cluster) == 0.0
        assert j_mm(cluster) == 0.0
        assert j_ucpc(cluster) == pytest.approx(0.0)

    def test_singleton_uncertain_object(self):
        obj = UncertainObject.uniform_box([0.0], [1.0])
        # J({o}) = ÊD(o, o-as-centroid) = 2 * sigma^2(o) / ... check via
        # Theorem 3: sum_var/1 + J_UK = sigma^2 + sigma^2 = 2 sigma^2.
        assert j_ucpc([obj]) == pytest.approx(2.0 * obj.total_variance)
