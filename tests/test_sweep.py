"""Tests for the paper-grid sweep orchestrator (repro.engine.sweep).

The orchestrator's whole contract is invisibility plus persistence: a
sweep cell must equal the corresponding direct-runner cell bit for bit
(on every backend), a resumed store must be byte-identical to an
uninterrupted one, damaged cell files must be detected and re-run, and
each dataset's off-line caches (moment matrices, sampling plan, pairwise
ÊD matrix) must be built exactly once across the whole grid.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine.sweep import (
    Figure4Spec,
    Figure5Spec,
    SweepGrid,
    Table2Spec,
    Table3Spec,
    cell_id,
    run_sweep,
)
from repro.exceptions import SweepStoreError
from repro.experiments import (
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_table2,
    run_table3,
)

T2_AXES = dict(
    datasets=("iris",), families=("normal",), algorithms=("UKM", "UKmed")
)
T3_AXES = dict(
    datasets=("neuroblastoma",),
    cluster_counts=(2, 3),
    algorithms=("UKmed", "MMV"),
)


def _configs(seed=5, backend="serial", n_jobs=1, batch_size=1, n_runs=2):
    common = dict(
        n_runs=n_runs,
        n_samples=8,
        seed=seed,
        backend=backend,
        n_jobs=n_jobs,
        batch_size=batch_size,
    )
    return (
        ExperimentConfig(scale=0.12, max_objects=40, **common),
        ExperimentConfig(scale=0.004, **common),
    )


def _grid(seed=5, backend="serial", n_jobs=1, batch_size=1):
    cfg2, cfg3 = _configs(seed, backend, n_jobs, batch_size)
    return SweepGrid(
        table2=Table2Spec(config=cfg2, **T2_AXES),
        table3=Table3Spec(config=cfg3, **T3_AXES),
    )


def _direct_reports(seed=5):
    """The reference values: direct serial runner invocations."""
    cfg2, cfg3 = _configs(seed)
    return (
        run_table2(cfg2, **T2_AXES),
        run_table3(cfg3, **T3_AXES),
    )


def _assert_matches_direct(outcome, table2, table3):
    for key, cell in table2.cells.items():
        sweep_cell = outcome.table2.cells[key]
        assert sweep_cell.theta == cell.theta, key
        assert sweep_cell.quality == cell.quality, key
    for key, quality in table3.quality.items():
        assert outcome.table3.quality[key] == quality, key


def _tree_bytes(root: Path):
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted(Path(root).rglob("*"))
        if path.is_file()
    }


class TestSweepEquivalence:
    """Satellite 1: sweep cells ≡ direct runner cells, per backend."""

    def test_20_seed_bit_identity_serial(self, tmp_path):
        for seed in range(20):
            outcome = run_sweep(_grid(seed=seed), tmp_path / f"s{seed}")
            table2, table3 = _direct_reports(seed)
            _assert_matches_direct(outcome, table2, table3)

    @pytest.mark.parametrize(
        "backend,n_jobs,batch_size",
        [("threads", 3, 1), ("threads", 2, "auto"), ("auto", 2, 1)],
    )
    def test_parallel_backend_bit_identity(
        self, tmp_path, backend, n_jobs, batch_size
    ):
        """Backends and chunkings are result-invariant, so a sweep on
        any of them must still equal the direct *serial* reference."""
        for seed in (0, 7, 123):
            outcome = run_sweep(
                _grid(seed=seed, backend=backend, n_jobs=n_jobs,
                      batch_size=batch_size),
                tmp_path / f"{backend}-{batch_size}-{seed}",
            )
            table2, table3 = _direct_reports(seed)
            _assert_matches_direct(outcome, table2, table3)

    def test_processes_backend_bit_identity(self, tmp_path):
        """The process pool (shared-memory publication, group block
        registry) is the costly path — one seed keeps the test fast."""
        outcome = run_sweep(
            _grid(seed=7, backend="processes", n_jobs=2),
            tmp_path / "processes",
        )
        table2, table3 = _direct_reports(7)
        _assert_matches_direct(outcome, table2, table3)

    def test_figure_surfaces_match_direct_structure(self, tmp_path):
        """Figure cells store measured runtimes (not deterministic), so
        the sweep pins structure: same cell keys, same deterministic
        subset sizes, positive runtimes."""
        cfg = ExperimentConfig(
            scale=0.02, max_objects=60, n_runs=1, n_samples=8, seed=3
        )
        grid = SweepGrid(
            figure4=Figure4Spec(config=cfg, datasets=("abalone",)),
            figure5=Figure5Spec(
                config=cfg,
                fractions=(0.25, 1.0),
                algorithms=("UKM", "MMV"),
                base_size=1500,
            ),
        )
        outcome = run_sweep(grid, tmp_path / "figures")
        direct4 = run_figure4(cfg, datasets=("abalone",))
        direct5 = run_figure5(
            cfg,
            fractions=(0.25, 1.0),
            algorithms=("UKM", "MMV"),
            base_size=1500,
        )
        assert set(outcome.figure4.runtimes_ms) == set(direct4.runtimes_ms)
        assert all(v > 0 for v in outcome.figure4.runtimes_ms.values())
        assert outcome.figure5.sizes == direct5.sizes
        assert set(outcome.figure5.runtimes_ms) == set(direct5.runtimes_ms)
        assert all(v > 0 for v in outcome.figure5.runtimes_ms.values())


class TestResume:
    """Satellite 3: kill mid-grid, resume, byte-identical store."""

    def _interrupted_store(self, store, kill_after, monkeypatch):
        """Run the grid but die after ``kill_after`` table2 cells."""
        import repro.experiments.table2 as table2_module

        original = table2_module.run_table2_cell
        calls = {"count": 0}

        def bomb(*args, **kwargs):
            if calls["count"] >= kill_after:
                raise KeyboardInterrupt("simulated kill")
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(table2_module, "run_table2_cell", bomb)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(_grid(), store)
        monkeypatch.setattr(table2_module, "run_table2_cell", original)

    def test_mid_group_kill_then_resume_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        clean = tmp_path / "clean"
        run_sweep(_grid(), clean)
        # Kill after 1 of the 2 table2 cells: the resume must replay the
        # completed cell's seed consumption so the second cell (and all
        # of table3) still sees the uninterrupted streams.
        killed = tmp_path / "killed"
        self._interrupted_store(killed, kill_after=1, monkeypatch=monkeypatch)
        outcome = run_sweep(_grid(), killed, resume=True)
        assert len(outcome.reused) == 1
        assert len(outcome.executed) == 5
        assert _tree_bytes(clean) == _tree_bytes(killed)
        table2, table3 = _direct_reports()
        _assert_matches_direct(outcome, table2, table3)

    def test_undamaged_resume_reuses_everything(self, tmp_path):
        store = tmp_path / "store"
        first = run_sweep(_grid(), store)
        again = run_sweep(_grid(), store, resume=True)
        assert not again.executed
        assert sorted(again.reused) == sorted(
            first.executed
        )
        table2, table3 = _direct_reports()
        _assert_matches_direct(again, table2, table3)

    def test_corrupted_and_partial_cells_detected_and_rerun(self, tmp_path):
        clean = tmp_path / "clean"
        run_sweep(_grid(), clean)
        damaged = tmp_path / "damaged"
        run_sweep(_grid(), damaged)
        truncated = damaged / "cells" / (
            cell_id("table2", ("iris", "normal"), ("UKM",)) + ".json"
        )
        truncated.write_text(truncated.read_text()[:25])  # broken JSON
        partial = damaged / "cells" / (
            cell_id("table3", ("neuroblastoma",), ("k2", "UKmed")) + ".json"
        )
        partial.write_text(json.dumps({"status": "running"}))  # no values
        outcome = run_sweep(_grid(), damaged, resume=True)
        assert sorted(outcome.invalid) == sorted(
            [truncated.stem, partial.stem]
        )
        assert sorted(outcome.executed) == sorted(outcome.invalid)
        assert _tree_bytes(clean) == _tree_bytes(damaged)

    def test_stale_seed_fingerprint_reruns_cell(self, tmp_path):
        """A cell whose recorded seed state no longer matches the
        replayed schedule is re-run, not silently reused.  (A fully
        cached group is reused wholesale on the manifest's authority,
        so the group must be partially complete for the per-cell
        fingerprint walk to engage — here a sibling cell is missing.)"""
        clean = tmp_path / "clean"
        run_sweep(_grid(), clean)
        store = tmp_path / "stale"
        run_sweep(_grid(), store)
        stale = store / "cells" / (
            cell_id("table2", ("iris", "normal"), ("UKmed",)) + ".json"
        )
        payload = json.loads(stale.read_text())
        payload["seed_state"] = "0" * 40
        stale.write_text(json.dumps(payload))
        missing = store / "cells" / (
            cell_id("table2", ("iris", "normal"), ("UKM",)) + ".json"
        )
        missing.unlink()
        outcome = run_sweep(_grid(), store, resume=True)
        assert outcome.invalid == [stale.stem]
        assert sorted(outcome.executed) == sorted(
            [stale.stem, missing.stem]
        )
        assert _tree_bytes(clean) == _tree_bytes(store)


class TestStoreSafety:
    def test_refuses_existing_results_without_resume(self, tmp_path):
        store = tmp_path / "store"
        run_sweep(_grid(), store)
        with pytest.raises(SweepStoreError, match="resume"):
            run_sweep(_grid(), store)

    def test_refuses_store_from_different_grid(self, tmp_path):
        store = tmp_path / "store"
        run_sweep(_grid(seed=5), store)
        with pytest.raises(SweepStoreError, match="different grid"):
            run_sweep(_grid(seed=6), store, resume=True)

    def test_refuses_unrelated_non_empty_directory(self, tmp_path):
        target = tmp_path / "notastore"
        target.mkdir()
        (target / "precious.txt").write_text("do not clobber")
        with pytest.raises(SweepStoreError, match="no sweep manifest"):
            run_sweep(_grid(), target)
        assert (target / "precious.txt").read_text() == "do not clobber"

    def test_refuses_corrupt_manifest(self, tmp_path):
        store = tmp_path / "store"
        run_sweep(_grid(), store)
        (store / "manifest.json").write_text("{not json")
        with pytest.raises(SweepStoreError, match="unreadable"):
            run_sweep(_grid(), store, resume=True)

    def test_manifest_records_grid(self, tmp_path):
        store = tmp_path / "store"
        grid = _grid()
        run_sweep(grid, store)
        manifest = json.loads((store / "manifest.json").read_text())
        assert manifest == grid.describe()
        assert set(manifest["surfaces"]) == {"table2", "table3"}

    def test_grid_needs_a_surface(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="at least one"):
            SweepGrid()


class TestCacheSharing:
    """Satellite 2: one cache build per dataset across the whole grid."""

    @pytest.fixture
    def build_spies(self, monkeypatch):
        """Counts of every off-line build the grid can trigger."""
        import repro.clustering.uahc as uahc_module
        import repro.clustering.ukmedoids as ukmedoids_module
        import repro.experiments.table3 as table3_module
        import repro.objects.distance as distance_module
        import repro.uncertainty.batch as batch_module

        counts = {"pairwise": 0, "plan": 0, "dataset": 0}

        original_pairwise = distance_module.pairwise_squared_expected_distances

        def counting_pairwise(dataset):
            counts["pairwise"] += 1
            return original_pairwise(dataset)

        for module in (distance_module, ukmedoids_module, uahc_module):
            monkeypatch.setattr(
                module,
                "pairwise_squared_expected_distances",
                counting_pairwise,
            )

        original_plan = batch_module.build_sampling_plan

        def counting_plan(distributions):
            counts["plan"] += 1
            return original_plan(distributions)

        monkeypatch.setattr(batch_module, "build_sampling_plan", counting_plan)

        original_microarray = table3_module.make_microarray

        def counting_microarray(*args, **kwargs):
            counts["dataset"] += 1
            return original_microarray(*args, **kwargs)

        monkeypatch.setattr(
            table3_module, "make_microarray", counting_microarray
        )
        return counts

    def test_one_build_per_dataset_across_grid(self, tmp_path, build_spies):
        """4 cells share 1 dataset: the dataset is generated once, its
        ÊD matrix is built once (feeding UK-medoids fits *and* every
        cell's internal criterion), and the sampling plan is compiled
        once (shared by both sample-based cells)."""
        cfg = ExperimentConfig(scale=0.004, n_runs=2, n_samples=8, seed=3)
        grid = SweepGrid(
            table3=Table3Spec(
                config=cfg,
                datasets=("neuroblastoma",),
                cluster_counts=(2, 3),
                algorithms=("UKmed", "bUKM"),
            )
        )
        run_sweep(grid, tmp_path / "store")
        assert build_spies["dataset"] == 1
        assert build_spies["pairwise"] == 1
        assert build_spies["plan"] == 1

    def test_resume_of_complete_group_builds_nothing(
        self, tmp_path, build_spies
    ):
        cfg = ExperimentConfig(scale=0.004, n_runs=1, n_samples=8, seed=3)
        grid = SweepGrid(
            table3=Table3Spec(
                config=cfg,
                datasets=("neuroblastoma",),
                cluster_counts=(2,),
                algorithms=("UKmed",),
            )
        )
        run_sweep(grid, tmp_path / "store")
        before = dict(build_spies)
        run_sweep(grid, tmp_path / "store", resume=True)
        assert build_spies == before


class TestCLI:
    def test_sweep_command_quick_grid(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store"
        code = main(
            [
                "sweep",
                "--store",
                str(store),
                "--quick",
                "--surfaces",
                "table2",
                "--runs",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep complete" in out
        assert (store / "manifest.json").exists()
        assert len(list((store / "cells").glob("*.json"))) == 2
        # Resume reuses; a third run without --resume is refused.
        assert (
            main(
                [
                    "sweep", "--store", str(store), "--quick",
                    "--surfaces", "table2", "--runs", "1", "--resume",
                ]
            )
            == 0
        )
        assert "0 cells run, 2 reused" in capsys.readouterr().out
        assert (
            main(
                [
                    "sweep", "--store", str(store), "--quick",
                    "--surfaces", "table2", "--runs", "1",
                ]
            )
            == 2
        )

    def test_batch_size_auto_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["table2", "--batch-size", "auto"]
        )
        assert args.batch_size == "auto"
        args = build_parser().parse_args(["table2", "--batch-size", "4"])
        assert args.batch_size == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--batch-size", "soon"])


class TestReportingIntegration:
    def test_outcome_artifacts_requires_full_grid(self, tmp_path):
        from repro.exceptions import InvalidParameterError

        outcome = run_sweep(_grid(), tmp_path / "store")
        with pytest.raises(InvalidParameterError, match="missing"):
            outcome.artifacts()

    def test_collect_artifacts_via_store(self, tmp_path):
        """collect_artifacts(store=...) routes through the sweep and
        returns the same deterministic cells as the direct path."""
        from repro.experiments.reporting import collect_artifacts
        from repro.engine.sweep import paper_grid, run_sweep as _run

        cfg = ExperimentConfig(
            scale=0.02, max_objects=40, n_runs=1, n_samples=8, seed=9
        )
        micro = ExperimentConfig(scale=0.004, n_runs=1, n_samples=8, seed=9)
        # Shrink the grid axes through paper_grid-compatible specs: use
        # the sweep directly for the heavy surfaces' axes, then check
        # collect_artifacts agrees for the deterministic Table 2 cells.
        grid = paper_grid(
            table2_config=cfg,
            table3_config=micro,
            figure4_config=micro,
            figure5_config=cfg,
            figure5_base_size=800,
        )
        # paper_grid uses the full default axes — far too slow for a
        # test — so only check the wiring: a grid with every surface
        # assembles PaperArtifacts.
        small = SweepGrid(
            table2=Table2Spec(config=cfg, **T2_AXES),
            table3=Table3Spec(config=micro, **T3_AXES),
            figure4=Figure4Spec(config=micro, datasets=("abalone",)),
            figure5=Figure5Spec(
                config=cfg,
                fractions=(1.0,),
                algorithms=("UKM",),
                base_size=800,
            ),
        )
        outcome = _run(small, tmp_path / "store")
        artifacts = outcome.artifacts()
        assert artifacts.table2 is outcome.table2
        assert artifacts.figure5 is outcome.figure5
        assert grid.table2 is not None  # paper_grid wiring sanity


class TestLeaseTTLEdges:
    """Edge matrix for the claim/lease protocol's timing parameters."""

    def _prepared_store(self, tmp_path):
        from repro.engine.store import SWEEP_SCHEMA_VERSION, open_store

        store = open_store(tmp_path / "store")
        store.prepare(
            {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
        )
        return store

    def test_ttl_below_floor_rejected_at_construction(self, tmp_path):
        from repro.engine.sweep import MIN_LEASE_TTL, _LeaseClaimer
        from repro.exceptions import InvalidParameterError

        store = self._prepared_store(tmp_path)
        try:
            with pytest.raises(InvalidParameterError, match="lease ttl"):
                _LeaseClaimer(
                    store, "w1", MIN_LEASE_TTL / 2, lambda msg: None
                )
            # The floor itself is accepted.
            claimer = _LeaseClaimer(
                store, "w1", MIN_LEASE_TTL, lambda msg: None
            )
            claimer.close()
        finally:
            store.close()

    def test_ttl_below_floor_rejected_by_cli(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--store", "s", "--lease-ttl", "5"]
        )
        assert args.lease_ttl == 5.0
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--store", "s", "--lease-ttl", "0.01"])
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--store", "s", "--lease-ttl", "soon"])

    def test_heartbeat_thread_does_not_outlive_cell(self, tmp_path):
        import threading

        from repro.engine.sweep import _LeaseClaimer

        store = self._prepared_store(tmp_path)
        claimer = _LeaseClaimer(store, "w1", 0.2, lambda msg: None)
        try:
            assert claimer.claim("cell--0000000001")
            with claimer.heartbeat("cell--0000000001"):
                beats = [
                    t
                    for t in threading.enumerate()
                    if t.name == "sweep-lease-heartbeat"
                ]
                assert len(beats) == 1
            # The context join must reap the thread: a beat thread that
            # outlives its cell would renew a lease nobody holds.
            assert not beats[0].is_alive()
            claimer.release("cell--0000000001")
            assert not store.active_leases()
        finally:
            claimer.close()
            store.close()

    def test_heartbeat_keeps_short_lease_alive(self, tmp_path):
        import time

        from repro.engine.sweep import _LeaseClaimer

        store = self._prepared_store(tmp_path)
        claimer = _LeaseClaimer(store, "w1", 0.2, lambda msg: None)
        try:
            assert claimer.claim("cell--0000000001")
            with claimer.heartbeat("cell--0000000001"):
                # Several ttls pass; the 0.066s beat keeps renewing, so
                # a rival can never steal the cell.
                deadline = time.monotonic() + 0.8
                while time.monotonic() < deadline:
                    assert not store.claim_cell(
                        "cell--0000000001", "rival", 60.0
                    )
                    time.sleep(0.1)
            claimer.release("cell--0000000001")
            assert store.claim_cell("cell--0000000001", "rival", 60.0)
        finally:
            claimer.close()
            store.close()

    def test_default_worker_id_format_and_uniqueness(self):
        import os
        import socket

        from repro.engine.sweep import _default_worker_id

        ids = {_default_worker_id() for _ in range(64)}
        assert len(ids) == 64  # uuid suffix disambiguates same host:pid
        host, pid, suffix = next(iter(ids)).rsplit(":", 2)
        assert host == socket.gethostname()
        assert pid == str(os.getpid())
        assert len(suffix) == 8
        int(suffix, 16)  # hex suffix
