"""Tests for fast UK-means [14] and the deterministic K-means adapter."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.clustering import KMeans, UKMeans, ukmeans_objective
from repro.clustering.ukmeans import _assign_to_centers
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects import UncertainDataset, UncertainObject


class TestUKMeans:
    def test_produces_k_nonempty_clusters(self, blob_dataset):
        result = UKMeans(n_clusters=3).fit(blob_dataset, seed=0)
        counts = np.bincount(result.labels, minlength=3)
        assert np.all(counts > 0)

    def test_recovers_separated_blobs(self):
        data = make_blobs_uncertain(
            n_objects=120, n_clusters=3, separation=8.0, seed=5
        )
        result = UKMeans(n_clusters=3, init="kmeans++").fit(data, seed=5)
        assert f_measure(result.labels, data.labels) > 0.95

    def test_reproducible(self, blob_dataset):
        a = UKMeans(n_clusters=3).fit(blob_dataset, seed=11)
        b = UKMeans(n_clusters=3).fit(blob_dataset, seed=11)
        assert np.array_equal(a.labels, b.labels)

    def test_objective_history_nonincreasing(self, blob_dataset):
        result = UKMeans(n_clusters=3).fit(blob_dataset, seed=1)
        history = result.objective_history
        for prev, curr in zip(history, history[1:]):
            assert curr <= prev + 1e-6 * max(1.0, abs(prev))

    def test_variance_does_not_change_assignments(self):
        """Eq. (8): per-object variance is an additive constant, so the
        assignment sequence matches K-means on expected values exactly."""
        rng = np.random.default_rng(3)
        pts = rng.normal(0, 3, size=(40, 2))
        # Same expected values, wildly different variances.
        uncertain = UncertainDataset(
            [
                UncertainObject.uniform_box(pts[i], rng.uniform(0.1, 5.0, 2))
                for i in range(40)
            ]
        )
        deterministic = UncertainDataset.from_points(pts)
        res_u = UKMeans(n_clusters=3).fit(uncertain, seed=21)
        res_d = UKMeans(n_clusters=3).fit(deterministic, seed=21)
        assert np.array_equal(res_u.labels, res_d.labels)

    def test_objective_includes_variance_offset(self, blob_dataset):
        result = UKMeans(n_clusters=3).fit(blob_dataset, seed=2)
        assert result.objective >= float(blob_dataset.total_variances.sum())

    def test_objective_function_matches_result(self, blob_dataset):
        result = UKMeans(n_clusters=3).fit(blob_dataset, seed=2)
        assert result.objective == pytest.approx(
            ukmeans_objective(blob_dataset, result.labels)
        )

    def test_max_iter_warning(self):
        data = make_blobs_uncertain(
            n_objects=200, n_clusters=4, separation=1.0, seed=8
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            UKMeans(n_clusters=4, max_iter=1).fit(data, seed=8)
        assert any(issubclass(w.category, ConvergenceWarning) for w in caught)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            UKMeans(n_clusters=2, init="bogus")
        with pytest.raises(InvalidParameterError):
            UKMeans(n_clusters=2, max_iter=0)

    def test_assign_to_centers_correct(self):
        mu = np.array([[0.0, 0.0], [10.0, 10.0], [0.2, -0.1]])
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert list(_assign_to_centers(mu, centers)) == [0, 1, 0]


class TestKMeansAdapter:
    def test_fit_points(self):
        rng = np.random.default_rng(0)
        pts = np.vstack(
            [rng.normal(-4, 0.5, size=(25, 2)), rng.normal(4, 0.5, size=(25, 2))]
        )
        result = KMeans(n_clusters=2).fit_points(pts, seed=0)
        labels = result.labels
        assert len(set(labels[:25])) == 1
        assert len(set(labels[25:])) == 1
        assert labels[0] != labels[-1]

    def test_equivalent_to_ukmeans_on_pointmass(self, rng):
        pts = rng.normal(0, 2, size=(30, 3))
        dataset = UncertainDataset.from_points(pts)
        km = KMeans(n_clusters=3).fit(dataset, seed=9)
        ukm = UKMeans(n_clusters=3).fit(dataset, seed=9)
        assert np.array_equal(km.labels, ukm.labels)

    def test_name(self):
        assert KMeans(2).name == "KM"
