"""Tests for the external validity criteria (paper F-measure + extras)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    adjusted_rand_index,
    contingency_matrix,
    f_measure,
    normalized_mutual_information,
    purity,
)
from repro.exceptions import InvalidParameterError

PERFECT = (np.array([0, 0, 1, 1, 2, 2]), np.array([0, 0, 1, 1, 2, 2]))
PERMUTED = (np.array([2, 2, 0, 0, 1, 1]), np.array([0, 0, 1, 1, 2, 2]))


class TestContingency:
    def test_counts(self):
        pred = np.array([0, 0, 1, 1])
        ref = np.array([0, 1, 1, 1])
        table = contingency_matrix(pred, ref)
        # rows = classes {0, 1}, cols = clusters {0, 1}
        assert table.tolist() == [[1, 0], [1, 2]]

    def test_noise_gets_own_column(self):
        pred = np.array([0, -1, -1])
        ref = np.array([0, 0, 1])
        table = contingency_matrix(pred, ref)
        assert table.sum() == 3
        assert table.shape == (2, 2)  # cluster {-1} and cluster {0}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            contingency_matrix(np.array([0, 1]), np.array([0]))

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            contingency_matrix(np.array([]), np.array([]))

    def test_negative_reference_rejected(self):
        with pytest.raises(InvalidParameterError):
            contingency_matrix(np.array([0]), np.array([-1]))


class TestFMeasure:
    def test_perfect_clustering(self):
        assert f_measure(*PERFECT) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        assert f_measure(*PERMUTED) == pytest.approx(1.0)

    def test_single_cluster_of_two_classes(self):
        pred = np.zeros(4, dtype=int)
        ref = np.array([0, 0, 1, 1])
        # Each class: precision 0.5, recall 1.0 => F_uv = 2/3.
        assert f_measure(pred, ref) == pytest.approx(2.0 / 3.0)

    def test_worst_case_positive(self):
        # F-measure is bounded away from 0 for non-degenerate tables.
        pred = np.array([0, 1, 0, 1])
        ref = np.array([0, 0, 1, 1])
        value = f_measure(pred, ref)
        assert 0.0 < value < 1.0

    def test_all_noise_prediction(self):
        pred = np.full(4, -1)
        ref = np.array([0, 0, 1, 1])
        # Noise bucket acts as a single cluster: same as one-cluster case.
        assert f_measure(pred, ref) == pytest.approx(2.0 / 3.0)

    def test_weighted_by_class_size(self):
        # A large class clustered perfectly dominates a small one split up.
        pred = np.array([0] * 8 + [1, 2])
        ref = np.array([0] * 8 + [1, 1])
        value = f_measure(pred, ref)
        assert value > 0.8

    @given(
        labels=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_self_comparison_is_one(self, labels):
        arr = np.array(labels)
        assert f_measure(arr, arr) == pytest.approx(1.0)

    @given(
        pred=st.lists(st.integers(min_value=0, max_value=3), min_size=5, max_size=30),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_in_unit_interval(self, pred, seed):
        rng = np.random.default_rng(seed)
        pred_arr = np.array(pred)
        ref = rng.integers(0, 3, size=pred_arr.size)
        value = f_measure(pred_arr, ref)
        assert 0.0 <= value <= 1.0


class TestPurity:
    def test_perfect(self):
        assert purity(*PERFECT) == 1.0

    def test_mixed(self):
        pred = np.array([0, 0, 0, 1])
        ref = np.array([0, 0, 1, 1])
        assert purity(pred, ref) == pytest.approx(0.75)


class TestNMI:
    def test_perfect(self):
        assert normalized_mutual_information(*PERFECT) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        assert normalized_mutual_information(*PERMUTED) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 4, size=2000)
        ref = rng.integers(0, 4, size=2000)
        assert normalized_mutual_information(pred, ref) < 0.02

    def test_single_cluster_zero_entropy(self):
        pred = np.zeros(4, dtype=int)
        ref = np.array([0, 0, 1, 1])
        value = normalized_mutual_information(pred, ref)
        assert 0.0 <= value <= 1.0


class TestARI:
    def test_perfect(self):
        assert adjusted_rand_index(*PERFECT) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        assert adjusted_rand_index(*PERMUTED) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(1)
        pred = rng.integers(0, 4, size=2000)
        ref = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(pred, ref)) < 0.02

    def test_degenerate_single_cluster_both(self):
        pred = np.zeros(5, dtype=int)
        ref = np.zeros(5, dtype=int)
        assert adjusted_rand_index(pred, ref) == 1.0
