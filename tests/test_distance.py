"""Tests for the expected-distance machinery (Eq. (8), Lemma 3, S4).

Every closed form is validated against an independent Monte-Carlo
estimate of its defining integral.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import random_uncertain_objects

from repro.exceptions import InvalidParameterError
from repro.objects import (
    UncertainDataset,
    UncertainObject,
    cross_squared_expected_distances,
    expected_distance_mc,
    expected_distance_to_point,
    expected_distances_to_points,
    pairwise_squared_expected_distances,
    squared_expected_distance,
    squared_expected_distance_mc,
)


class TestExpectedDistanceToPoint:
    def test_eq8_decomposition(self, mixed_cluster):
        """ED(o, y) = sigma^2(o) + ||mu(o) - y||^2 (Eq. (8))."""
        y = np.array([0.3, -0.7])
        for obj in mixed_cluster:
            closed = expected_distance_to_point(obj, y)
            expected = obj.total_variance + float((obj.mu - y) @ (obj.mu - y))
            assert closed == pytest.approx(expected)

    def test_matches_monte_carlo(self, mixed_cluster):
        y = np.array([1.0, 0.5])
        for obj in mixed_cluster:
            closed = expected_distance_to_point(obj, y)
            mc = expected_distance_mc(obj, y, n_samples=60000, seed=0)
            assert mc == pytest.approx(closed, rel=0.05, abs=0.05)

    def test_distance_to_own_mean_is_variance(self, mixed_cluster):
        """ED(o, mu(o)) = sigma^2(o) — the precomputable term of [14]."""
        for obj in mixed_cluster:
            assert expected_distance_to_point(obj, obj.mu) == pytest.approx(
                obj.total_variance
            )

    def test_zero_for_point_mass_at_itself(self):
        obj = UncertainObject.from_point([2.0, 3.0])
        assert expected_distance_to_point(obj, [2.0, 3.0]) == 0.0

    def test_custom_metric_mc(self):
        obj = UncertainObject.uniform_box([0.0], [1.0])

        def manhattan(x, y):
            return float(np.abs(x - y).sum())

        value = expected_distance_mc(obj, [0.0], metric=manhattan, n_samples=20000, seed=1)
        # E|X| for X ~ U(-1, 1) is 0.5.
        assert value == pytest.approx(0.5, abs=0.02)

    def test_invalid_samples(self):
        obj = UncertainObject.from_point([0.0])
        with pytest.raises(InvalidParameterError):
            expected_distance_mc(obj, [0.0], n_samples=0)


class TestSquaredExpectedDistance:
    def test_lemma3_closed_form(self, mixed_cluster):
        """ÊD = sigma^2(o) + sigma^2(o') + ||mu(o) - mu(o')||^2 (Lemma 3)."""
        for a in mixed_cluster:
            for b in mixed_cluster:
                closed = squared_expected_distance(a, b)
                expected = (
                    a.total_variance
                    + b.total_variance
                    + float((a.mu - b.mu) @ (a.mu - b.mu))
                )
                assert closed == pytest.approx(expected)

    def test_matches_monte_carlo_double_integral(self, mixed_cluster):
        a, b = mixed_cluster[0], mixed_cluster[2]
        closed = squared_expected_distance(a, b)
        mc = squared_expected_distance_mc(a, b, n_samples=120000, seed=0)
        assert mc == pytest.approx(closed, rel=0.05)

    def test_self_distance_is_twice_variance(self, mixed_cluster):
        """ÊD(o, o) = 2 sigma^2(o): an independent copy, not identity."""
        for obj in mixed_cluster:
            assert squared_expected_distance(obj, obj) == pytest.approx(
                2.0 * obj.total_variance
            )

    def test_symmetry(self, mixed_cluster):
        a, b = mixed_cluster[1], mixed_cluster[3]
        assert squared_expected_distance(a, b) == pytest.approx(
            squared_expected_distance(b, a)
        )

    def test_dim_mismatch(self):
        a = UncertainObject.from_point([0.0])
        b = UncertainObject.from_point([0.0, 1.0])
        with pytest.raises(InvalidParameterError):
            squared_expected_distance(a, b)


class TestVectorizedDistances:
    def test_expected_distances_to_points_matches_scalar(self, mixed_dataset):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [-2.0, 3.0]])
        matrix = expected_distances_to_points(mixed_dataset, points)
        assert matrix.shape == (5, 3)
        for i, obj in enumerate(mixed_dataset):
            for c in range(3):
                assert matrix[i, c] == pytest.approx(
                    expected_distance_to_point(obj, points[c])
                )

    def test_pairwise_matches_scalar(self, mixed_dataset):
        matrix = pairwise_squared_expected_distances(mixed_dataset)
        assert matrix.shape == (5, 5)
        for i, a in enumerate(mixed_dataset):
            for j, b in enumerate(mixed_dataset):
                assert matrix[i, j] == pytest.approx(
                    squared_expected_distance(a, b), abs=1e-8
                )

    def test_pairwise_symmetric(self, blob_dataset):
        matrix = pairwise_squared_expected_distances(blob_dataset)
        assert np.allclose(matrix, matrix.T)

    def test_cross_distances(self, mixed_dataset, blob_dataset):
        cross = cross_squared_expected_distances(mixed_dataset, blob_dataset)
        assert cross.shape == (len(mixed_dataset), len(blob_dataset))
        assert cross[0, 0] == pytest.approx(
            squared_expected_distance(mixed_dataset[0], blob_dataset[0]), abs=1e-8
        )

    def test_cross_dim_mismatch(self, mixed_dataset):
        other = UncertainDataset([UncertainObject.from_point([0.0])])
        with pytest.raises(InvalidParameterError):
            cross_squared_expected_distances(mixed_dataset, other)

    def test_random_objects_nonnegative(self, rng):
        objects = random_uncertain_objects(rng, 12, 3)
        ds = UncertainDataset(objects)
        matrix = pairwise_squared_expected_distances(ds)
        assert np.all(matrix >= 0.0)
