"""Tests for clustering base types and initialization strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    kmeanspp_seed_indices,
    labels_from_clusters,
    partition_from_seeds,
    random_partition,
    random_seed_indices,
    validate_n_clusters,
)
from repro.clustering.base import ClusteringResult
from repro.exceptions import InvalidParameterError


class TestClusteringResult:
    def test_counts(self):
        result = ClusteringResult(labels=np.array([0, 0, 1, -1, 2]))
        assert result.n_objects == 5
        assert result.n_clusters == 3
        assert result.n_noise == 1

    def test_clusters_grouping(self):
        result = ClusteringResult(labels=np.array([1, 0, 1, -1]))
        assert result.clusters() == [[1], [0, 2]]

    def test_relabeled_compacts_ids(self):
        result = ClusteringResult(labels=np.array([5, 5, 9, -1]))
        compact = result.relabeled()
        assert list(compact.labels) == [0, 0, 1, -1]
        assert compact.n_clusters == 2

    def test_relabeled_preserves_metadata(self):
        result = ClusteringResult(
            labels=np.array([3, 3]),
            objective=1.5,
            n_iterations=4,
            extras={"k": 1},
        )
        compact = result.relabeled()
        assert compact.objective == 1.5
        assert compact.n_iterations == 4
        assert compact.extras == {"k": 1}

    def test_all_noise(self):
        result = ClusteringResult(labels=np.array([-1, -1]))
        assert result.n_clusters == 0
        assert result.clusters() == []

    def test_labels_cast_to_int64(self):
        result = ClusteringResult(labels=[0.0, 1.0])
        assert result.labels.dtype == np.int64


class TestValidateNClusters:
    def test_valid(self):
        assert validate_n_clusters(3, 10) == 3

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            validate_n_clusters(0, 10)
        with pytest.raises(InvalidParameterError):
            validate_n_clusters(11, 10)
        with pytest.raises(InvalidParameterError):
            validate_n_clusters("3", 10)


class TestLabelsFromClusters:
    def test_roundtrip(self):
        labels = labels_from_clusters([[0, 2], [1]], n_objects=4)
        assert list(labels) == [0, 1, 0, -1]


class TestRandomPartition:
    def test_every_cluster_nonempty(self):
        for seed in range(10):
            labels = random_partition(20, 6, seed=seed)
            assert np.unique(labels).size == 6

    def test_exact_k_when_n_equals_k(self):
        labels = random_partition(4, 4, seed=0)
        assert sorted(labels) == [0, 1, 2, 3]

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            random_partition(3, 4)
        with pytest.raises(InvalidParameterError):
            random_partition(3, 0)


class TestSeedSelection:
    def test_random_seed_indices_distinct(self):
        seeds = random_seed_indices(10, 5, seed=0)
        assert np.unique(seeds).size == 5

    def test_random_seed_indices_invalid(self):
        with pytest.raises(InvalidParameterError):
            random_seed_indices(3, 4)

    def test_kmeanspp_distinct_and_spread(self, blob_dataset):
        seeds = kmeanspp_seed_indices(blob_dataset, 3, seed=0)
        assert np.unique(seeds).size == 3
        # The three seeds should come from three different blobs with
        # overwhelming probability on well-separated data.
        labels = blob_dataset.labels[seeds]
        assert np.unique(labels).size == 3

    def test_kmeanspp_handles_duplicates(self):
        from repro.objects import UncertainDataset

        pts = np.zeros((5, 2))
        pts[0] = [1.0, 1.0]
        data = UncertainDataset.from_points(pts)
        seeds = kmeanspp_seed_indices(data, 3, seed=0)
        assert np.unique(seeds).size == 3

    def test_kmeanspp_invalid(self, blob_dataset):
        with pytest.raises(InvalidParameterError):
            kmeanspp_seed_indices(blob_dataset, 0, seed=0)

    def test_partition_from_seeds(self, blob_dataset):
        seeds = kmeanspp_seed_indices(blob_dataset, 3, seed=1)
        assignment = partition_from_seeds(blob_dataset, seeds)
        assert assignment.shape == (len(blob_dataset),)
        # Each seed object is assigned to its own cluster.
        for c, s in enumerate(seeds):
            assert assignment[s] == c
