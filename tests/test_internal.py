"""Tests for the internal validity criteria (intra / inter / Q)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import make_blobs_uncertain
from repro.evaluation import internal_scores, quality_score
from repro.exceptions import InvalidParameterError
from repro.objects import UncertainDataset, UncertainObject
from repro.objects.distance import pairwise_squared_expected_distances


class TestInternalScores:
    def test_bounds(self, blob_dataset):
        labels = np.array(blob_dataset.labels)
        scores = internal_scores(blob_dataset, labels)
        assert 0.0 <= scores.intra <= 1.0
        assert 0.0 <= scores.inter <= 1.0
        assert -1.0 <= scores.quality <= 1.0

    def test_true_labels_beat_random_labels(self, blob_dataset):
        true_q = quality_score(blob_dataset, np.array(blob_dataset.labels))
        rng = np.random.default_rng(0)
        random_q = quality_score(
            blob_dataset, rng.integers(0, 3, size=len(blob_dataset))
        )
        assert true_q > random_q

    def test_good_clustering_has_positive_q(self):
        data = make_blobs_uncertain(
            n_objects=60, n_clusters=2, separation=8.0, seed=1
        )
        assert quality_score(data, np.array(data.labels)) > 0.3

    def test_precomputed_distances_match(self, blob_dataset):
        labels = np.array(blob_dataset.labels)
        distances = pairwise_squared_expected_distances(blob_dataset)
        direct = internal_scores(blob_dataset, labels)
        cached = internal_scores(blob_dataset, labels, distances)
        assert direct.intra == pytest.approx(cached.intra)
        assert direct.inter == pytest.approx(cached.inter)

    def test_noise_excluded(self, blob_dataset):
        labels = np.array(blob_dataset.labels)
        labels[:5] = -1
        scores = internal_scores(blob_dataset, labels)
        assert -1.0 <= scores.quality <= 1.0

    def test_all_noise_residual_is_single_cluster(self, blob_dataset):
        """Residual policy: all-noise degenerates to one cluster (Q < 0)."""
        labels = np.full(len(blob_dataset), -1)
        scores = internal_scores(blob_dataset, labels)
        assert scores.inter == 0.0
        assert scores.intra > 0.0
        assert scores.quality < 0.0

    def test_all_noise_excluded_gives_zero(self, blob_dataset):
        labels = np.full(len(blob_dataset), -1)
        scores = internal_scores(blob_dataset, labels, noise_policy="exclude")
        assert scores.intra == 0.0
        assert scores.inter == 0.0
        assert scores.quality == 0.0

    def test_noise_policy_changes_score(self, blob_dataset):
        """Shedding half the objects as noise must not *improve* Q under
        the residual policy."""
        labels = np.array(blob_dataset.labels)
        noisy = labels.copy()
        noisy[::2] = -1
        residual = internal_scores(blob_dataset, noisy).quality
        excluded = internal_scores(
            blob_dataset, noisy, noise_policy="exclude"
        ).quality
        assert residual <= excluded + 1e-9

    def test_invalid_noise_policy(self, blob_dataset):
        with pytest.raises(InvalidParameterError):
            internal_scores(
                blob_dataset,
                np.zeros(len(blob_dataset)),
                noise_policy="ignore",
            )

    def test_single_cluster_zero_inter(self, blob_dataset):
        labels = np.zeros(len(blob_dataset), dtype=np.int64)
        scores = internal_scores(blob_dataset, labels)
        assert scores.inter == 0.0
        assert scores.intra > 0.0

    def test_singleton_clusters_have_zero_intra(self):
        objs = [UncertainObject.from_point([float(i)]) for i in range(4)]
        data = UncertainDataset(objs)
        labels = np.arange(4)
        scores = internal_scores(data, labels)
        assert scores.intra == 0.0
        assert scores.inter > 0.0

    def test_identical_objects_zero_everything(self):
        objs = [UncertainObject.from_point([1.0]) for _ in range(4)]
        data = UncertainDataset(objs)
        scores = internal_scores(data, np.array([0, 0, 1, 1]))
        assert scores.intra == 0.0
        assert scores.inter == 0.0

    def test_label_length_mismatch(self, blob_dataset):
        with pytest.raises(InvalidParameterError):
            internal_scores(blob_dataset, np.zeros(3))

    def test_better_separation_increases_q(self):
        near = make_blobs_uncertain(
            n_objects=60, n_clusters=2, separation=2.0, seed=5
        )
        far = make_blobs_uncertain(
            n_objects=60, n_clusters=2, separation=10.0, seed=5
        )
        q_near = quality_score(near, np.array(near.labels))
        q_far = quality_score(far, np.array(far.labels))
        assert q_far > q_near
