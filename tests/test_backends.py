"""Tests for the pluggable execution backends (repro.engine.backends).

The backend layer's whole value rests on one promise: *which* backend
executes the restarts can never change what the engine returns.  These
tests pin that promise (serial ≡ threads ≡ processes for fixed seeds,
with and without early stopping, under out-of-order completion), plus
the process backend's shared-memory contract — the sample tensor is
published, not pickled, and every block is unlinked even when a worker
crashes.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.clustering import UAHC, BasicUKMeans, MinMaxBB, UKMeans, UKMedoids
from repro.datagen import make_blobs_uncertain
from repro.engine import (
    BACKEND_NAMES,
    AutoBackend,
    EarlyStopping,
    MultiRestartRunner,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    shared_block_registry,
    validate_batch_size,
)
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def data():
    # Moderate separation so different seeds reach different optima —
    # otherwise best-of selection (and early stopping) has nothing to do.
    return make_blobs_uncertain(
        n_objects=90, n_clusters=4, separation=2.5, seed=13
    )


class JitterUKMeans(UKMeans):
    """UK-means with a seed-dependent pre-fit sleep.

    Later-submitted restarts can finish *before* earlier ones in a
    parallel pool, which is exactly the scheduling hazard the
    submission-order determinism contract must absorb.
    """

    def fit(self, dataset, seed=None):
        time.sleep((int(seed) % 3) * 0.005)
        return super().fit(dataset, seed=seed)


class CrashingBasicUKMeans(BasicUKMeans):
    """Sample-based clusterer whose every fit raises."""

    def fit(self, dataset, seed=None):
        raise RuntimeError("worker boom")


class HardExitBasicUKMeans(BasicUKMeans):
    """Sample-based clusterer that kills its worker process outright."""

    def fit(self, dataset, seed=None):
        import os

        os._exit(13)


class _PickleTrap(np.ndarray):
    """ndarray view that refuses to be pickled — the serialization spy."""

    def __reduce__(self):
        raise AssertionError(
            "the sample tensor must travel via shared memory, not pickle"
        )


def _assert_same_result(reference, other):
    np.testing.assert_array_equal(reference.labels, other.labels)
    assert reference.objective == other.objective
    assert (
        reference.extras["best_restart"] == other.extras["best_restart"]
    )
    assert (
        reference.extras["restarts_executed"]
        == other.extras["restarts_executed"]
    )


class TestBackendInvariance:
    """serial ≡ threads ≡ processes, bit for bit, multi-seed."""

    @pytest.mark.parametrize("seed", [0, 7, 123])
    @pytest.mark.parametrize("early_stopping", [None, 2])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UKMeans(4),  # moment-based roster
            lambda: BasicUKMeans(4, n_samples=16),  # sample-based roster
        ],
    )
    def test_backends_bit_identical(self, data, factory, early_stopping, seed):
        reference = MultiRestartRunner(
            factory(), n_init=5, backend="serial",
            early_stopping=early_stopping,
        ).run(data, seed=seed)
        assert reference.extras["engine_backend"] == "serial"
        for backend, n_jobs in (("threads", 3), ("processes", 2)):
            result = MultiRestartRunner(
                factory(), n_init=5, n_jobs=n_jobs, backend=backend,
                early_stopping=early_stopping,
            ).run(data, seed=seed)
            assert result.extras["engine_backend"] == backend
            _assert_same_result(reference, result)

    @pytest.mark.parametrize("early_stopping", [None, 2])
    @pytest.mark.parametrize("batch_size", [2, 3, 5])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UKMeans(4),
            lambda: BasicUKMeans(4, n_samples=16),
            lambda: UKMedoids(4),  # pairwise-plane roster
        ],
    )
    def test_in_worker_batching_bit_identical(
        self, data, factory, batch_size, early_stopping
    ):
        """batch_size must never change the result — including the
        early-stopped prefix, whose stopping restart can land in the
        middle of a chunk."""
        reference = MultiRestartRunner(
            factory(), n_init=5, backend="serial",
            early_stopping=early_stopping,
        ).run(data, seed=7)
        for backend, n_jobs in (("threads", 3), ("processes", 2)):
            result = MultiRestartRunner(
                factory(), n_init=5, n_jobs=n_jobs, backend=backend,
                early_stopping=early_stopping, batch_size=batch_size,
            ).run(data, seed=7)
            assert result.extras["engine_batch_size"] == batch_size
            _assert_same_result(reference, result)

    @pytest.mark.parametrize("early_stopping", [None, 1])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UKMeans(4),  # moment-based roster
            lambda: BasicUKMeans(4, n_samples=16),  # sample-based roster
            lambda: UKMedoids(4),  # pairwise-plane roster
        ],
    )
    def test_adaptive_batching_bit_identical(
        self, data, factory, early_stopping
    ):
        """Satellite: batch_size="auto" ≡ batch_size=1 for fixed seeds
        on every roster.  These sub-ms fits make the adaptive policy
        pick large chunks, so with early_stopping=1 the stop decision
        lands mid-chunk and the surplus must be discarded exactly as
        the unbatched prefix would be."""
        reference = MultiRestartRunner(
            factory(), n_init=6, backend="serial",
            early_stopping=early_stopping, batch_size=1,
        ).run(data, seed=7)
        for backend, n_jobs in (("threads", 3), ("processes", 2)):
            result = MultiRestartRunner(
                factory(), n_init=6, n_jobs=n_jobs, backend=backend,
                early_stopping=early_stopping, batch_size="auto",
            ).run(data, seed=7)
            assert result.extras["engine_batch_size"] == "auto"
            _assert_same_result(reference, result)

    def test_adaptive_batching_out_of_order_completion(self, data):
        """Seed-dependent jitter + adaptive chunks: the stopping
        decision still cannot move."""
        reference = MultiRestartRunner(
            JitterUKMeans(4), n_init=8, backend="serial", early_stopping=1
        ).run(data, seed=21)
        result = MultiRestartRunner(
            JitterUKMeans(4), n_init=8, n_jobs=4, backend="threads",
            early_stopping=1, batch_size="auto",
        ).run(data, seed=21)
        _assert_same_result(reference, result)

    def test_adaptive_chunk_size_from_latency(self):
        """The policy targets ADAPTIVE_TARGET_SECONDS per task and
        clamps to [1, ADAPTIVE_MAX_BATCH]."""
        from repro.clustering.base import ClusteringResult
        from repro.engine.backends import (
            ADAPTIVE_MAX_BATCH,
            ADAPTIVE_TARGET_SECONDS,
            _adaptive_chunk_size,
        )

        def probe(runtime):
            return [ClusteringResult(labels=[0], runtime_seconds=runtime)]

        # Degenerate (clock-granularity) probes double instead of
        # jumping to the cap (regression: a 64-seed chunk committed on
        # a timer artifact over-schedules past an early stop).
        assert _adaptive_chunk_size(probe(0.0)) == 2
        assert _adaptive_chunk_size(probe(0.0), current=8) == 16
        assert (
            _adaptive_chunk_size(probe(0.0), current=ADAPTIVE_MAX_BATCH)
            == ADAPTIVE_MAX_BATCH
        )
        # A fit 1/5th of the target gets a 5-chunk.
        assert _adaptive_chunk_size(probe(ADAPTIVE_TARGET_SECONDS / 5)) == 5
        # Slow fits degrade to unbatched submission.
        assert _adaptive_chunk_size(probe(10.0)) == 1

    def test_adaptive_zero_latency_grows_geometrically(self):
        """Satellite regression: a stream of zero-latency results keeps
        the adaptive policy live and the submitted chunk lengths grow
        1, 2, 4, ... instead of 1 -> ADAPTIVE_MAX_BATCH, so the restarts
        scheduled past an early-stopping decision stay bounded."""
        from concurrent.futures import Future

        from repro.clustering.base import ClusteringResult
        from repro.engine.backends import ADAPTIVE_MAX_BATCH, _drive_pool

        submitted = []

        def submit(chunk):
            submitted.append(len(chunk))
            future = Future()
            future.set_result(
                [
                    ClusteringResult(labels=[0], runtime_seconds=0.0)
                    for _ in chunk
                ]
            )
            return future

        n_seeds = 4 * ADAPTIVE_MAX_BATCH
        results = _drive_pool(
            submit,
            list(range(n_seeds)),
            early_stopping=None,
            window=1,
            batch_size="auto",
        )
        assert len(results) == n_seeds
        # Strict doubling until the cap, then pinned at the cap.
        growth = [1]
        while growth[-1] < ADAPTIVE_MAX_BATCH:
            growth.append(min(ADAPTIVE_MAX_BATCH, growth[-1] * 2))
        assert submitted[: len(growth)] == growth
        assert all(
            size == ADAPTIVE_MAX_BATCH
            for size in submitted[len(growth) : -1]
        )

    def test_pruning_variant_across_backends(self, data):
        reference = MultiRestartRunner(
            MinMaxBB(4, n_samples=16), n_init=4, backend="serial"
        ).run(data, seed=4)
        for backend in ("threads", "processes"):
            result = MultiRestartRunner(
                MinMaxBB(4, n_samples=16), n_init=4, n_jobs=2,
                backend=backend,
            ).run(data, seed=4)
            _assert_same_result(reference, result)

    def test_run_all_across_backends(self, data):
        reference = MultiRestartRunner(
            BasicUKMeans(4, n_samples=16), n_init=4, backend="serial"
        ).run_all(data, seed=9)
        for backend in ("threads", "processes"):
            results = MultiRestartRunner(
                BasicUKMeans(4, n_samples=16), n_init=4, n_jobs=2,
                backend=backend,
            ).run_all(data, seed=9)
            assert len(results) == len(reference)
            for ref, res in zip(reference, results):
                np.testing.assert_array_equal(ref.labels, res.labels)
                assert ref.objective == res.objective

    def test_legacy_n_jobs_mapping_unchanged(self, data):
        """backend=None keeps the historical semantics: serial for
        n_jobs == 1, the process pool otherwise."""
        serial = MultiRestartRunner(UKMeans(4), n_init=3)
        assert isinstance(serial.backend, SerialBackend)
        pooled = MultiRestartRunner(UKMeans(4), n_init=3, n_jobs=2)
        assert isinstance(pooled.backend, ProcessBackend)

    def test_fit_best_backend_routing(self, data):
        via_serial = UKMeans(4).fit_best(data, seed=17, n_init=4)
        via_threads = UKMeans(4).fit_best(
            data, seed=17, n_init=4, n_jobs=2, backend="threads"
        )
        _assert_same_result(via_serial, via_threads)


class TestEarlyStopping:
    def test_rule_matches_manual_replay(self, data):
        """The executed prefix is exactly what replaying the rule over
        the full objective sequence predicts."""
        patience = 2
        full = MultiRestartRunner(UKMeans(4), n_init=10).run(data, seed=3)
        objectives = [
            record["objective"] for record in full.extras["restart_history"]
        ]
        best = float("inf")
        stale = 0
        expected = len(objectives)
        for idx, objective in enumerate(objectives):
            if objective < best:
                best = objective
                stale = 0
            else:
                stale += 1
            if stale >= patience:
                expected = idx + 1
                break
        stopped = MultiRestartRunner(
            UKMeans(4), n_init=10, early_stopping=patience
        ).run(data, seed=3)
        assert stopped.extras["restarts_executed"] == expected
        assert stopped.extras["early_stopped"] == (expected < 10)
        assert stopped.objective == min(objectives[:expected])

    def test_deterministic_under_out_of_order_completion(self, data):
        """Seed-dependent jitter makes pool completions arrive out of
        submission order; the stopping decision must not move."""
        reference = MultiRestartRunner(
            JitterUKMeans(4), n_init=8, backend="serial", early_stopping=1
        ).run(data, seed=21)
        for backend, n_jobs in (("threads", 4), ("processes", 2)):
            result = MultiRestartRunner(
                JitterUKMeans(4), n_init=8, n_jobs=n_jobs, backend=backend,
                early_stopping=1,
            ).run(data, seed=21)
            _assert_same_result(reference, result)
            assert (
                result.extras["early_stopped"]
                == reference.extras["early_stopped"]
            )

    def test_deterministic_under_out_of_order_batches(self, data):
        """Same hazard with whole chunks completing out of order."""
        reference = MultiRestartRunner(
            JitterUKMeans(4), n_init=8, backend="serial", early_stopping=1
        ).run(data, seed=21)
        for backend, n_jobs in (("threads", 4), ("processes", 2)):
            result = MultiRestartRunner(
                JitterUKMeans(4), n_init=8, n_jobs=n_jobs, backend=backend,
                early_stopping=1, batch_size=3,
            ).run(data, seed=21)
            _assert_same_result(reference, result)

    def test_run_all_ignores_early_stopping(self, data):
        """run_all is a measurement surface: it must never truncate."""
        runner = MultiRestartRunner(
            UKMeans(4), n_init=6, early_stopping=1
        )
        assert len(runner.run_all(data, seed=3)) == 6

    def test_instance_backend_batch_size_reported(self, data):
        """extras must report the chunking that actually executed — a
        pre-constructed backend instance keeps its own batch_size."""
        result = MultiRestartRunner(
            UKMeans(4), n_init=4, backend=ThreadBackend(2, batch_size=2)
        ).run(data, seed=3)
        assert result.extras["engine_batch_size"] == 2

    def test_int_shorthand(self, data):
        runner = MultiRestartRunner(UKMeans(4), n_init=2, early_stopping=3)
        assert runner.early_stopping == EarlyStopping(patience=3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            EarlyStopping(patience=0)
        with pytest.raises(InvalidParameterError):
            EarlyStopping(patience=2, min_improvement=-1.0)

    def test_min_improvement_counts_small_gains_as_stale(self, data):
        """A huge min_improvement makes every restart after the first
        non-improving (the first always beats the initial +inf), so the
        engine stops after exactly 1 + patience restarts."""
        result = MultiRestartRunner(
            UKMeans(4),
            n_init=10,
            early_stopping=EarlyStopping(patience=2, min_improvement=1e12),
        ).run(data, seed=5)
        assert result.extras["restarts_executed"] == 3


class TestProcessBackendSharedMemory:
    def test_sample_tensor_not_pickled(self, data):
        """Serialization spy: with the tensor pinned as a pickle trap,
        the processes run still succeeds (shared memory) and matches
        the serial result computed from the same tensor."""
        tensor = data.sample_tensor(16, seed=33)
        trapped = BasicUKMeans(4, n_samples=16)
        trapped.sample_cache = tensor.view(_PickleTrap)
        via_processes = MultiRestartRunner(
            trapped, n_init=4, n_jobs=2, backend="processes"
        ).run(data, seed=2)
        plain = BasicUKMeans(4, n_samples=16)
        plain.sample_cache = tensor
        via_serial = MultiRestartRunner(
            plain, n_init=4, backend="serial"
        ).run(data, seed=2)
        _assert_same_result(via_serial, via_processes)
        # The trap itself must still be armed (and restored after run).
        with pytest.raises(AssertionError, match="shared memory"):
            import pickle

            pickle.dumps(trapped.sample_cache)

    def _assert_blocks_unlinked(self, backend):
        assert backend.last_shared_specs  # the run did publish blocks
        for name, _, _ in backend.last_shared_specs:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_shared_blocks_unlinked_after_run(self, data):
        backend = ProcessBackend(n_jobs=2)
        runner = MultiRestartRunner(
            BasicUKMeans(4, n_samples=16), n_init=4, backend=backend
        )
        runner.run(data, seed=2)
        # Moment matrices + the engine-pinned sample tensor.
        assert len(backend.last_shared_specs) == 4
        self._assert_blocks_unlinked(backend)

    def test_shared_blocks_unlinked_on_worker_exception(self, data):
        backend = ProcessBackend(n_jobs=2)
        runner = MultiRestartRunner(
            CrashingBasicUKMeans(4, n_samples=16), n_init=4, backend=backend
        )
        with pytest.raises(RuntimeError, match="worker boom"):
            runner.run(data, seed=2)
        self._assert_blocks_unlinked(backend)
        # The engine restored the clusterer despite the crash.
        assert runner.clusterer.sample_cache is None

    def test_shared_blocks_unlinked_on_worker_hard_crash(self, data):
        """os._exit in a worker breaks the whole pool; the blocks must
        still be unlinked."""
        backend = ProcessBackend(n_jobs=2)
        runner = MultiRestartRunner(
            HardExitBasicUKMeans(4, n_samples=16), n_init=4, backend=backend
        )
        with pytest.raises(BrokenProcessPool):
            runner.run(data, seed=2)
        self._assert_blocks_unlinked(backend)

    def test_pairwise_matrix_not_pickled(self, data):
        """Serialization spy for the distance plane: with the ÊD matrix
        pinned as a pickle trap, the processes run still succeeds
        (shared memory) and matches the serial result from the same
        matrix."""
        matrix = data.pairwise_ed()
        trapped = UKMedoids(4)
        trapped.pairwise_ed_cache = matrix.view(_PickleTrap)
        via_processes = MultiRestartRunner(
            trapped, n_init=4, n_jobs=2, backend="processes"
        ).run(data, seed=2)
        plain = UKMedoids(4)
        plain.pairwise_ed_cache = matrix
        via_serial = MultiRestartRunner(
            plain, n_init=4, backend="serial"
        ).run(data, seed=2)
        _assert_same_result(via_serial, via_processes)
        # The trap must still be armed (pin restored after the run).
        with pytest.raises(AssertionError, match="shared memory"):
            import pickle

            pickle.dumps(trapped.pairwise_ed_cache)

    def test_precomputed_matrix_not_pickled(self, data):
        """The constructor-fixed matrix rides shared memory too."""
        trapped = UKMedoids(4, precomputed=data.pairwise_ed())
        trapped.precomputed = trapped.precomputed.view(_PickleTrap)
        via_processes = MultiRestartRunner(
            trapped, n_init=4, n_jobs=2, backend="processes"
        ).run(data, seed=2)
        reference = MultiRestartRunner(
            UKMedoids(4, precomputed=data.pairwise_ed()),
            n_init=4, backend="serial",
        ).run(data, seed=2)
        _assert_same_result(reference, via_processes)

    def test_pairwise_block_published_and_unlinked(self, data):
        backend = ProcessBackend(n_jobs=2)
        MultiRestartRunner(UKMedoids(4), n_init=4, backend=backend).run(
            data, seed=2
        )
        # Moment matrices + the engine-injected ÊD matrix.
        assert len(backend.last_shared_specs) == 4
        self._assert_blocks_unlinked(backend)

    def test_uahc_pairwise_matrix_not_pickled(self, data):
        """UAHC's ``"ed"`` linkage joins the plane: its pinned ÊD matrix
        rides shared memory under the process backend, never pickle."""
        matrix = data.pairwise_ed()
        trapped = UAHC(3, linkage="ed")
        trapped.pairwise_ed_cache = matrix.view(_PickleTrap)
        via_processes = MultiRestartRunner(
            trapped, n_init=4, n_jobs=2, backend="processes"
        ).run_all(data, seeds=[0, 1, 2, 3])
        plain = UAHC(3, linkage="ed")
        plain.pairwise_ed_cache = matrix
        via_serial = MultiRestartRunner(
            plain, n_init=4, backend="serial"
        ).run_all(data, seeds=[0, 1, 2, 3])
        for serial_run, process_run in zip(via_serial, via_processes):
            np.testing.assert_array_equal(
                serial_run.labels, process_run.labels
            )
        # The trap must still be armed (pin restored after the run).
        with pytest.raises(AssertionError, match="shared memory"):
            import pickle

            pickle.dumps(trapped.pairwise_ed_cache)

    def test_uahc_pairwise_block_published_and_unlinked(self, data):
        backend = ProcessBackend(n_jobs=2)
        MultiRestartRunner(
            UAHC(3, linkage="ed"), n_init=4, backend=backend
        ).run_all(data, seeds=[0, 1, 2, 3])
        # Moment matrices + the engine-injected ÊD matrix.
        assert len(backend.last_shared_specs) == 4
        self._assert_blocks_unlinked(backend)

    def test_worker_dataset_views_match_parent(self, data):
        """Workers rebuild the dataset around shared views; fitting the
        same seeds through them must equal in-process fits."""
        reference = [
            UKMeans(4).fit(data, seed=s).labels for s in (1, 2, 3, 4)
        ]
        results = MultiRestartRunner(
            UKMeans(4), n_init=4, n_jobs=2, backend="processes"
        ).run_all(data, seeds=[1, 2, 3, 4])
        for ref, res in zip(reference, results):
            np.testing.assert_array_equal(ref, res.labels)


class TestSharedBlockRegistry:
    """The sweep's per-group publication scope: stable arrays (moment
    matrices, the ÊD matrix) go into shared memory once per group, not
    once per run-set."""

    def _counting_shared_ndarray(self, monkeypatch):
        import repro.engine.backends as backends_module

        original = backends_module._SharedNDArray
        created = []

        class Counting(original):
            def __init__(self, array):
                created.append(array.shape)
                super().__init__(array)

        monkeypatch.setattr(backends_module, "_SharedNDArray", Counting)
        return created

    def test_blocks_published_once_per_group(self, data, monkeypatch):
        created = self._counting_shared_ndarray(monkeypatch)
        reference = MultiRestartRunner(
            UKMedoids(3), n_init=4, backend="serial"
        ).run(data, seed=6)
        with shared_block_registry():
            results = [
                MultiRestartRunner(
                    UKMedoids(3), n_init=4, n_jobs=2, backend="processes"
                ).run(data, seed=6)
                for _ in range(2)
            ]
        # 3 moment matrices + 1 ÊD matrix, created once across both
        # run-sets (without the scope each run creates its own 4).
        assert len(created) == 4
        for result in results:
            np.testing.assert_array_equal(reference.labels, result.labels)
            assert reference.objective == result.objective

    def test_registry_blocks_unlinked_on_scope_exit(self, data):
        backend = ProcessBackend(n_jobs=2)
        with shared_block_registry():
            MultiRestartRunner(UKMedoids(3), n_init=4, backend=backend).run(
                data, seed=6
            )
            # Inside the scope the blocks are still alive (reusable).
            name = backend.last_shared_specs[0][0]
            shared_memory.SharedMemory(name=name).close()
        for name, _, _ in backend.last_shared_specs:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_sample_tensors_are_never_interned(self, data, monkeypatch):
        """Per-cell tensors are fresh draws; interning them would hold
        every cell's tensor until the scope closes."""
        created = self._counting_shared_ndarray(monkeypatch)
        with shared_block_registry():
            for seed in (2, 3):
                MultiRestartRunner(
                    BasicUKMeans(4, n_samples=16),
                    n_init=4,
                    n_jobs=2,
                    backend="processes",
                ).run(data, seed=seed)
        # 3 interned moment matrices + one tensor per run-set.
        assert len(created) == 5

    def test_nested_scopes_rejected(self):
        with shared_block_registry():
            with pytest.raises(InvalidParameterError, match="nested"):
                with shared_block_registry():
                    pass


class TestGetBackend:
    def test_names(self):
        assert get_backend("serial", 1).name == "serial"
        assert get_backend("threads", 2).name == "threads"
        assert get_backend("processes", 2).name == "processes"
        assert get_backend("auto", 2).name == "auto"
        assert set(BACKEND_NAMES) == {"serial", "threads", "processes", "auto"}

    def test_none_maps_to_legacy_choice(self):
        assert isinstance(get_backend(None, 1), SerialBackend)
        assert isinstance(get_backend(None, 4), ProcessBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(3)
        assert get_backend(backend, 1) is backend

    def test_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_backend("gpu", 2)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(InvalidParameterError):
            ThreadBackend(0)
        with pytest.raises(InvalidParameterError):
            ProcessBackend(0)
        with pytest.raises(InvalidParameterError):
            AutoBackend(0)

    def test_invalid_batch_size_rejected(self):
        for factory in (ThreadBackend, ProcessBackend, AutoBackend):
            with pytest.raises(InvalidParameterError):
                factory(2, batch_size=0)
        with pytest.raises(InvalidParameterError):
            MultiRestartRunner(UKMeans(4), batch_size=0)
        with pytest.raises(InvalidParameterError):
            MultiRestartRunner(UKMeans(4), batch_size="soon")
        with pytest.raises(InvalidParameterError):
            validate_batch_size(2.5)

    def test_auto_batch_size_accepted_everywhere(self):
        assert validate_batch_size("auto") == "auto"
        assert ThreadBackend(2, batch_size="auto").batch_size == "auto"
        assert ProcessBackend(2, batch_size="auto").batch_size == "auto"
        assert AutoBackend(2, batch_size="auto").batch_size == "auto"
        runner = MultiRestartRunner(UKMeans(4), n_jobs=2, batch_size="auto")
        assert runner.batch_size == "auto"
        from repro.experiments import ExperimentConfig

        assert ExperimentConfig(batch_size="auto").batch_size == "auto"
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(batch_size="bogus")


class TestAutoBackend:
    """Per-algorithm-family dispatch of the ``auto`` backend."""

    @pytest.fixture(scope="class")
    def big_data(self):
        # n * m above AUTO_SERIAL_ELEMENTS so auto reaches the family
        # dispatch instead of short-circuiting to serial.
        return make_blobs_uncertain(
            n_objects=400, n_clusters=4, n_attributes=16, separation=2.5,
            seed=13,
        )

    def test_serial_when_single_worker_or_restart(self, data):
        backend = AutoBackend(n_jobs=1)
        backend.resolve(UKMeans(4), data, n_restarts=8)
        assert backend.last_resolved == "serial"
        backend = AutoBackend(n_jobs=4)
        backend.resolve(UKMeans(4), data, n_restarts=1)
        assert backend.last_resolved == "serial"

    def test_serial_for_sub_ms_fits(self, data):
        # n=90, m=2 is far below the AUTO_SERIAL_ELEMENTS floor.
        backend = AutoBackend(n_jobs=4)
        backend.resolve(UKMeans(4), data, n_restarts=8)
        assert backend.last_resolved == "serial"

    def test_family_dispatch(self, big_data):
        from repro.clustering import UAHC, UCPC

        backend = AutoBackend(n_jobs=4)
        backend.resolve(UKMeans(4), big_data, n_restarts=8)
        assert backend.last_resolved == "threads"
        backend.resolve(BasicUKMeans(4, n_samples=8), big_data, n_restarts=8)
        assert backend.last_resolved == "threads"
        for interpreter_bound in (UKMedoids(4), UCPC(4), UAHC(4)):
            backend.resolve(interpreter_bound, big_data, n_restarts=8)
            assert backend.last_resolved == "processes"

    @pytest.mark.parametrize(
        "factory", [lambda: UKMeans(4), lambda: UKMedoids(4)]
    )
    def test_auto_bit_identical_to_serial(self, big_data, factory):
        """auto must keep the backend-invariance promise across both
        dispatch families (threads for UK-means, processes for
        UK-medoids)."""
        reference = MultiRestartRunner(
            factory(), n_init=4, backend="serial"
        ).run(big_data, seed=11)
        auto = AutoBackend(n_jobs=2)
        result = MultiRestartRunner(
            factory(), n_init=4, n_jobs=2, backend=auto
        ).run(big_data, seed=11)
        assert auto.last_resolved in ("threads", "processes")
        _assert_same_result(reference, result)
