"""Tests for the dataset synthesizers (benchmarks, microarray) — S20-S21."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (
    BENCHMARK_SPECS,
    MICROARRAY_SPECS,
    list_benchmarks,
    list_microarrays,
    make_benchmark,
    make_blobs_uncertain,
    make_classification_like,
    make_microarray,
    make_probe_level_dataset,
)
from repro.exceptions import InvalidParameterError


class TestBenchmarkRegistry:
    def test_table1a_shapes_registered(self):
        """The registry mirrors Table 1-(a) of the paper."""
        expected = {
            "iris": (150, 4, 3),
            "wine": (178, 13, 3),
            "glass": (214, 10, 6),
            "ecoli": (327, 7, 5),
            "yeast": (1484, 8, 10),
            "image": (2310, 19, 7),
            "abalone": (4124, 7, 17),
            "letter": (7648, 16, 10),
            "kddcup99": (4_000_000, 42, 23),
        }
        assert set(list_benchmarks()) == set(expected)
        for name, (n, m, k) in expected.items():
            spec = BENCHMARK_SPECS[name]
            assert (spec.n_objects, spec.n_attributes, spec.n_classes) == (n, m, k)

    def test_full_scale_shapes(self):
        points, labels = make_benchmark("iris", scale=1.0, seed=0)
        assert points.shape == (150, 4)
        assert labels.shape == (150,)
        assert np.unique(labels).size == 3

    def test_scaled_generation(self):
        points, labels = make_benchmark("letter", scale=0.05, seed=0)
        assert points.shape[0] == pytest.approx(0.05 * 7648, abs=2)
        assert points.shape[1] == 16
        assert np.unique(labels).size == 10  # every class survives scaling

    def test_deterministic_given_seed(self):
        a, la = make_benchmark("wine", scale=0.5, seed=3)
        b, lb = make_benchmark("wine", scale=0.5, seed=3)
        assert np.array_equal(a, b)
        assert np.array_equal(la, lb)

    def test_different_seeds_differ(self):
        a, _ = make_benchmark("wine", scale=0.5, seed=3)
        b, _ = make_benchmark("wine", scale=0.5, seed=4)
        assert not np.array_equal(a, b)

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_benchmark("mnist")

    def test_invalid_scale_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_benchmark("iris", scale=0.0)
        with pytest.raises(InvalidParameterError):
            make_benchmark("iris", scale=2.0)

    def test_difficulty_ordering(self):
        """Separation calibration: iris must be easier to cluster than
        abalone (matching the paper's relative accuracy levels)."""
        from repro.clustering import UKMeans
        from repro.evaluation import f_measure
        from repro.objects import UncertainDataset

        scores = {}
        for name in ("iris", "abalone"):
            pts, labels = make_benchmark(name, scale=0.3, seed=0)
            data = UncertainDataset.from_points(pts, labels)
            k = int(np.unique(labels).size)
            result = UKMeans(n_clusters=k, init="kmeans++").fit(data, seed=0)
            scores[name] = f_measure(result.labels, data.labels)
        assert scores["iris"] > scores["abalone"]


class TestClassificationLike:
    def test_shapes_and_class_floor(self):
        points, labels = make_classification_like(50, 3, 7, seed=0)
        assert points.shape == (50, 3)
        counts = np.bincount(labels, minlength=7)
        assert np.all(counts >= 2)

    def test_separation_controls_overlap(self):
        # Higher separation => larger between-class center spread.
        def center_spread(sep):
            pts, labels = make_classification_like(
                300, 2, 3, separation=sep, seed=1
            )
            centers = np.array(
                [pts[labels == c].mean(axis=0) for c in range(3)]
            )
            return np.linalg.norm(centers - centers.mean(axis=0), axis=1).mean()

        assert center_spread(8.0) > center_spread(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            make_classification_like(3, 2, 2)  # n < 2k
        with pytest.raises(InvalidParameterError):
            make_classification_like(10, 0, 2)
        with pytest.raises(InvalidParameterError):
            make_classification_like(10, 2, 0)
        with pytest.raises(InvalidParameterError):
            make_classification_like(10, 2, 2, separation=0.0)


class TestBlobs:
    def test_labels_and_uncertainty(self):
        data = make_blobs_uncertain(n_objects=40, n_clusters=4, seed=0)
        assert len(data) == 40
        assert data.n_classes == 4
        assert np.all(data.total_variances > 0)

    def test_mass_controls_region(self):
        tight = make_blobs_uncertain(n_objects=10, mass=0.5, seed=0)
        wide = make_blobs_uncertain(n_objects=10, mass=0.999, seed=0)
        assert np.mean(
            [o.region.widths.mean() for o in tight]
        ) < np.mean([o.region.widths.mean() for o in wide])


class TestMicroarray:
    def test_table1b_shapes_registered(self):
        assert set(list_microarrays()) == {"neuroblastoma", "leukaemia"}
        assert MICROARRAY_SPECS["neuroblastoma"].n_genes == 22282
        assert MICROARRAY_SPECS["neuroblastoma"].n_tissues == 14
        assert MICROARRAY_SPECS["leukaemia"].n_genes == 22690
        assert MICROARRAY_SPECS["leukaemia"].n_tissues == 21

    def test_scaled_generation(self):
        data = make_microarray("neuroblastoma", scale=0.01, seed=0)
        assert data.dim == 14
        assert len(data) == pytest.approx(223, abs=2)
        assert np.all(data.total_variances > 0)

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            make_microarray("lymphoma")

    def test_probe_noise_decreases_with_expression(self):
        """multi-mgMOS signature: lower expression => higher probe std."""
        data = make_probe_level_dataset(
            n_genes=300, n_tissues=5, n_modules=3, seed=0
        )
        mu = data.mu_matrix.ravel()
        std = np.sqrt(data.sigma2_matrix.ravel())
        low = std[mu < np.quantile(mu, 0.2)].mean()
        high = std[mu > np.quantile(mu, 0.8)].mean()
        assert low > high

    def test_module_structure_is_discoverable(self):
        from repro.clustering import UKMeans
        from repro.evaluation import f_measure

        data = make_probe_level_dataset(
            n_genes=200, n_tissues=8, n_modules=4, module_spread=3.0, seed=1
        )
        result = UKMeans(n_clusters=4, init="kmeans++").fit(data, seed=1)
        assert f_measure(result.labels, data.labels) > 0.7

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            make_probe_level_dataset(n_genes=2, n_tissues=3, n_modules=5)
        with pytest.raises(InvalidParameterError):
            make_probe_level_dataset(n_genes=10, n_tissues=0, n_modules=2)
        with pytest.raises(InvalidParameterError):
            make_microarray("neuroblastoma", scale=0.0)

    def test_deterministic(self):
        a = make_microarray("leukaemia", scale=0.005, seed=5)
        b = make_microarray("leukaemia", scale=0.005, seed=5)
        assert np.allclose(a.mu_matrix, b.mu_matrix)
