"""Tests for the Section 5.1 uncertainty-generation pipeline (S22)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import PDF_FAMILIES, UncertaintyGenerator
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    return rng.normal(0, 3, size=(40, 3)), rng.integers(0, 3, size=40)


@pytest.mark.parametrize("family", PDF_FAMILIES)
class TestPerFamily:
    def test_pair_shapes(self, family, points):
        pts, labels = points
        gen = UncertaintyGenerator(family=family, spread=0.5)
        pair = gen.generate(pts, labels, seed=0)
        assert len(pair.perturbed) == 40
        assert len(pair.uncertain) == 40
        assert pair.uncertain.dim == 3

    def test_perturbed_is_deterministic(self, family, points):
        pts, labels = points
        pair = UncertaintyGenerator(family=family).generate(pts, labels, seed=0)
        assert np.all(pair.perturbed.total_variances == 0.0)

    def test_uncertain_has_variance(self, family, points):
        pts, labels = points
        pair = UncertaintyGenerator(family=family).generate(pts, labels, seed=0)
        assert np.all(pair.uncertain.total_variances > 0.0)

    def test_expected_values_near_original(self, family, points):
        """mu(f_w) = w for the untruncated pdf; truncation (Case 2)
        preserves it exactly for the symmetric families and approximately
        for the exponential."""
        pts, labels = points
        gen = UncertaintyGenerator(family=family, spread=0.5, mass=0.95)
        pair = gen.generate(pts, labels, seed=1)
        mu = pair.uncertain.mu_matrix
        scale = pts.std(axis=0)
        if family == "exponential":
            assert np.all(np.abs(mu - pts) < 0.6 * scale)
        else:
            assert np.allclose(mu, pts, atol=1e-8)

    def test_labels_carried_through(self, family, points):
        pts, labels = points
        pair = UncertaintyGenerator(family=family).generate(pts, labels, seed=2)
        assert np.array_equal(pair.perturbed.labels, labels)
        assert np.array_equal(pair.uncertain.labels, labels)

    def test_reproducible(self, family, points):
        pts, labels = points
        a = UncertaintyGenerator(family=family).generate(pts, labels, seed=3)
        b = UncertaintyGenerator(family=family).generate(pts, labels, seed=3)
        assert np.allclose(a.perturbed.mu_matrix, b.perturbed.mu_matrix)
        assert np.allclose(a.uncertain.mu_matrix, b.uncertain.mu_matrix)

    def test_perturbation_draws_from_assigned_pdf(self, family, points):
        """Each perturbed point must lie within the (untruncated) support
        scale of its pdf — loosely: within a few column stds of w."""
        pts, labels = points
        gen = UncertaintyGenerator(family=family, spread=0.5)
        pair = gen.generate(pts, labels, seed=4)
        deviation = np.abs(pair.perturbed.mu_matrix - pts)
        column_std = pts.std(axis=0)
        assert np.all(deviation < 8.0 * column_std)

    def test_region_mass_is_truncated(self, family, points):
        """Case-2 regions are bounded (truncation happened)."""
        pts, labels = points
        pair = UncertaintyGenerator(family=family, mass=0.95).generate(
            pts, labels, seed=5
        )
        for obj in pair.uncertain:
            assert np.all(np.isfinite(obj.region.lower))
            assert np.all(np.isfinite(obj.region.upper))


class TestGeneratorOptions:
    def test_mcmc_mode(self, points):
        pts, labels = points
        gen = UncertaintyGenerator(family="normal", use_mcmc=True)
        pair = gen.generate(pts[:10], labels[:10], seed=0)
        assert len(pair.perturbed) == 10
        deviation = np.abs(pair.perturbed.mu_matrix - pts[:10])
        assert np.all(deviation < 10.0 * pts.std(axis=0))

    def test_spread_scales_variance(self, points):
        pts, labels = points
        small = UncertaintyGenerator(family="normal", spread=0.2).generate(
            pts, labels, seed=6
        )
        large = UncertaintyGenerator(family="normal", spread=2.0).generate(
            pts, labels, seed=6
        )
        assert (
            large.uncertain.total_variances.mean()
            > small.uncertain.total_variances.mean()
        )

    def test_uncertain_dataset_shortcut(self, points):
        pts, labels = points
        gen = UncertaintyGenerator(family="uniform")
        ds = gen.uncertain_dataset(pts, labels, seed=7)
        assert len(ds) == 40

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            UncertaintyGenerator(family="cauchy")
        with pytest.raises(InvalidParameterError):
            UncertaintyGenerator(spread=0.0)
        with pytest.raises(InvalidParameterError):
            UncertaintyGenerator(mass=1.5)

    def test_label_length_mismatch(self, points):
        pts, _ = points
        with pytest.raises(InvalidParameterError):
            UncertaintyGenerator().generate(pts, labels=[0, 1], seed=0)

    def test_unlabeled_generation(self, points):
        pts, _ = points
        pair = UncertaintyGenerator().generate(pts, seed=8)
        assert pair.uncertain.labels is None
