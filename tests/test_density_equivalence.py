"""Seed-for-seed equivalence of the ported density-based algorithms.

PR 2 moved FDBSCAN and FOPTICS from per-object sampling loops onto the
batched ``UncertainDataset.sample_tensor`` path and replaced their
row-at-a-time pairwise computations with the blocked kernels of
``repro.clustering._density``.  This suite pins — in the spirit of
``TestLosslessPruningRegression`` — that the port is *behaviorally
invisible*: against frozen copies of the pre-port implementations
(reproduced below exactly as they shipped), the ported algorithms give

* identical FDBSCAN labels, and
* identical FOPTICS cluster orderings (and extracted labels),

for the same seeds across 20 seeds.  The sampled tensors themselves are
identical because the batched sampler consumes the RNG stream in the
same order as the per-object loop for family-homogeneous datasets; the
blocked kernels then agree with the legacy row loops to a few ulps,
which the discrete outputs (labels, orderings) absorb.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import FDBSCAN, FOPTICS, auto_eps
from repro.clustering import _density
from repro.clustering.base import ClusteringResult
from repro.clustering.fdbscan import pairwise_reach_probabilities
from repro.clustering.foptics import cluster_ordering, expected_distance_matrix
from repro.datagen import make_blobs_uncertain
from repro.utils.rng import ensure_rng


# ----------------------------------------------------------------------
# Frozen pre-port reference implementations (verbatim seed-code idioms).
# ----------------------------------------------------------------------
def _legacy_sample_tensor(dataset, n_samples, rng):
    """The replaced off-line idiom: one Python sample call per object."""
    samples = np.empty((len(dataset), n_samples, dataset.dim))
    for idx, obj in enumerate(dataset):
        samples[idx] = obj.sample(n_samples, rng)
    return samples


def _legacy_reach_probabilities(samples, eps):
    """Pre-port row-loop estimator of ``Pr(||X_i - X_j|| <= eps)``."""
    n, _, _ = samples.shape
    eps_sq = eps * eps
    probs = np.eye(n)
    for i in range(n - 1):
        diff = samples[i + 1 :] - samples[i]
        within = np.einsum("nsm,nsm->ns", diff, diff) <= eps_sq
        p = within.mean(axis=1)
        probs[i, i + 1 :] = p
        probs[i + 1 :, i] = p
    return probs


def _legacy_expected_distances(samples):
    """Pre-port row-loop Monte-Carlo expected-distance matrix."""
    n = samples.shape[0]
    out = np.zeros((n, n))
    for i in range(n - 1):
        diff = samples[i + 1 :] - samples[i]
        dist = np.sqrt(np.einsum("nsm,nsm->ns", diff, diff)).mean(axis=1)
        out[i, i + 1 :] = dist
        out[i + 1 :, i] = dist
    return out


def _legacy_fdbscan_fit(model: FDBSCAN, dataset, seed) -> np.ndarray:
    """Pre-port FDBSCAN fit: per-object sampling + row-loop estimator.

    Graph expansion is shared with the ported class (it was not touched
    by the port), exactly as the pruning regression shares the repair
    helper with basic UK-means.
    """
    rng = ensure_rng(seed)
    eps = model.eps if model.eps is not None else auto_eps(
        dataset, model.eps_quantile
    )
    samples = _legacy_sample_tensor(dataset, model.n_samples, rng)
    probs = _legacy_reach_probabilities(samples, eps)
    expected_neighbors = probs.sum(axis=1)
    is_core = expected_neighbors >= model.min_pts
    reachable = probs >= model.reach_prob
    return FDBSCAN._expand(is_core, reachable)


def _legacy_foptics_fit(model: FOPTICS, dataset, seed):
    """Pre-port FOPTICS fit: per-object sampling + row-loop distances."""
    rng = ensure_rng(seed)
    min_pts = min(model.min_pts, len(dataset))
    samples = _legacy_sample_tensor(dataset, model.n_samples, rng)
    distances = _legacy_expected_distances(samples)
    ordering, reachability = cluster_ordering(distances, min_pts)
    labels, _ = model._extract(ordering, reachability)
    return ordering, reachability, labels


@pytest.fixture(scope="module")
def data():
    # Moderate separation: clusters exist but the density structure has
    # boundary objects and noise, so every code path is exercised.
    return make_blobs_uncertain(
        n_objects=80, n_clusters=4, separation=3.0, seed=91
    )


class TestDensityEquivalenceRegression:
    """Ported density algorithms must reproduce the pre-port results.

    Regression for the batched-sampling port: for family-homogeneous
    datasets the batched tensor equals the per-object draws value for
    value, and the blocked pairwise kernels must not flip any discrete
    decision (core test, reachability edge, ordering step).
    """

    def test_fdbscan_exact_label_match_across_seeds(self, data):
        model = FDBSCAN(min_pts=4, n_samples=24)
        for seed in range(20):
            ported: ClusteringResult = model.fit(data, seed=seed)
            legacy = _legacy_fdbscan_fit(model, data, seed)
            np.testing.assert_array_equal(
                ported.labels,
                legacy,
                err_msg=f"FDBSCAN diverged from the pre-port path at seed {seed}",
            )

    def test_foptics_exact_ordering_match_across_seeds(self, data):
        model = FOPTICS(min_pts=4, n_samples=24, n_clusters=4)
        for seed in range(20):
            ported = model.fit(data, seed=seed)
            ordering, reachability, labels = _legacy_foptics_fit(
                model, data, seed
            )
            np.testing.assert_array_equal(
                np.asarray(ported.extras["ordering"]),
                ordering,
                err_msg=f"FOPTICS ordering diverged at seed {seed}",
            )
            np.testing.assert_array_equal(
                ported.labels,
                labels,
                err_msg=f"FOPTICS extraction diverged at seed {seed}",
            )
            np.testing.assert_allclose(
                np.asarray(ported.extras["reachability"]),
                reachability,
                rtol=1e-9,
                err_msg=f"FOPTICS reachability diverged at seed {seed}",
            )

    def test_batched_tensor_matches_per_object_draws(self, data):
        """The off-line phase itself is stream-identical on this data."""
        for seed in (0, 7):
            batched = data.sample_tensor(16, seed=seed)
            legacy = _legacy_sample_tensor(data, 16, ensure_rng(seed))
            np.testing.assert_array_equal(batched, legacy)


class TestBlockedKernels:
    """The blocked kernels agree with the row loops and with each other
    regardless of the block width (the memory knob only trades peak
    memory for iterations, never values)."""

    @pytest.fixture(scope="class")
    def samples(self, data):
        return data.sample_tensor(24, seed=5)

    def test_reach_probabilities_match_legacy(self, samples):
        legacy = _legacy_reach_probabilities(samples, eps=1.5)
        for block in (None, 1, 3, 64, 10_000):
            blocked = pairwise_reach_probabilities(samples, 1.5, block=block)
            np.testing.assert_array_equal(
                blocked, legacy, err_msg=f"block={block}"
            )

    def test_expected_distances_match_legacy(self, samples):
        """Bit-identical, not merely close: FOPTICS's ordering loop
        breaks near-ties by float comparison, so the ED kernel must
        reproduce the row loop exactly (the ROADMAP-guarded invariant)."""
        legacy = _legacy_expected_distances(samples)
        for block in (None, 1, 3, 64, 10_000):
            blocked = expected_distance_matrix(samples, block=block)
            np.testing.assert_array_equal(
                blocked, legacy, err_msg=f"block={block}"
            )

    def test_memory_knob_respected(self, data, samples, monkeypatch):
        """Shrinking the global element budget changes nothing but the
        internal block width."""
        reference = pairwise_reach_probabilities(samples, 1.5)
        monkeypatch.setattr(_density, "DENSITY_BLOCK_ELEMENTS", 256)
        constrained = pairwise_reach_probabilities(samples, 1.5)
        np.testing.assert_array_equal(constrained, reference)
        result = FDBSCAN(min_pts=4, n_samples=24).fit(data, seed=3)
        unconstrained_labels = _legacy_fdbscan_fit(
            FDBSCAN(min_pts=4, n_samples=24), data, 3
        )
        np.testing.assert_array_equal(result.labels, unconstrained_labels)

    def test_invalid_block(self, samples):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            pairwise_reach_probabilities(samples, 1.0, block=0)


class TestDensitySampleCache:
    """FDBSCAN/FOPTICS honor the pinned-tensor protocol the engine uses."""

    @pytest.mark.parametrize("cls", [FDBSCAN, FOPTICS], ids=["FDB", "FOPT"])
    def test_pinned_cache_reused_verbatim(self, cls, data):
        tensor = data.sample_tensor(16, seed=11)
        first = cls(n_samples=16)
        first.sample_cache = tensor
        second = cls(n_samples=16)
        second.sample_cache = tensor.copy()
        # Different fit seeds: with a pinned tensor the fit is
        # deterministic, so results must coincide.
        a = first.fit(data, seed=0)
        b = second.fit(data, seed=999)
        np.testing.assert_array_equal(a.labels, b.labels)

    @pytest.mark.parametrize("cls", [FDBSCAN, FOPTICS], ids=["FDB", "FOPT"])
    def test_cache_shape_validated(self, cls, data):
        from repro.exceptions import InvalidParameterError

        model = cls(n_samples=8)
        model.sample_cache = np.zeros((3, 8, data.dim))
        with pytest.raises(InvalidParameterError):
            model.fit(data, seed=0)
