"""Tests for the pairwise-distance plane (shared ÊD matrices).

The paper accounts UK-medoids' pairwise ÊD matrix as a one-time
*off-line* phase; the plane makes the engine honor that accounting: the
matrix is computed exactly once per run-set (spy-asserted on every
backend), injected into ``wants_pairwise_ed`` algorithms, threaded
through the evaluation protocol's two fit series, and validated when it
arrives from outside.  Everything here is bit-identity or counting — the
plane must be invisible in the results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import UKMedoids
from repro.datagen import (
    UncertaintyGenerator,
    make_blobs_uncertain,
    make_classification_like,
)
from repro.engine import MultiRestartRunner, fit_runs
from repro.exceptions import InvalidParameterError
from repro.objects.distance import (
    pairwise_squared_expected_distances,
    validate_pairwise_ed,
)


def _make_data(seed=13):
    return make_blobs_uncertain(
        n_objects=60, n_clusters=3, separation=2.5, seed=seed
    )


@pytest.fixture
def ed_spy(monkeypatch):
    """Counts pairwise_squared_expected_distances calls, behavior intact.

    Patches every lookup site: the defining module (late-bound import in
    ``UncertainDataset.pairwise_ed``) plus the module globals of the two
    plane consumers — UK-medoids and UAHC — whose in-fit fallbacks the
    plane exists to avoid.
    """
    import repro.clustering.uahc as uahc_module
    import repro.clustering.ukmedoids as ukmedoids_module
    import repro.objects.distance as distance_module

    calls = {"count": 0}
    original = distance_module.pairwise_squared_expected_distances

    def counting(dataset):
        calls["count"] += 1
        return original(dataset)

    for module in (distance_module, ukmedoids_module, uahc_module):
        monkeypatch.setattr(
            module, "pairwise_squared_expected_distances", counting
        )
    return calls


class TestDatasetPlane:
    def test_computed_once_and_cached(self, ed_spy):
        data = _make_data()
        first = data.pairwise_ed()
        second = data.pairwise_ed()
        assert first is second
        assert ed_spy["count"] == 1

    def test_matches_direct_computation(self):
        data = _make_data()
        np.testing.assert_array_equal(
            data.pairwise_ed(), pairwise_squared_expected_distances(data)
        )

    def test_cached_matrix_is_read_only(self):
        data = _make_data()
        with pytest.raises(ValueError):
            data.pairwise_ed()[0, 0] = -1.0


class TestOncePerRunSet:
    """The satellite regression: one ÊD build per engine run-set."""

    @pytest.mark.parametrize(
        "backend,n_jobs",
        [("serial", 1), ("threads", 3), ("processes", 2)],
    )
    def test_engine_builds_matrix_exactly_once(self, ed_spy, backend, n_jobs):
        data = _make_data()
        MultiRestartRunner(
            UKMedoids(3), n_init=6, n_jobs=n_jobs, backend=backend
        ).run(data, seed=4)
        assert ed_spy["count"] == 1

    def test_without_plane_matrix_is_rebuilt_per_restart(self, ed_spy):
        """The pre-plane behavior the bugfix removes, kept measurable
        via share_pairwise=False."""
        data = _make_data()
        MultiRestartRunner(
            UKMedoids(3), n_init=6, backend="serial", share_pairwise=False
        ).run(data, seed=4)
        assert ed_spy["count"] == 6

    def test_fit_runs_builds_matrix_exactly_once(self, ed_spy):
        data = _make_data()
        fit_runs(UKMedoids(3), data, [0, 1, 2, 3])
        assert ed_spy["count"] == 1

    def test_batched_run_builds_matrix_exactly_once(self, ed_spy):
        data = _make_data()
        MultiRestartRunner(
            UKMedoids(3), n_init=6, n_jobs=2, backend="threads", batch_size=3
        ).run(data, seed=4)
        assert ed_spy["count"] == 1

    def test_repeated_run_sets_reuse_dataset_cache(self, ed_spy):
        """Across run-sets on one dataset the cached matrix is reused —
        the off-line phase is per dataset, not per invocation."""
        data = _make_data()
        runner = MultiRestartRunner(UKMedoids(3), n_init=3)
        runner.run(data, seed=1)
        runner.run(data, seed=2)
        assert ed_spy["count"] == 1


class TestBitIdentity:
    def test_20_seed_identity_with_and_without_plane(self):
        """The plane (and in-worker batching on top of it) must be
        invisible: same labels, same objective, same best restart."""
        data = _make_data()
        for seed in range(20):
            with_plane = MultiRestartRunner(
                UKMedoids(3), n_init=3, backend="serial"
            ).run(data, seed=seed)
            without_plane = MultiRestartRunner(
                UKMedoids(3), n_init=3, backend="serial",
                share_pairwise=False,
            ).run(data, seed=seed)
            batched = MultiRestartRunner(
                UKMedoids(3), n_init=3, n_jobs=2, backend="threads",
                batch_size=2,
            ).run(data, seed=seed)
            for other in (without_plane, batched):
                np.testing.assert_array_equal(with_plane.labels, other.labels)
                assert with_plane.objective == other.objective
                assert (
                    with_plane.extras["best_restart"]
                    == other.extras["best_restart"]
                )

    def test_engine_fit_equals_direct_fit(self):
        data = _make_data()
        direct = UKMedoids(3).fit(data, seed=5)
        engine = MultiRestartRunner(UKMedoids(3), n_init=1).run(data, seed=5)
        # n_init=1 uses the same derived seed scheme as direct seeds do
        # through run_all; compare via run_all with explicit seeds.
        routed = MultiRestartRunner(UKMedoids(3), n_init=1).run_all(
            data, seeds=[5]
        )[0]
        np.testing.assert_array_equal(direct.labels, routed.labels)
        assert direct.objective == routed.objective
        assert engine.extras["shared_pairwise_ed"] is True

    def test_injected_matrix_is_actually_used(self):
        """Scaling the injected matrix scales the reported objective —
        proof the fits read the plane rather than recomputing."""
        data = _make_data()
        matrix = data.pairwise_ed()
        reference = MultiRestartRunner(UKMedoids(3), n_init=2).run(data, seed=3)
        scaled = MultiRestartRunner(UKMedoids(3), n_init=2).run(
            data, seed=3, pairwise_ed=2.0 * matrix
        )
        np.testing.assert_array_equal(reference.labels, scaled.labels)
        assert scaled.objective == pytest.approx(2.0 * reference.objective)

    def test_explicit_matrix_wins_over_share_pairwise_off(self):
        """share_pairwise=False disables only the automatic injection;
        an explicitly passed matrix is always honored."""
        data = _make_data()
        matrix = data.pairwise_ed()
        reference = MultiRestartRunner(UKMedoids(3), n_init=2).run(data, seed=3)
        explicit = MultiRestartRunner(
            UKMedoids(3), n_init=2, share_pairwise=False
        ).run(data, seed=3, pairwise_ed=2.0 * matrix)
        assert explicit.objective == pytest.approx(2.0 * reference.objective)

    def test_explicit_matrix_flagged_as_shared(self):
        """Provenance: shared_pairwise_ed must reflect the injection
        that actually happened, not the share_pairwise knob."""
        data = _make_data()
        result = MultiRestartRunner(
            UKMedoids(3), n_init=2, share_pairwise=False
        ).run(data, seed=3, pairwise_ed=np.asarray(data.pairwise_ed()))
        assert result.extras["shared_pairwise_ed"] is True
        plain = MultiRestartRunner(
            UKMedoids(3), n_init=2, share_pairwise=False
        ).run(data, seed=3)
        assert plain.extras["shared_pairwise_ed"] is False

    def test_clusterer_own_matrix_wins_over_explicit(self):
        """Precedence: a constructor-fixed matrix is the most local
        intent; run(pairwise_ed=...) must not shadow it."""
        data = _make_data()
        own = np.asarray(data.pairwise_ed())
        model = UKMedoids(3, precomputed=own)
        reference = MultiRestartRunner(UKMedoids(3), n_init=2).run(data, seed=3)
        result = MultiRestartRunner(model, n_init=2).run(
            data, seed=3, pairwise_ed=2.0 * own
        )
        assert result.objective == reference.objective  # not doubled

    def test_fit_runs_reference_path_honors_explicit_matrix(self):
        """engine=False must mean the same thing as engine=True for an
        explicitly supplied matrix (routing-equivalence baseline)."""
        data = _make_data()
        scaled = 2.0 * np.asarray(data.pairwise_ed())
        routed = fit_runs(
            UKMedoids(3), data, [0, 1], engine=True, pairwise_ed=scaled
        )
        direct = fit_runs(
            UKMedoids(3), data, [0, 1], engine=False, pairwise_ed=scaled
        )
        for r, d in zip(routed, direct):
            np.testing.assert_array_equal(r.labels, d.labels)
            assert r.objective == d.objective

    def test_processes_workers_use_injected_matrix(self):
        """Workers must read the published matrix, not rebuild their
        own: pin a *different* dataset's matrix and check processes
        reproduces the serial result computed from that same pin."""
        data = _make_data(seed=13)
        other = _make_data(seed=99)
        foreign = np.asarray(other.pairwise_ed())

        def pinned():
            model = UKMedoids(3)
            model.pairwise_ed_cache = foreign
            return model

        serial = MultiRestartRunner(pinned(), n_init=4, backend="serial").run(
            data, seed=6
        )
        processes = MultiRestartRunner(
            pinned(), n_init=4, n_jobs=2, backend="processes"
        ).run(data, seed=6)
        np.testing.assert_array_equal(serial.labels, processes.labels)
        assert serial.objective == processes.objective
        # Sanity: the foreign matrix really changes the outcome.
        native = MultiRestartRunner(UKMedoids(3), n_init=4).run(data, seed=6)
        assert native.objective != serial.objective


class TestUAHCPlane:
    """UAHC joins the distance plane for its ``"ed"`` linkage: the
    initial singleton proximity structure *is* the ÊD matrix, so the
    engine seeds it from the shared cache — one build per dataset,
    bit-identical to the in-fit build."""

    def test_ed_linkage_declares_plane(self):
        from repro.clustering import UAHC

        assert UAHC(3, linkage="ed").wants_pairwise_ed is True
        assert UAHC(3, linkage="jeffreys").wants_pairwise_ed is False

    def test_engine_builds_matrix_exactly_once(self, ed_spy):
        from repro.clustering import UAHC

        data = _make_data()
        fit_runs(UAHC(3, linkage="ed"), data, [0, 1, 2])
        assert ed_spy["count"] == 1

    def test_jeffreys_linkage_never_builds_matrix(self, ed_spy):
        from repro.clustering import UAHC

        data = _make_data()
        fit_runs(UAHC(3, linkage="jeffreys"), data, [0, 1])
        assert ed_spy["count"] == 0

    def test_mixed_roster_shares_one_dataset_build(self, ed_spy):
        """UK-medoids and UAHC run-sets on one dataset read the same
        cached matrix — the off-line phase is per dataset, not per
        algorithm."""
        from repro.clustering import UAHC

        data = _make_data()
        fit_runs(UKMedoids(3), data, [0, 1])
        fit_runs(UAHC(3, linkage="ed"), data, [0, 1])
        assert ed_spy["count"] == 1

    def test_seeded_merge_structure_bit_identical_to_fallback(self):
        """With and without the injected cache: same labels, same merge
        pairs, same merge heights — the plane must be invisible."""
        from repro.clustering import UAHC

        data = _make_data()
        direct = UAHC(3, linkage="ed").fit(data)
        seeded_model = UAHC(3, linkage="ed")
        seeded_model.pairwise_ed_cache = data.pairwise_ed()
        seeded = seeded_model.fit(data)
        routed = fit_runs(UAHC(3, linkage="ed"), data, [0])[0]
        for other in (seeded, routed):
            np.testing.assert_array_equal(direct.labels, other.labels)
            assert [
                (m.left, m.right, m.height)
                for m in direct.extras["merges"]
            ] == [
                (m.left, m.right, m.height)
                for m in other.extras["merges"]
            ]

    def test_cache_shape_validated(self):
        from repro.clustering import UAHC

        data = _make_data()
        model = UAHC(3, linkage="ed")
        model.pairwise_ed_cache = np.zeros((4, 4))
        with pytest.raises(InvalidParameterError, match="must be \\(60, 60\\)"):
            model.fit(data)

    def test_pin_restored_after_engine_run(self):
        from repro.clustering import UAHC
        from repro.engine import MultiRestartRunner

        data = _make_data()
        model = UAHC(3, linkage="ed")
        MultiRestartRunner(model, n_init=1).run_all(data, seeds=[0])
        assert model.pairwise_ed_cache is None


class TestValidation:
    """Satellite: UKMedoids(precomputed=...) rejects garbage loudly."""

    def _valid(self, n=6):
        data = make_blobs_uncertain(
            n_objects=n, n_clusters=2, separation=4.0, seed=0
        )
        return pairwise_squared_expected_distances(data)

    def test_asymmetric_rejected(self):
        matrix = self._valid()
        matrix[0, 1] *= 3.0  # break symmetry
        with pytest.raises(InvalidParameterError, match="symmetric"):
            UKMedoids(2, precomputed=matrix)

    def test_nan_rejected(self):
        matrix = self._valid()
        matrix[2, 3] = matrix[3, 2] = np.nan
        with pytest.raises(InvalidParameterError, match="non-finite"):
            UKMedoids(2, precomputed=matrix)

    def test_inf_rejected(self):
        matrix = self._valid()
        matrix[1, 4] = matrix[4, 1] = np.inf
        with pytest.raises(InvalidParameterError, match="non-finite"):
            UKMedoids(2, precomputed=matrix)

    def test_negative_rejected(self):
        matrix = self._valid()
        matrix[0, 5] = matrix[5, 0] = -1e-3
        with pytest.raises(InvalidParameterError, match="negative"):
            UKMedoids(2, precomputed=matrix)

    def test_non_square_rejected(self):
        with pytest.raises(InvalidParameterError, match="square"):
            UKMedoids(2, precomputed=np.zeros((4, 5)))
        with pytest.raises(InvalidParameterError, match="square"):
            UKMedoids(2, precomputed=np.zeros(4))

    def test_wrong_size_rejected_at_fit(self):
        data = _make_data()
        model = UKMedoids(3, precomputed=self._valid(6))
        with pytest.raises(InvalidParameterError, match="must be \\(60, 60\\)"):
            model.fit(data, seed=0)

    def test_near_symmetric_tolerated(self):
        """Round-off-level asymmetry (e.g. a matrix that went through a
        transpose-accumulate) must pass the tolerance check."""
        matrix = self._valid()
        noise = 1e-12 * np.random.default_rng(0).random(matrix.shape)
        UKMedoids(2, precomputed=matrix + noise)

    def test_float64_input_adopted_as_view(self):
        """Documented aliasing contract: an already-float64 matrix is
        adopted, not copied (it is O(n^2) by design)."""
        matrix = self._valid()
        model = UKMedoids(2, precomputed=matrix)
        assert model.precomputed is matrix

    def test_other_dtypes_are_converted_copies(self):
        matrix = self._valid().astype(np.float32)
        model = UKMedoids(2, precomputed=matrix)
        assert model.precomputed is not matrix
        assert model.precomputed.dtype == np.float64

    def test_validate_helper_passes_valid_through(self):
        matrix = self._valid()
        assert validate_pairwise_ed(matrix, n=6) is matrix
        with pytest.raises(InvalidParameterError, match="must be \\(9, 9\\)"):
            validate_pairwise_ed(matrix, n=9)


class TestProtocolThreading:
    """Satellite: evaluate_theta/_multirun thread the scoring matrix
    into both fit series instead of rebuilding it 2 x n_runs times."""

    @pytest.fixture
    def pair(self):
        points, labels = make_classification_like(
            40, 2, 3, separation=5.0, seed=11
        )
        return UncertaintyGenerator(family="normal", spread=0.8).generate(
            points, labels, seed=11
        )

    @pytest.mark.parametrize("engine", [True, False])
    def test_multirun_builds_two_matrices_total(self, ed_spy, pair, engine):
        """One matrix per dataset (Case-1 perturbed, Case-2 uncertain) —
        not one per fit — in both routing modes."""
        from repro.evaluation import evaluate_theta_multirun

        evaluate_theta_multirun(
            UKMedoids(3), pair, n_runs=4, seed=2, engine=engine
        )
        assert ed_spy["count"] == 2

    def test_multirun_engine_matches_direct_for_ukmedoids(self, pair):
        from repro.evaluation import evaluate_theta_multirun

        routed = evaluate_theta_multirun(
            UKMedoids(3), pair, n_runs=3, seed=9, engine=True
        )
        direct = evaluate_theta_multirun(
            UKMedoids(3), pair, n_runs=3, seed=9, engine=False
        )
        assert routed.theta_mean == direct.theta_mean
        assert routed.quality_mean == direct.quality_mean

    def test_evaluate_theta_uses_supplied_distances(self, ed_spy, pair):
        from repro.evaluation import evaluate_theta

        distances = pairwise_squared_expected_distances(pair.uncertain)
        ed_spy["count"] = 0
        evaluate_theta(UKMedoids(3), pair, seed=1, distances=distances)
        # Only the Case-1 (perturbed) matrix is built; Case 2 reuses the
        # supplied scoring matrix.
        assert ed_spy["count"] == 1

    def test_invalid_distances_rejected(self, pair):
        """The supplied matrix now feeds the Case-2 fits, so garbage is
        rejected loudly instead of silently clustered."""
        from repro.evaluation import evaluate_theta, evaluate_theta_multirun

        bad = pairwise_squared_expected_distances(pair.uncertain)
        bad[0, 1] = np.nan
        with pytest.raises(InvalidParameterError, match="non-finite"):
            evaluate_theta(UKMedoids(3), pair, seed=1, distances=bad)
        with pytest.raises(InvalidParameterError, match="non-finite"):
            evaluate_theta_multirun(
                UKMedoids(3), pair, n_runs=2, seed=1, distances=bad
            )

    def test_pin_restored_after_protocol(self, pair):
        from repro.evaluation import evaluate_theta

        model = UKMedoids(3)
        evaluate_theta(model, pair, seed=1)
        assert model.pairwise_ed_cache is None


class TestExperimentIntegration:
    def test_table3_builds_one_matrix_per_dataset(self, ed_spy):
        """The experiment runner's criterion matrix feeds the UK-medoids
        fits too — one build per dataset regardless of cells and runs."""
        from repro.experiments import ExperimentConfig, run_table3

        run_table3(
            ExperimentConfig(scale=0.004, n_runs=2, seed=3, n_samples=8),
            datasets=("neuroblastoma",),
            cluster_counts=(2, 3),
            algorithms=("UKmed",),
        )
        assert ed_spy["count"] == 1
