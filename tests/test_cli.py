"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_table2_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.runs == 5
        assert "iris" in args.datasets

    def test_figure5_base_size(self):
        args = build_parser().parse_args(["figure5", "--base-size", "1000"])
        assert args.base_size == 1000

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableX"])


class TestExecution:
    def test_demo(self, capsys):
        assert main(["demo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "UCPC" in out
        assert "F-measure" in out

    def test_table2_tiny(self, capsys):
        code = main(
            [
                "table2",
                "--datasets", "iris",
                "--families", "normal",
                "--algorithms", "UKM", "UCPC",
                "--runs", "1",
                "--max-objects", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "overall avg" in out

    def test_figure5_tiny(self, capsys):
        code = main(["figure5", "--base-size", "200", "--runs", "1"])
        assert code == 0
        assert "scalability" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--runs", "1",
                "--max-objects", "40",
                "--base-size", "200",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        text = out_file.read_text()
        assert "Table 2" in text
        assert "Figure 5" in text
