"""Backend conformance suite for the pluggable result-store layer.

Every test class parametrized over ``backend`` runs identically against
:class:`JsonStore` and :class:`SqliteStore` — the store API's whole
point is that the sweep orchestrator, the reporting layer and the
query/aggregation helpers cannot tell the substrates apart:

* prepare/refusal matrix (different grid, results without resume,
  non-store paths, corrupt manifests) raises the same
  :class:`SweepStoreError` on both;
* a sweep produces value-identical cells and byte-identical payloads on
  both, and a killed + resumed store equals an uninterrupted one
  (tree-byte-identical for JSON, row-identical for SQLite);
* damaged cells (torn JSON, truncated/partial rows) are detected,
  reported, and re-run on both; a truncated SQLite database fails
  *cleanly* (SweepStoreError, not a raw sqlite3 error);
* the query layer (value plane, metric summaries, best-of-group,
  rank-over-grid) returns identical rows whether computed by the
  Python reference implementation or by SQL window functions;
* migration round-trips byte-for-byte in either direction.

Satellite regressions live here too: cell-id collision resistance and
the durable (fsynced) atomic write.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path

import pytest

from repro.engine.store import (
    SWEEP_SCHEMA_VERSION,
    JsonStore,
    SqliteStore,
    atomic_write,
    build_payload,
    cell_id,
    infer_backend,
    migrate_store,
    open_store,
)
from repro.engine.sweep import SweepGrid, Table2Spec, Table3Spec, run_sweep
from repro.exceptions import InvalidParameterError, SweepStoreError
from repro.experiments import ExperimentConfig, run_table2, run_table3

BACKENDS = ("json", "sqlite")

T2_AXES = dict(
    datasets=("iris",), families=("normal",), algorithms=("UKM", "UKmed")
)
T3_AXES = dict(
    datasets=("neuroblastoma",),
    cluster_counts=(2, 3),
    algorithms=("UKmed", "MMV"),
)


def store_path(tmp_path: Path, backend: str, name: str = "store") -> Path:
    """A backend-appropriate path: bare directory vs ``.sqlite`` file."""
    return tmp_path / (name if backend == "json" else f"{name}.sqlite")


def _grid(seed=5, n_runs=2):
    common = dict(n_runs=n_runs, n_samples=8, seed=seed)
    return SweepGrid(
        table2=Table2Spec(
            config=ExperimentConfig(scale=0.12, max_objects=40, **common),
            **T2_AXES,
        ),
        table3=Table3Spec(
            config=ExperimentConfig(scale=0.004, **common), **T3_AXES
        ),
    )


def _direct_reports(seed=5, n_runs=2):
    common = dict(n_runs=n_runs, n_samples=8, seed=seed)
    return (
        run_table2(
            ExperimentConfig(scale=0.12, max_objects=40, **common), **T2_AXES
        ),
        run_table3(ExperimentConfig(scale=0.004, **common), **T3_AXES),
    )


def _sqlite_rows(path: Path):
    """The full logical content of a SQLite store, deterministically."""
    conn = sqlite3.connect(str(path))
    try:
        cells = conn.execute(
            "SELECT cell_id, surface, group_json, cell_json, seed_state, "
            "status, payload FROM cells ORDER BY cell_id"
        ).fetchall()
        values = conn.execute(
            "SELECT cell_id, metric, value FROM cell_values "
            "ORDER BY cell_id, metric"
        ).fetchall()
        meta = conn.execute(
            "SELECT key, value FROM meta ORDER BY key"
        ).fetchall()
    finally:
        conn.close()
    return {"cells": cells, "values": values, "meta": meta}


def _tree_bytes(root: Path):
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted(Path(root).rglob("*"))
        if path.is_file()
    }


def _snapshot(path: Path, backend: str):
    """Backend-appropriate store identity: tree bytes vs logical rows."""
    return _tree_bytes(path) if backend == "json" else _sqlite_rows(path)


def _seed_payloads():
    """A small synthetic grid with deliberate value ties."""
    payloads = []
    for ds in ("alpha", "beta"):
        for idx, alg in enumerate(("A", "B", "C")):
            payloads.append(
                build_payload(
                    surface="synthetic",
                    group=(ds,),
                    cell=(alg,),
                    seed_state="f" * 40,
                    values={
                        "quality": 0.5
                        if alg != "A"
                        else (0.25 if ds == "alpha" else 0.9),
                        "runtime_ms": float(10 * (idx + 1)),
                        "n": 100,
                        "note": "not-a-number",
                    },
                )
            )
    return payloads


# ----------------------------------------------------------------------
# Cell ids (satellite: collision bugfix)
# ----------------------------------------------------------------------
class TestCellId:
    def test_slug_lossiness_does_not_collide(self):
        """`a_b` and `a-b` slug to the same readable prefix but must
        map to different cell ids (pre-fix they shared one file)."""
        a = cell_id("s", ("a_b",), ("x",))
        b = cell_id("s", ("a-b",), ("x",))
        assert a != b

    def test_joiner_inside_part_does_not_collide(self):
        assert cell_id("s", ("a__b",), ("c",)) != cell_id(
            "s", ("a", "b"), ("c",)
        )

    def test_part_boundaries_are_unambiguous(self):
        assert cell_id("s", ("ab",), ("c",)) != cell_id("s", ("a",), ("bc",))
        assert cell_id("s", ("a", "b"), ()) != cell_id("s", ("a",), ("b",))

    def test_deterministic_and_filesystem_safe(self):
        first = cell_id("table2", ("iris", "normal"), ("UKM",))
        assert first == cell_id("table2", ("iris", "normal"), ("UKM",))
        assert "/" not in first and first == first.strip()
        assert first.startswith("table2__iris__normal__UKM--")


# ----------------------------------------------------------------------
# Durable atomic writes (satellite: fsync bugfix)
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        target = tmp_path / "cell.json"
        atomic_write(target, "payload\n")
        assert target.read_text() == "payload\n"
        # One fsync for the tmp file's contents, one for the directory
        # entry after the rename.
        assert len(synced) >= 2

    def test_no_tmp_residue(self, tmp_path):
        target = tmp_path / "cell.json"
        atomic_write(target, "one\n")
        atomic_write(target, "two\n")
        assert target.read_text() == "two\n"
        assert list(tmp_path.glob("*.tmp")) == []


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_suffix_resolves_sqlite(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            assert infer_backend(tmp_path / f"store{suffix}") == "sqlite"

    def test_directory_and_bare_paths_resolve_json(self, tmp_path):
        assert infer_backend(tmp_path / "store") == "json"
        (tmp_path / "existing").mkdir()
        assert infer_backend(tmp_path / "existing") == "json"

    def test_existing_file_resolves_sqlite(self, tmp_path):
        db = tmp_path / "oddly-named"
        db.write_bytes(b"")
        assert infer_backend(db) == "sqlite"

    def test_open_store_types(self, tmp_path):
        assert isinstance(open_store(tmp_path / "d"), JsonStore)
        assert isinstance(open_store(tmp_path / "d.sqlite"), SqliteStore)
        assert isinstance(
            open_store(tmp_path / "d", backend="sqlite"), SqliteStore
        )

    def test_open_store_passthrough_and_mismatch(self, tmp_path):
        store = JsonStore(tmp_path / "d")
        assert open_store(store) is store
        with pytest.raises(InvalidParameterError, match="backend"):
            open_store(store, backend="sqlite")
        with pytest.raises(InvalidParameterError, match="unknown"):
            open_store(tmp_path / "d", backend="parquet")


# ----------------------------------------------------------------------
# Prepare / refusal matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestPrepareMatrix:
    def _description(self, tag="grid"):
        return {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {"t": tag}}

    def test_fresh_prepare_round_trips_manifest(self, tmp_path, backend):
        with open_store(store_path(tmp_path, backend)) as store:
            store.prepare(self._description(), resume=False)
            assert store.read_manifest() == self._description()
            assert not store.has_cells()

    def test_reopen_same_grid_ok(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)

    def test_different_grid_refused(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description("one"), resume=False)
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="different grid"):
                store.prepare(self._description("two"), resume=False)

    def test_existing_results_need_resume(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)
            store.write_payload(_seed_payloads()[0])
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="resume"):
                store.prepare(self._description(), resume=False)
            store.prepare(self._description(), resume=True)

    def test_non_store_path_refused(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        if backend == "json":
            path.mkdir()
            (path / "precious.txt").write_text("do not clobber")
        else:
            path.write_bytes(b"definitely not a sqlite database")
        with open_store(path) as store:
            with pytest.raises(SweepStoreError):
                store.prepare(self._description(), resume=False)
        if backend == "json":
            assert (path / "precious.txt").read_text() == "do not clobber"
        else:
            assert path.read_bytes() == b"definitely not a sqlite database"

    def test_corrupt_manifest_refused(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)
        if backend == "json":
            (path / "manifest.json").write_text("{not json")
        else:
            conn = sqlite3.connect(str(path))
            with conn:
                conn.execute(
                    "UPDATE meta SET value = '{not json' "
                    "WHERE key = 'manifest'"
                )
            conn.close()
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="unreadable"):
                store.prepare(self._description(), resume=True)


# ----------------------------------------------------------------------
# Cell round trips + damage detection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestCells:
    def _prepared(self, tmp_path, backend):
        store = open_store(store_path(tmp_path, backend))
        store.prepare({"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False)
        return store

    def test_write_load_iter_round_trip(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        payloads = _seed_payloads()
        names = [store.write_payload(payload) for payload in payloads]
        assert len(set(names)) == len(names)
        for name, payload in zip(names, payloads):
            loaded, problem = store.load_cell(name)
            assert problem is None
            assert loaded == payload
        iterated = list(store.iter_cells())
        assert [name for name, _p, _w in iterated] == sorted(names)
        assert all(problem is None for _n, _p, problem in iterated)
        assert store.count_cells() == len(names)
        missing, problem = store.load_cell("never-written--0000000000")
        assert missing is None and problem is None
        store.close()

    def test_write_cell_matches_build_payload(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        name = store.write_cell(
            "s", ("g",), ("c",), "a" * 40, {"quality": 0.5}
        )
        loaded, problem = store.load_cell(name)
        assert problem is None
        assert loaded == build_payload(
            "s", ("g",), ("c",), "a" * 40, {"quality": 0.5}
        )
        store.close()

    def test_load_group_all_or_none(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        payloads = _seed_payloads()
        names = [store.write_payload(payload) for payload in payloads]
        group = store.load_group(names)
        assert group is not None
        assert set(group) == set(names)
        assert group[names[0]] == payloads[0]["values"]
        assert store.load_group(names + ["missing--0000000000"]) is None
        assert store.load_group([]) == {}
        store.close()

    def test_incomplete_payload_reported(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        name = store.write_payload(_seed_payloads()[0])
        self._damage(store, name, backend, kind="incomplete")
        loaded, problem = store.load_cell(name)
        assert loaded is None and problem == "incomplete"
        assert store.load_group([name]) is None
        store.close()

    def test_torn_payload_reported(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        name = store.write_payload(_seed_payloads()[0])
        self._damage(store, name, backend, kind="torn")
        loaded, problem = store.load_cell(name)
        assert loaded is None and problem == "unreadable"
        damaged = [w for _n, _p, w in store.iter_cells() if w is not None]
        assert damaged == ["unreadable"]
        store.close()

    @staticmethod
    def _damage(store, name, backend, kind):
        if backend == "json":
            path = store.cell_path(name)
            if kind == "torn":
                path.write_text(path.read_text()[:25])
            else:
                path.write_text(json.dumps({"status": "running"}))
        else:
            conn = store._connect()
            with conn:
                if kind == "torn":
                    conn.execute(
                        "UPDATE cells SET payload = substr(payload, 1, 25) "
                        "WHERE cell_id = ?",
                        (name,),
                    )
                else:
                    conn.execute(
                        "UPDATE cells SET payload = ? WHERE cell_id = ?",
                        (json.dumps({"status": "running"}), name),
                    )


class TestSqliteSubstrate:
    """SQLite-only failure modes must surface as clean SweepStoreErrors."""

    def test_truncated_database_fails_cleanly(self, tmp_path):
        path = store_path(tmp_path, "sqlite")
        with open_store(path) as store:
            store.prepare(
                {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
            )
            for payload in _seed_payloads():
                store.write_payload(payload)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # tear trailing pages
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="unreadable|corrupt"):
                store.query()

    def test_missing_database_fails_cleanly(self, tmp_path):
        with open_store(tmp_path / "absent.sqlite") as store:
            with pytest.raises(SweepStoreError, match="no sqlite"):
                store.load_cell("anything")

    def test_wal_mode_is_active(self, tmp_path):
        path = store_path(tmp_path, "sqlite")
        with open_store(path) as store:
            store.prepare(
                {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
            )
            mode = store._connect().execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
        assert mode == "wal"

    def test_concurrent_connections_share_the_store(self, tmp_path):
        """WAL's point: a second writer connection can land cells while
        the first store handle stays open for reading."""
        path = store_path(tmp_path, "sqlite")
        reader = open_store(path)
        reader.prepare({"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False)
        writer = open_store(path)
        payload = _seed_payloads()[0]
        name = writer.write_payload(payload)
        loaded, problem = reader.load_cell(name)
        assert problem is None and loaded == payload
        reader.close()
        writer.close()


# ----------------------------------------------------------------------
# Query / aggregation conformance (Python reference vs SQL)
# ----------------------------------------------------------------------
class TestQueryConformance:
    @pytest.fixture
    def stores(self, tmp_path):
        opened = []
        for backend in BACKENDS:
            store = open_store(store_path(tmp_path, backend))
            store.prepare(
                {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
            )
            for payload in _seed_payloads():
                store.write_payload(payload)
            opened.append(store)
        yield dict(zip(BACKENDS, opened))
        for store in opened:
            store.close()

    def test_value_plane_identical(self, stores):
        json_rows = stores["json"].query()
        sqlite_rows = stores["sqlite"].query()
        assert json_rows == sqlite_rows
        # Non-numeric values never reach the value plane.
        assert all(row[4] != "note" for row in json_rows)
        # Filters agree too.
        for kwargs in (
            {"surface": "synthetic"},
            {"metric": "quality"},
            {"surface": "nope"},
            {"surface": "synthetic", "metric": "runtime_ms"},
        ):
            assert stores["json"].query(**kwargs) == stores["sqlite"].query(
                **kwargs
            )

    def test_metric_summary_identical(self, stores):
        json_summary = stores["json"].metric_summary()
        sqlite_summary = stores["sqlite"].metric_summary()
        assert len(json_summary) == len(sqlite_summary) == 3
        for j, s in zip(json_summary, sqlite_summary):
            assert j[:5] == s[:5]  # surface, metric, count, min, max exact
            assert j[5] == pytest.approx(s[5], rel=1e-12)  # mean (sum order)

    @pytest.mark.parametrize("mode", ["max", "min"])
    def test_best_cells_identical_with_ties(self, stores, mode):
        json_best = stores["json"].best_cells("quality", mode=mode)
        sqlite_best = stores["sqlite"].best_cells("quality", mode=mode)
        assert json_best == sqlite_best
        assert len(json_best) == 2  # one winner per (surface, group)

    @pytest.mark.parametrize("mode", ["max", "min"])
    def test_rank_over_grid_identical_with_ties(self, stores, mode):
        json_rank = stores["json"].rank_over_grid("quality", mode=mode)
        sqlite_rank = stores["sqlite"].rank_over_grid("quality", mode=mode)
        assert json_rank == sqlite_rank
        ranks = [rank for rank, _n, _s, _v in json_rank]
        # Competition ranking: the four 0.5 ties share one rank and the
        # next rank skips accordingly.
        assert len(ranks) == 6
        assert len(set(ranks)) == 3
        counts = {rank: ranks.count(rank) for rank in set(ranks)}
        assert max(counts.values()) == 4

    def test_mode_validated(self, stores):
        for store in stores.values():
            with pytest.raises(InvalidParameterError, match="mode"):
                store.best_cells("quality", mode="upside-down")


# ----------------------------------------------------------------------
# Sweep integration: both backends, kill+resume, damage, reports
# ----------------------------------------------------------------------
class TestSweepOnBackends:
    def test_sweep_value_identical_across_backends(self, tmp_path):
        """Acceptance: the small grid produces value-identical stores
        under both backends, every payload byte-identical, and the
        rendered reports byte-identical to each other and to the
        direct runners."""
        common = dict(n_runs=2, n_samples=8, seed=5)
        t3_axes = dict(T3_AXES, algorithms=("UCPC", "UKmed"))

        def grid():
            return SweepGrid(
                table2=Table2Spec(
                    config=ExperimentConfig(
                        scale=0.12, max_objects=40, **common
                    ),
                    **T2_AXES,
                ),
                table3=Table3Spec(
                    config=ExperimentConfig(scale=0.004, **common), **t3_axes
                ),
            )

        json_out = run_sweep(grid(), store_path(tmp_path, "json"))
        sqlite_out = run_sweep(grid(), store_path(tmp_path, "sqlite"))
        table2 = run_table2(
            ExperimentConfig(scale=0.12, max_objects=40, **common), **T2_AXES
        )
        table3 = run_table3(
            ExperimentConfig(scale=0.004, **common), **t3_axes
        )
        for outcome in (json_out, sqlite_out):
            for key, cell in table2.cells.items():
                assert outcome.table2.cells[key].theta == cell.theta
                assert outcome.table2.cells[key].quality == cell.quality
            for key, quality in table3.quality.items():
                assert outcome.table3.quality[key] == quality
        # Rendered report: byte-identical across backends.  (table2's
        # render needs the UCPC baseline, which this micro-grid omits.)
        assert json_out.table3.render() == sqlite_out.table3.render()
        assert json_out.table3.render() == table3.render()
        # Stored payloads: byte-identical canonical JSON across backends.
        with open_store(store_path(tmp_path, "json")) as json_store:
            with open_store(store_path(tmp_path, "sqlite")) as sqlite_store:
                json_cells = {
                    name: payload
                    for name, payload, _w in json_store.iter_cells()
                }
                sqlite_cells = {
                    name: payload
                    for name, payload, _w in sqlite_store.iter_cells()
                }
                assert json_cells == sqlite_cells
                assert len(json_cells) == 6
                assert (
                    json_store.read_manifest()
                    == sqlite_store.read_manifest()
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_and_resume_identical(self, tmp_path, backend, monkeypatch):
        """Acceptance: a killed + resumed store is identical to an
        uninterrupted one — tree bytes for JSON, logical rows for
        SQLite (same cells, payloads, seed fingerprints)."""
        import repro.experiments.table2 as table2_module

        clean = store_path(tmp_path, backend, "clean")
        run_sweep(_grid(), clean)

        killed = store_path(tmp_path, backend, "killed")
        original = table2_module.run_table2_cell
        calls = {"count": 0}

        def bomb(*args, **kwargs):
            if calls["count"] >= 1:
                raise KeyboardInterrupt("simulated kill")
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(table2_module, "run_table2_cell", bomb)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(_grid(), killed)
        monkeypatch.setattr(table2_module, "run_table2_cell", original)

        outcome = run_sweep(_grid(), killed, resume=True)
        assert len(outcome.reused) == 1
        assert len(outcome.executed) == 5
        assert _snapshot(clean, backend) == _snapshot(killed, backend)
        table2, table3 = _direct_reports()
        for key, cell in table2.cells.items():
            assert outcome.table2.cells[key].theta == cell.theta

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_damaged_cells_rerun_to_identity(self, tmp_path, backend):
        clean = store_path(tmp_path, backend, "clean")
        run_sweep(_grid(), clean)
        damaged = store_path(tmp_path, backend, "damaged")
        run_sweep(_grid(), damaged)

        torn = cell_id("table2", ("iris", "normal"), ("UKM",))
        partial = cell_id("table3", ("neuroblastoma",), ("k2", "UKmed"))
        if backend == "json":
            torn_path = damaged / "cells" / f"{torn}.json"
            torn_path.write_text(torn_path.read_text()[:25])
            partial_path = damaged / "cells" / f"{partial}.json"
            partial_path.write_text(json.dumps({"status": "running"}))
        else:
            conn = sqlite3.connect(str(damaged))
            with conn:
                conn.execute(
                    "UPDATE cells SET payload = substr(payload, 1, 25) "
                    "WHERE cell_id = ?",
                    (torn,),
                )
                conn.execute(
                    "UPDATE cells SET payload = ? WHERE cell_id = ?",
                    (json.dumps({"status": "running"}), partial),
                )
            conn.close()

        outcome = run_sweep(_grid(), damaged, resume=True)
        assert sorted(outcome.invalid) == sorted([torn, partial])
        assert sorted(outcome.executed) == sorted(outcome.invalid)
        assert _snapshot(clean, backend) == _snapshot(damaged, backend)

    def test_explicit_backend_overrides_path_inference(self, tmp_path):
        path = tmp_path / "suffixless"
        run_sweep(_grid(), path, store_backend="sqlite")
        assert path.is_file()
        rows = _sqlite_rows(path)
        assert len(rows["cells"]) == 6


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
class TestMigration:
    def _populated(self, tmp_path, backend, name="src"):
        path = store_path(tmp_path, backend, name)
        run_sweep(_grid(), path)
        return path

    def test_json_sqlite_json_round_trip_byte_identical(self, tmp_path):
        source = self._populated(tmp_path, "json")
        db = tmp_path / "mid.sqlite"
        back = tmp_path / "back"
        first = migrate_store(source, db)
        assert len(first.cells) == 6
        second = migrate_store(db, back)
        assert sorted(second.cells) == sorted(first.cells)
        assert _tree_bytes(source) == _tree_bytes(back)

    def test_sqlite_to_json_equals_native_json_store(self, tmp_path):
        """A sweep persisted to SQLite, migrated to JSON, is
        byte-identical to the store a JSON sweep writes directly."""
        native = self._populated(tmp_path, "json", "native")
        db = self._populated(tmp_path, "sqlite", "native-db")
        migrated = tmp_path / "migrated"
        migrate_store(db, migrated)
        assert _tree_bytes(native) == _tree_bytes(migrated)

    def test_migrated_store_resumes_with_full_reuse(self, tmp_path):
        source = self._populated(tmp_path, "json")
        db = tmp_path / "resumable.sqlite"
        migrate_store(source, db)
        outcome = run_sweep(_grid(), db, resume=True)
        assert not outcome.executed
        assert len(outcome.reused) == 6
        table2, _table3 = _direct_reports()
        for key, cell in table2.cells.items():
            assert outcome.table2.cells[key].theta == cell.theta

    def test_refuses_source_without_manifest(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SweepStoreError, match="no sweep manifest"):
            migrate_store(empty, tmp_path / "dst.sqlite")

    def test_refuses_damaged_source(self, tmp_path):
        source = self._populated(tmp_path, "json")
        victim = next((source / "cells").glob("*.json"))
        victim.write_text(victim.read_text()[:25])
        with pytest.raises(SweepStoreError, match="damaged"):
            migrate_store(source, tmp_path / "dst.sqlite")

    def test_refuses_populated_destination(self, tmp_path):
        source = self._populated(tmp_path, "json")
        destination = self._populated(tmp_path, "sqlite", "dst")
        with pytest.raises(SweepStoreError, match="resume"):
            migrate_store(source, destination)

    def test_refuses_self_migration(self, tmp_path):
        source = self._populated(tmp_path, "json")
        with pytest.raises(SweepStoreError, match="same store"):
            migrate_store(source, source)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLI:
    def _quick_sweep(self, store, extra=()):
        from repro.cli import main

        return main(
            [
                "sweep",
                "--store",
                str(store),
                "--quick",
                "--surfaces",
                "table2",
                "--runs",
                "1",
                *extra,
            ]
        )

    def test_sweep_sqlite_by_suffix_and_resume(self, tmp_path, capsys):
        store = tmp_path / "store.sqlite"
        assert self._quick_sweep(store) == 0
        assert store.is_file()
        assert "sweep complete" in capsys.readouterr().out
        assert self._quick_sweep(store, ("--resume",)) == 0
        assert "0 cells run, 2 reused" in capsys.readouterr().out
        assert self._quick_sweep(store) == 2  # refused without --resume

    def test_sweep_store_backend_flag(self, tmp_path):
        store = tmp_path / "suffixless"
        assert self._quick_sweep(store, ("--store-backend", "sqlite")) == 0
        assert store.is_file()

    def test_store_migrate_and_summary(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store"
        assert self._quick_sweep(store) == 0
        capsys.readouterr()
        db = tmp_path / "store.sqlite"
        assert main(["store", "migrate", str(store), str(db)]) == 0
        out = capsys.readouterr().out
        assert "migrated 2 cells" in out and "verified" in out
        assert (
            main(["store", "summary", str(db), "--metric", "quality"]) == 0
        )
        out = capsys.readouterr().out
        assert "sqlite store" in out
        assert "best (max) per group" in out
        assert "rank over grid" in out
        # Summary of the JSON original agrees (Python-side aggregation).
        assert main(["store", "summary", str(store)]) == 0
        assert "json store" in capsys.readouterr().out

    def test_store_migrate_refusal_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["store", "migrate", str(empty), str(tmp_path / "x.db")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_store_summary_missing_manifest_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["store", "summary", str(empty)]) == 2
        assert "no sweep manifest" in capsys.readouterr().err
