"""Backend conformance suite for the pluggable result-store layer.

Every test class parametrized over ``backend`` runs identically against
:class:`JsonStore` and :class:`SqliteStore` — the store API's whole
point is that the sweep orchestrator, the reporting layer and the
query/aggregation helpers cannot tell the substrates apart:

* prepare/refusal matrix (different grid, results without resume,
  non-store paths, corrupt manifests) raises the same
  :class:`SweepStoreError` on both;
* a sweep produces value-identical cells and byte-identical payloads on
  both, and a killed + resumed store equals an uninterrupted one
  (tree-byte-identical for JSON, row-identical for SQLite);
* damaged cells (torn JSON, truncated/partial rows) are detected,
  reported, and re-run on both; a truncated SQLite database fails
  *cleanly* (SweepStoreError, not a raw sqlite3 error);
* the query layer (value plane, metric summaries, best-of-group,
  rank-over-grid) returns identical rows whether computed by the
  Python reference implementation or by SQL window functions;
* migration round-trips byte-for-byte in either direction.

The claim/lease layer rides the same conformance matrix: double-claim
races admit exactly one winner, expired leases are stolen, renewal is
owner-only, and a multi-worker sweep — including one whose worker is
SIGKILLed mid-grid — leaves a store identical to an uninterrupted
single-worker run, with zero lease state behind.

Satellite regressions live here too: cell-id collision resistance, the
durable (fsynced) atomic write, fork safety of the cached SQLite
connection, migration cleanup on mid-copy failure, and listdir-order
independence of the JSON cell walk.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sqlite3
import threading
import time
from pathlib import Path

import pytest

from repro.engine.store import (
    SWEEP_SCHEMA_VERSION,
    JsonStore,
    SqliteStore,
    atomic_write,
    build_payload,
    cell_id,
    diff_stores,
    infer_backend,
    migrate_store,
    open_store,
)
from repro.engine.sweep import (
    SweepGrid,
    Table2Spec,
    Table3Spec,
    _worker_main,
    run_sweep,
    run_sweep_worker,
    run_sweep_workers,
)
from repro.exceptions import InvalidParameterError, SweepStoreError
from repro.experiments import ExperimentConfig, run_table2, run_table3

BACKENDS = ("json", "sqlite")

T2_AXES = dict(
    datasets=("iris",), families=("normal",), algorithms=("UKM", "UKmed")
)
T3_AXES = dict(
    datasets=("neuroblastoma",),
    cluster_counts=(2, 3),
    algorithms=("UKmed", "MMV"),
)


def store_path(tmp_path: Path, backend: str, name: str = "store") -> Path:
    """A backend-appropriate path: bare directory vs ``.sqlite`` file."""
    return tmp_path / (name if backend == "json" else f"{name}.sqlite")


def _grid(seed=5, n_runs=2, backend="serial", n_jobs=1):
    common = dict(
        n_runs=n_runs, n_samples=8, seed=seed, backend=backend, n_jobs=n_jobs
    )
    return SweepGrid(
        table2=Table2Spec(
            config=ExperimentConfig(scale=0.12, max_objects=40, **common),
            **T2_AXES,
        ),
        table3=Table3Spec(
            config=ExperimentConfig(scale=0.004, **common), **T3_AXES
        ),
    )


def _direct_reports(seed=5, n_runs=2):
    common = dict(n_runs=n_runs, n_samples=8, seed=seed)
    return (
        run_table2(
            ExperimentConfig(scale=0.12, max_objects=40, **common), **T2_AXES
        ),
        run_table3(ExperimentConfig(scale=0.004, **common), **T3_AXES),
    )


def _sqlite_rows(path: Path):
    """The full logical content of a SQLite store, deterministically."""
    conn = sqlite3.connect(str(path))
    try:
        cells = conn.execute(
            "SELECT cell_id, surface, group_json, cell_json, seed_state, "
            "status, payload FROM cells ORDER BY cell_id"
        ).fetchall()
        values = conn.execute(
            "SELECT cell_id, metric, value FROM cell_values "
            "ORDER BY cell_id, metric"
        ).fetchall()
        meta = conn.execute(
            "SELECT key, value FROM meta ORDER BY key"
        ).fetchall()
    finally:
        conn.close()
    return {"cells": cells, "values": values, "meta": meta}


def _tree_bytes(root: Path):
    return {
        path.relative_to(root).as_posix(): path.read_bytes()
        for path in sorted(Path(root).rglob("*"))
        if path.is_file()
    }


def _snapshot(path: Path, backend: str):
    """Backend-appropriate store identity: tree bytes vs logical rows."""
    return _tree_bytes(path) if backend == "json" else _sqlite_rows(path)


def _seed_payloads():
    """A small synthetic grid with deliberate value ties."""
    payloads = []
    for ds in ("alpha", "beta"):
        for idx, alg in enumerate(("A", "B", "C")):
            payloads.append(
                build_payload(
                    surface="synthetic",
                    group=(ds,),
                    cell=(alg,),
                    seed_state="f" * 40,
                    values={
                        "quality": 0.5
                        if alg != "A"
                        else (0.25 if ds == "alpha" else 0.9),
                        "runtime_ms": float(10 * (idx + 1)),
                        "n": 100,
                        "note": "not-a-number",
                    },
                )
            )
    return payloads


# ----------------------------------------------------------------------
# Cell ids (satellite: collision bugfix)
# ----------------------------------------------------------------------
class TestCellId:
    def test_slug_lossiness_does_not_collide(self):
        """`a_b` and `a-b` slug to the same readable prefix but must
        map to different cell ids (pre-fix they shared one file)."""
        a = cell_id("s", ("a_b",), ("x",))
        b = cell_id("s", ("a-b",), ("x",))
        assert a != b

    def test_joiner_inside_part_does_not_collide(self):
        assert cell_id("s", ("a__b",), ("c",)) != cell_id(
            "s", ("a", "b"), ("c",)
        )

    def test_part_boundaries_are_unambiguous(self):
        assert cell_id("s", ("ab",), ("c",)) != cell_id("s", ("a",), ("bc",))
        assert cell_id("s", ("a", "b"), ()) != cell_id("s", ("a",), ("b",))

    def test_deterministic_and_filesystem_safe(self):
        first = cell_id("table2", ("iris", "normal"), ("UKM",))
        assert first == cell_id("table2", ("iris", "normal"), ("UKM",))
        assert "/" not in first and first == first.strip()
        assert first.startswith("table2__iris__normal__UKM--")


# ----------------------------------------------------------------------
# Durable atomic writes (satellite: fsync bugfix)
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        target = tmp_path / "cell.json"
        atomic_write(target, "payload\n")
        assert target.read_text() == "payload\n"
        # One fsync for the tmp file's contents, one for the directory
        # entry after the rename.
        assert len(synced) >= 2

    def test_no_tmp_residue(self, tmp_path):
        target = tmp_path / "cell.json"
        atomic_write(target, "one\n")
        atomic_write(target, "two\n")
        assert target.read_text() == "two\n"
        assert list(tmp_path.glob("*.tmp")) == []


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_suffix_resolves_sqlite(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            assert infer_backend(tmp_path / f"store{suffix}") == "sqlite"

    def test_directory_and_bare_paths_resolve_json(self, tmp_path):
        assert infer_backend(tmp_path / "store") == "json"
        (tmp_path / "existing").mkdir()
        assert infer_backend(tmp_path / "existing") == "json"

    def test_existing_file_resolves_sqlite(self, tmp_path):
        db = tmp_path / "oddly-named"
        db.write_bytes(b"")
        assert infer_backend(db) == "sqlite"

    def test_open_store_types(self, tmp_path):
        assert isinstance(open_store(tmp_path / "d"), JsonStore)
        assert isinstance(open_store(tmp_path / "d.sqlite"), SqliteStore)
        assert isinstance(
            open_store(tmp_path / "d", backend="sqlite"), SqliteStore
        )

    def test_open_store_passthrough_and_mismatch(self, tmp_path):
        store = JsonStore(tmp_path / "d")
        assert open_store(store) is store
        with pytest.raises(InvalidParameterError, match="backend"):
            open_store(store, backend="sqlite")
        with pytest.raises(InvalidParameterError, match="unknown"):
            open_store(tmp_path / "d", backend="parquet")


# ----------------------------------------------------------------------
# Prepare / refusal matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestPrepareMatrix:
    def _description(self, tag="grid"):
        return {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {"t": tag}}

    def test_fresh_prepare_round_trips_manifest(self, tmp_path, backend):
        with open_store(store_path(tmp_path, backend)) as store:
            store.prepare(self._description(), resume=False)
            assert store.read_manifest() == self._description()
            assert not store.has_cells()

    def test_reopen_same_grid_ok(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)

    def test_different_grid_refused(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description("one"), resume=False)
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="different grid"):
                store.prepare(self._description("two"), resume=False)

    def test_existing_results_need_resume(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)
            store.write_payload(_seed_payloads()[0])
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="resume"):
                store.prepare(self._description(), resume=False)
            store.prepare(self._description(), resume=True)

    def test_non_store_path_refused(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        if backend == "json":
            path.mkdir()
            (path / "precious.txt").write_text("do not clobber")
        else:
            path.write_bytes(b"definitely not a sqlite database")
        with open_store(path) as store:
            with pytest.raises(SweepStoreError):
                store.prepare(self._description(), resume=False)
        if backend == "json":
            assert (path / "precious.txt").read_text() == "do not clobber"
        else:
            assert path.read_bytes() == b"definitely not a sqlite database"

    def test_corrupt_manifest_refused(self, tmp_path, backend):
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(self._description(), resume=False)
        if backend == "json":
            (path / "manifest.json").write_text("{not json")
        else:
            conn = sqlite3.connect(str(path))
            with conn:
                conn.execute(
                    "UPDATE meta SET value = '{not json' "
                    "WHERE key = 'manifest'"
                )
            conn.close()
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="unreadable"):
                store.prepare(self._description(), resume=True)


# ----------------------------------------------------------------------
# Cell round trips + damage detection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestCells:
    def _prepared(self, tmp_path, backend):
        store = open_store(store_path(tmp_path, backend))
        store.prepare({"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False)
        return store

    def test_write_load_iter_round_trip(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        payloads = _seed_payloads()
        names = [store.write_payload(payload) for payload in payloads]
        assert len(set(names)) == len(names)
        for name, payload in zip(names, payloads):
            loaded, problem = store.load_cell(name)
            assert problem is None
            assert loaded == payload
        iterated = list(store.iter_cells())
        assert [name for name, _p, _w in iterated] == sorted(names)
        assert all(problem is None for _n, _p, problem in iterated)
        assert store.count_cells() == len(names)
        missing, problem = store.load_cell("never-written--0000000000")
        assert missing is None and problem is None
        store.close()

    def test_write_cell_matches_build_payload(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        name = store.write_cell(
            "s", ("g",), ("c",), "a" * 40, {"quality": 0.5}
        )
        loaded, problem = store.load_cell(name)
        assert problem is None
        assert loaded == build_payload(
            "s", ("g",), ("c",), "a" * 40, {"quality": 0.5}
        )
        store.close()

    def test_load_group_all_or_none(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        payloads = _seed_payloads()
        names = [store.write_payload(payload) for payload in payloads]
        group = store.load_group(names)
        assert group is not None
        assert set(group) == set(names)
        assert group[names[0]] == payloads[0]["values"]
        assert store.load_group(names + ["missing--0000000000"]) is None
        assert store.load_group([]) == {}
        store.close()

    def test_incomplete_payload_reported(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        name = store.write_payload(_seed_payloads()[0])
        self._damage(store, name, backend, kind="incomplete")
        loaded, problem = store.load_cell(name)
        assert loaded is None and problem == "incomplete"
        assert store.load_group([name]) is None
        store.close()

    def test_torn_payload_reported(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        name = store.write_payload(_seed_payloads()[0])
        self._damage(store, name, backend, kind="torn")
        loaded, problem = store.load_cell(name)
        assert loaded is None and problem == "unreadable"
        damaged = [w for _n, _p, w in store.iter_cells() if w is not None]
        assert damaged == ["unreadable"]
        store.close()

    @staticmethod
    def _damage(store, name, backend, kind):
        if backend == "json":
            path = store.cell_path(name)
            if kind == "torn":
                path.write_text(path.read_text()[:25])
            else:
                path.write_text(json.dumps({"status": "running"}))
        else:
            conn = store._connect()
            with conn:
                if kind == "torn":
                    conn.execute(
                        "UPDATE cells SET payload = substr(payload, 1, 25) "
                        "WHERE cell_id = ?",
                        (name,),
                    )
                else:
                    conn.execute(
                        "UPDATE cells SET payload = ? WHERE cell_id = ?",
                        (json.dumps({"status": "running"}), name),
                    )


class TestSqliteSubstrate:
    """SQLite-only failure modes must surface as clean SweepStoreErrors."""

    def test_truncated_database_fails_cleanly(self, tmp_path):
        path = store_path(tmp_path, "sqlite")
        with open_store(path) as store:
            store.prepare(
                {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
            )
            for payload in _seed_payloads():
                store.write_payload(payload)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # tear trailing pages
        with open_store(path) as store:
            with pytest.raises(SweepStoreError, match="unreadable|corrupt"):
                store.query()

    def test_missing_database_fails_cleanly(self, tmp_path):
        with open_store(tmp_path / "absent.sqlite") as store:
            with pytest.raises(SweepStoreError, match="no sqlite"):
                store.load_cell("anything")

    def test_wal_mode_is_active(self, tmp_path):
        path = store_path(tmp_path, "sqlite")
        with open_store(path) as store:
            store.prepare(
                {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
            )
            mode = store._connect().execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
        assert mode == "wal"

    def test_concurrent_connections_share_the_store(self, tmp_path):
        """WAL's point: a second writer connection can land cells while
        the first store handle stays open for reading."""
        path = store_path(tmp_path, "sqlite")
        reader = open_store(path)
        reader.prepare({"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False)
        writer = open_store(path)
        payload = _seed_payloads()[0]
        name = writer.write_payload(payload)
        loaded, problem = reader.load_cell(name)
        assert problem is None and loaded == payload
        reader.close()
        writer.close()


# ----------------------------------------------------------------------
# Query / aggregation conformance (Python reference vs SQL)
# ----------------------------------------------------------------------
class TestQueryConformance:
    @pytest.fixture
    def stores(self, tmp_path):
        opened = []
        for backend in BACKENDS:
            store = open_store(store_path(tmp_path, backend))
            store.prepare(
                {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
            )
            for payload in _seed_payloads():
                store.write_payload(payload)
            opened.append(store)
        yield dict(zip(BACKENDS, opened))
        for store in opened:
            store.close()

    def test_value_plane_identical(self, stores):
        json_rows = stores["json"].query()
        sqlite_rows = stores["sqlite"].query()
        assert json_rows == sqlite_rows
        # Non-numeric values never reach the value plane.
        assert all(row[4] != "note" for row in json_rows)
        # Filters agree too.
        for kwargs in (
            {"surface": "synthetic"},
            {"metric": "quality"},
            {"surface": "nope"},
            {"surface": "synthetic", "metric": "runtime_ms"},
        ):
            assert stores["json"].query(**kwargs) == stores["sqlite"].query(
                **kwargs
            )

    def test_metric_summary_identical(self, stores):
        json_summary = stores["json"].metric_summary()
        sqlite_summary = stores["sqlite"].metric_summary()
        assert len(json_summary) == len(sqlite_summary) == 3
        for j, s in zip(json_summary, sqlite_summary):
            assert j[:5] == s[:5]  # surface, metric, count, min, max exact
            assert j[5] == pytest.approx(s[5], rel=1e-12)  # mean (sum order)

    @pytest.mark.parametrize("mode", ["max", "min"])
    def test_best_cells_identical_with_ties(self, stores, mode):
        json_best = stores["json"].best_cells("quality", mode=mode)
        sqlite_best = stores["sqlite"].best_cells("quality", mode=mode)
        assert json_best == sqlite_best
        assert len(json_best) == 2  # one winner per (surface, group)

    @pytest.mark.parametrize("mode", ["max", "min"])
    def test_rank_over_grid_identical_with_ties(self, stores, mode):
        json_rank = stores["json"].rank_over_grid("quality", mode=mode)
        sqlite_rank = stores["sqlite"].rank_over_grid("quality", mode=mode)
        assert json_rank == sqlite_rank
        ranks = [rank for rank, _n, _s, _v in json_rank]
        # Competition ranking: the four 0.5 ties share one rank and the
        # next rank skips accordingly.
        assert len(ranks) == 6
        assert len(set(ranks)) == 3
        counts = {rank: ranks.count(rank) for rank in set(ranks)}
        assert max(counts.values()) == 4

    def test_mode_validated(self, stores):
        for store in stores.values():
            with pytest.raises(InvalidParameterError, match="mode"):
                store.best_cells("quality", mode="upside-down")


# ----------------------------------------------------------------------
# Sweep integration: both backends, kill+resume, damage, reports
# ----------------------------------------------------------------------
class TestSweepOnBackends:
    def test_sweep_value_identical_across_backends(self, tmp_path):
        """Acceptance: the small grid produces value-identical stores
        under both backends, every payload byte-identical, and the
        rendered reports byte-identical to each other and to the
        direct runners."""
        common = dict(n_runs=2, n_samples=8, seed=5)
        t3_axes = dict(T3_AXES, algorithms=("UCPC", "UKmed"))

        def grid():
            return SweepGrid(
                table2=Table2Spec(
                    config=ExperimentConfig(
                        scale=0.12, max_objects=40, **common
                    ),
                    **T2_AXES,
                ),
                table3=Table3Spec(
                    config=ExperimentConfig(scale=0.004, **common), **t3_axes
                ),
            )

        json_out = run_sweep(grid(), store_path(tmp_path, "json"))
        sqlite_out = run_sweep(grid(), store_path(tmp_path, "sqlite"))
        table2 = run_table2(
            ExperimentConfig(scale=0.12, max_objects=40, **common), **T2_AXES
        )
        table3 = run_table3(
            ExperimentConfig(scale=0.004, **common), **t3_axes
        )
        for outcome in (json_out, sqlite_out):
            for key, cell in table2.cells.items():
                assert outcome.table2.cells[key].theta == cell.theta
                assert outcome.table2.cells[key].quality == cell.quality
            for key, quality in table3.quality.items():
                assert outcome.table3.quality[key] == quality
        # Rendered report: byte-identical across backends.  (table2's
        # render needs the UCPC baseline, which this micro-grid omits.)
        assert json_out.table3.render() == sqlite_out.table3.render()
        assert json_out.table3.render() == table3.render()
        # Stored payloads: byte-identical canonical JSON across backends.
        with open_store(store_path(tmp_path, "json")) as json_store:
            with open_store(store_path(tmp_path, "sqlite")) as sqlite_store:
                json_cells = {
                    name: payload
                    for name, payload, _w in json_store.iter_cells()
                }
                sqlite_cells = {
                    name: payload
                    for name, payload, _w in sqlite_store.iter_cells()
                }
                assert json_cells == sqlite_cells
                assert len(json_cells) == 6
                assert (
                    json_store.read_manifest()
                    == sqlite_store.read_manifest()
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_and_resume_identical(self, tmp_path, backend, monkeypatch):
        """Acceptance: a killed + resumed store is identical to an
        uninterrupted one — tree bytes for JSON, logical rows for
        SQLite (same cells, payloads, seed fingerprints)."""
        import repro.experiments.table2 as table2_module

        clean = store_path(tmp_path, backend, "clean")
        run_sweep(_grid(), clean)

        killed = store_path(tmp_path, backend, "killed")
        original = table2_module.run_table2_cell
        calls = {"count": 0}

        def bomb(*args, **kwargs):
            if calls["count"] >= 1:
                raise KeyboardInterrupt("simulated kill")
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(table2_module, "run_table2_cell", bomb)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(_grid(), killed)
        monkeypatch.setattr(table2_module, "run_table2_cell", original)

        outcome = run_sweep(_grid(), killed, resume=True)
        assert len(outcome.reused) == 1
        assert len(outcome.executed) == 5
        assert _snapshot(clean, backend) == _snapshot(killed, backend)
        table2, table3 = _direct_reports()
        for key, cell in table2.cells.items():
            assert outcome.table2.cells[key].theta == cell.theta

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_damaged_cells_rerun_to_identity(self, tmp_path, backend):
        clean = store_path(tmp_path, backend, "clean")
        run_sweep(_grid(), clean)
        damaged = store_path(tmp_path, backend, "damaged")
        run_sweep(_grid(), damaged)

        torn = cell_id("table2", ("iris", "normal"), ("UKM",))
        partial = cell_id("table3", ("neuroblastoma",), ("k2", "UKmed"))
        if backend == "json":
            torn_path = damaged / "cells" / f"{torn}.json"
            torn_path.write_text(torn_path.read_text()[:25])
            partial_path = damaged / "cells" / f"{partial}.json"
            partial_path.write_text(json.dumps({"status": "running"}))
        else:
            conn = sqlite3.connect(str(damaged))
            with conn:
                conn.execute(
                    "UPDATE cells SET payload = substr(payload, 1, 25) "
                    "WHERE cell_id = ?",
                    (torn,),
                )
                conn.execute(
                    "UPDATE cells SET payload = ? WHERE cell_id = ?",
                    (json.dumps({"status": "running"}), partial),
                )
            conn.close()

        outcome = run_sweep(_grid(), damaged, resume=True)
        assert sorted(outcome.invalid) == sorted([torn, partial])
        assert sorted(outcome.executed) == sorted(outcome.invalid)
        assert _snapshot(clean, backend) == _snapshot(damaged, backend)

    def test_explicit_backend_overrides_path_inference(self, tmp_path):
        path = tmp_path / "suffixless"
        run_sweep(_grid(), path, store_backend="sqlite")
        assert path.is_file()
        rows = _sqlite_rows(path)
        assert len(rows["cells"]) == 6


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
class TestMigration:
    def _populated(self, tmp_path, backend, name="src"):
        path = store_path(tmp_path, backend, name)
        run_sweep(_grid(), path)
        return path

    def test_json_sqlite_json_round_trip_byte_identical(self, tmp_path):
        source = self._populated(tmp_path, "json")
        db = tmp_path / "mid.sqlite"
        back = tmp_path / "back"
        first = migrate_store(source, db)
        assert len(first.cells) == 6
        second = migrate_store(db, back)
        assert sorted(second.cells) == sorted(first.cells)
        assert _tree_bytes(source) == _tree_bytes(back)

    def test_sqlite_to_json_equals_native_json_store(self, tmp_path):
        """A sweep persisted to SQLite, migrated to JSON, is
        byte-identical to the store a JSON sweep writes directly."""
        native = self._populated(tmp_path, "json", "native")
        db = self._populated(tmp_path, "sqlite", "native-db")
        migrated = tmp_path / "migrated"
        migrate_store(db, migrated)
        assert _tree_bytes(native) == _tree_bytes(migrated)

    def test_migrated_store_resumes_with_full_reuse(self, tmp_path):
        source = self._populated(tmp_path, "json")
        db = tmp_path / "resumable.sqlite"
        migrate_store(source, db)
        outcome = run_sweep(_grid(), db, resume=True)
        assert not outcome.executed
        assert len(outcome.reused) == 6
        table2, _table3 = _direct_reports()
        for key, cell in table2.cells.items():
            assert outcome.table2.cells[key].theta == cell.theta

    def test_refuses_source_without_manifest(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SweepStoreError, match="no sweep manifest"):
            migrate_store(empty, tmp_path / "dst.sqlite")

    def test_refuses_damaged_source(self, tmp_path):
        source = self._populated(tmp_path, "json")
        victim = next((source / "cells").glob("*.json"))
        victim.write_text(victim.read_text()[:25])
        with pytest.raises(SweepStoreError, match="damaged"):
            migrate_store(source, tmp_path / "dst.sqlite")

    def test_refuses_populated_destination(self, tmp_path):
        source = self._populated(tmp_path, "json")
        destination = self._populated(tmp_path, "sqlite", "dst")
        with pytest.raises(SweepStoreError, match="resume"):
            migrate_store(source, destination)

    def test_refuses_self_migration(self, tmp_path):
        source = self._populated(tmp_path, "json")
        with pytest.raises(SweepStoreError, match="same store"):
            migrate_store(source, source)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLI:
    def _quick_sweep(self, store, extra=()):
        from repro.cli import main

        return main(
            [
                "sweep",
                "--store",
                str(store),
                "--quick",
                "--surfaces",
                "table2",
                "--runs",
                "1",
                *extra,
            ]
        )

    def test_sweep_sqlite_by_suffix_and_resume(self, tmp_path, capsys):
        store = tmp_path / "store.sqlite"
        assert self._quick_sweep(store) == 0
        assert store.is_file()
        assert "sweep complete" in capsys.readouterr().out
        assert self._quick_sweep(store, ("--resume",)) == 0
        assert "0 cells run, 2 reused" in capsys.readouterr().out
        assert self._quick_sweep(store) == 2  # refused without --resume

    def test_sweep_store_backend_flag(self, tmp_path):
        store = tmp_path / "suffixless"
        assert self._quick_sweep(store, ("--store-backend", "sqlite")) == 0
        assert store.is_file()

    def test_store_migrate_and_summary(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store"
        assert self._quick_sweep(store) == 0
        capsys.readouterr()
        db = tmp_path / "store.sqlite"
        assert main(["store", "migrate", str(store), str(db)]) == 0
        out = capsys.readouterr().out
        assert "migrated 2 cells" in out and "verified" in out
        assert (
            main(["store", "summary", str(db), "--metric", "quality"]) == 0
        )
        out = capsys.readouterr().out
        assert "sqlite store" in out
        assert "best (max) per group" in out
        assert "rank over grid" in out
        # Summary of the JSON original agrees (Python-side aggregation).
        assert main(["store", "summary", str(store)]) == 0
        assert "json store" in capsys.readouterr().out

    def test_store_migrate_refusal_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["store", "migrate", str(empty), str(tmp_path / "x.db")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_store_summary_missing_manifest_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["store", "summary", str(empty)]) == 2
        assert "no sweep manifest" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Claim/lease layer (tentpole): conformance on both backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestLeases:
    def _prepared(self, tmp_path, backend, name="store"):
        store = open_store(store_path(tmp_path, backend, name))
        store.prepare(
            {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
        )
        return store

    def test_claim_is_exclusive_while_live(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        assert store.claim_cell("cell--0000000001", "alice", 60.0)
        assert not store.claim_cell("cell--0000000001", "bob", 60.0)
        leases = store.active_leases()
        assert set(leases) == {"cell--0000000001"}
        assert leases["cell--0000000001"][0] == "alice"
        # An unrelated cell is claimable regardless.
        assert store.claim_cell("cell--0000000002", "bob", 60.0)
        store.close()

    def test_claim_is_reentrant_and_extends(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        assert store.claim_cell("cell--0000000001", "alice", 10.0)
        first = store.active_leases()["cell--0000000001"][1]
        assert store.claim_cell("cell--0000000001", "alice", 120.0)
        second = store.active_leases()["cell--0000000001"][1]
        assert second > first
        store.close()

    def test_expired_lease_is_stolen(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        assert store.claim_cell("cell--0000000001", "dead-worker", 0.05)
        time.sleep(0.1)
        assert store.claim_cell("cell--0000000001", "bob", 60.0)
        assert store.active_leases()["cell--0000000001"][0] == "bob"
        store.close()

    def test_renew_is_owner_only(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        # No lease at all: renewal reports the lease as lost.
        assert not store.renew_lease("cell--0000000001", "alice", 60.0)
        assert store.claim_cell("cell--0000000001", "alice", 10.0)
        before = store.active_leases()["cell--0000000001"][1]
        assert not store.renew_lease("cell--0000000001", "bob", 60.0)
        assert store.active_leases()["cell--0000000001"][0] == "alice"
        assert store.renew_lease("cell--0000000001", "alice", 120.0)
        assert store.active_leases()["cell--0000000001"][1] > before
        store.close()

    def test_release_is_owner_checked_then_forced(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        assert store.claim_cell("cell--0000000001", "alice", 60.0)
        store.release_cell("cell--0000000001", "bob")  # wrong owner: no-op
        assert "cell--0000000001" in store.active_leases()
        store.release_cell("cell--0000000001", "alice")
        assert store.active_leases() == {}
        assert store.claim_cell("cell--0000000001", "bob", 60.0)
        store.release_cell("cell--0000000001")  # owner=None force-releases
        assert store.active_leases() == {}
        store.release_cell("never-claimed--00")  # idempotent on absence
        store.close()

    def test_reap_drops_complete_and_expired_leases(self, tmp_path, backend):
        store = self._prepared(tmp_path, backend)
        done = store.write_payload(_seed_payloads()[0])
        # Owner died between writing the payload and releasing:
        assert store.claim_cell(done, "crashed-after-write", 600.0)
        # Owner died mid-cell (lease expired, no payload):
        assert store.claim_cell("pending--0000000001", "crashed-mid", 0.05)
        # A live worker still computing:
        assert store.claim_cell("pending--0000000002", "alive", 600.0)
        time.sleep(0.1)
        reaped = store.reap_leases()
        assert sorted(reaped) == sorted([done, "pending--0000000001"])
        assert set(store.active_leases()) == {"pending--0000000002"}
        store.close()

    def test_double_claim_race_admits_one_winner(self, tmp_path, backend):
        """N handles racing an initial claim: exactly one wins (O_EXCL
        on JSON, the single-writer upsert transaction on SQLite)."""
        path = store_path(tmp_path, backend)
        with open_store(path) as store:
            store.prepare(
                {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
            )
        for round_idx in range(5):
            cell = f"contested--{round_idx:010d}"
            barrier = threading.Barrier(6)
            wins: list = []

            def contend(idx, cell=cell, barrier=barrier, wins=wins):
                handle = open_store(path)
                try:
                    barrier.wait()
                    if handle.claim_cell(cell, f"worker-{idx}", 60.0):
                        wins.append(idx)
                finally:
                    handle.close()

            threads = [
                threading.Thread(target=contend, args=(idx,))
                for idx in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(wins) == 1, f"round {round_idx}: winners {wins}"

    def test_lease_history_invisible_to_store_identity(
        self, tmp_path, backend
    ):
        """Claim/renew/release/reap churn must never show up in the
        identity comparison (tree bytes / logical rows)."""
        plain = store_path(tmp_path, backend, "plain")
        run_sweep(_grid(), plain)
        churned = store_path(tmp_path, backend, "churned")
        run_sweep(_grid(), churned)
        with open_store(churned) as store:
            names = [name for name, _p, _w in store.iter_cells()]
            assert store.claim_cell(names[0], "ghost", 0.05)
            assert store.claim_cell(names[1], "worker", 60.0)
            assert store.renew_lease(names[1], "worker", 60.0)
            store.release_cell(names[1], "worker")
            time.sleep(0.1)
            store.reap_leases()
            assert store.active_leases() == {}
        assert _snapshot(plain, backend) == _snapshot(churned, backend)
        assert diff_stores(plain, churned) == []

    def test_discard_stray_tmp(self, tmp_path, backend):
        """JSON removes killed writers' tmp residue; SQLite has none."""
        store = self._prepared(tmp_path, backend)
        name = store.write_payload(_seed_payloads()[0])
        if backend == "json":
            (store.cells_dir / "victim.json.tmp").write_text("{half")
            store.leases_dir.mkdir(parents=True, exist_ok=True)
            (store.leases_dir / "x.lease.deadbeef.tmp").write_text("{")
            removed = store.discard_stray_tmp()
            assert sorted(removed) == [
                "cells/victim.json.tmp",
                "leases/x.lease.deadbeef.tmp",
            ]
        assert store.discard_stray_tmp() == []
        loaded, problem = store.load_cell(name)
        assert problem is None and loaded is not None
        store.close()


# ----------------------------------------------------------------------
# JSON cell walk is listdir-order independent (satellite bugfix)
# ----------------------------------------------------------------------
class TestJsonIterOrder:
    def _populated(self, tmp_path):
        store = JsonStore(tmp_path / "store")
        store.prepare(
            {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
        )
        names = [store.write_payload(p) for p in _seed_payloads()]
        return store, names

    @pytest.mark.parametrize("scramble", ["reversed", "shuffled"])
    def test_iter_cells_ignores_listdir_order(
        self, tmp_path, monkeypatch, scramble
    ):
        import random

        store, names = self._populated(tmp_path)
        real_listdir = os.listdir

        def scrambled(path):
            entries = list(real_listdir(path))
            if scramble == "reversed":
                entries.reverse()
            else:
                random.Random(0).shuffle(entries)
            return entries

        monkeypatch.setattr(os, "listdir", scrambled)
        iterated = [name for name, _p, _w in store.iter_cells()]
        assert iterated == sorted(names)
        store.close()

    def test_prefix_stems_sort_by_cell_id_not_filename(self, tmp_path):
        """`a.json` vs `a-b.json`: filename order puts `a-b` first
        (`-` < `.`), cell-id order puts `a` first — the walk must use
        cell-id order, matching the SQLite backend row for row."""
        from repro.engine.store import canonical_dumps

        store = JsonStore(tmp_path / "store")
        store.prepare(
            {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
        )
        for stem in ("a", "a-b"):
            payload = build_payload(
                "s", (stem,), ("x",), "b" * 40, {"quality": 1.0}
            )
            (store.cells_dir / f"{stem}.json").write_text(
                canonical_dumps(payload)
            )
        iterated = [name for name, _p, problem in store.iter_cells()]
        assert iterated == ["a", "a-b"]
        assert all(
            problem is None for _n, _p, problem in store.iter_cells()
        )
        store.close()


# ----------------------------------------------------------------------
# Fork safety of the cached SQLite connection (satellite bugfix)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform has no fork start method",
)
class TestSqliteForkSafety:
    def test_child_reopens_inherited_connection(self, tmp_path):
        """A store handle that crosses a fork() must lazily discard the
        inherited sqlite3.Connection and reopen in the child; both
        sides keep writing with no `database is locked` and no
        corruption."""
        path = store_path(tmp_path, "sqlite")
        store = open_store(path)
        store.prepare(
            {"schema": SWEEP_SCHEMA_VERSION, "surfaces": {}}, False
        )
        payloads = _seed_payloads()
        store.write_payload(payloads[0])  # connection now open and cached
        assert store._conn is not None
        context = multiprocessing.get_context("fork")
        queue = context.SimpleQueue()

        def child():
            try:
                name = store.write_payload(payloads[1])
                loaded, problem = store.load_cell(name)
                assert problem is None and loaded == payloads[1]
                assert store._conn_pid == os.getpid()
                assert store.claim_cell(name, "child", 30.0)
                store.release_cell(name, "child")
                queue.put("ok")
            except BaseException as error:
                queue.put(repr(error))

        process = context.Process(target=child)
        process.start()
        process.join(timeout=120)
        assert process.exitcode == 0
        assert not queue.empty()
        assert queue.get() == "ok"
        # The parent's connection survives the child's exit (the
        # child's close of its duplicate descriptors must not release
        # the parent's locks or tear its view).
        name = store.write_payload(payloads[2])
        loaded, problem = store.load_cell(name)
        assert problem is None and loaded == payloads[2]
        assert store.count_cells() == 3
        assert store.active_leases() == {}
        store.close()

    def test_processes_backend_sweep_forks_mid_run(self, tmp_path):
        """Regression: the `processes` execution backend forks pool
        workers while the sweep's SQLite connection is open; the sweep
        must land the same cells as a serial run (manifest differs by
        the backend field, so compare cells/values only)."""
        serial = store_path(tmp_path, "sqlite", "serial")
        run_sweep(_grid(), serial)
        forked = store_path(tmp_path, "sqlite", "forked")
        run_sweep(_grid(backend="processes", n_jobs=2), forked)
        serial_rows = _sqlite_rows(serial)
        forked_rows = _sqlite_rows(forked)
        assert serial_rows["cells"] == forked_rows["cells"]
        assert serial_rows["values"] == forked_rows["values"]


# ----------------------------------------------------------------------
# Migration failure cleanup (satellite bugfix)
# ----------------------------------------------------------------------
class TestMigrationCleanup:
    def _populated(self, tmp_path, backend, name="src"):
        path = store_path(tmp_path, backend, name)
        run_sweep(_grid(), path)
        return path

    def test_mid_copy_failure_removes_partial_destination(
        self, tmp_path, monkeypatch
    ):
        """A crash after N copied cells must not leave a partial store
        that blocks (`prepare` refusal) every retry."""
        source = self._populated(tmp_path, "json")
        destination = tmp_path / "dst.sqlite"
        original = SqliteStore.write_payload
        calls = {"count": 0}

        def bomb(self, payload):
            if calls["count"] >= 2:
                raise RuntimeError("disk full (simulated)")
            calls["count"] += 1
            return original(self, payload)

        monkeypatch.setattr(SqliteStore, "write_payload", bomb)
        with pytest.raises(RuntimeError, match="disk full"):
            migrate_store(source, destination)
        assert not destination.exists()
        assert not Path(str(destination) + "-wal").exists()
        # The retry starts from a clean slate and succeeds.
        monkeypatch.setattr(SqliteStore, "write_payload", original)
        report = migrate_store(source, destination)
        assert len(report.cells) == 6
        assert diff_stores(source, destination) == []

    def test_verification_failure_removes_partial_destination(
        self, tmp_path, monkeypatch
    ):
        import repro.engine.store.migrate as migrate_module

        source = self._populated(tmp_path, "sqlite")
        destination = tmp_path / "dst"

        def failing_verify(src, dst, payloads):
            raise SweepStoreError("verification failed (simulated)")

        monkeypatch.setattr(migrate_module, "_verify", failing_verify)
        with pytest.raises(SweepStoreError, match="verification failed"):
            migrate_store(source, destination)
        assert not destination.exists()

    def test_refused_existing_destination_is_not_deleted(self, tmp_path):
        """The cleanup only covers destinations *we* wrote: a populated
        store refused by prepare() must survive the refusal intact."""
        source = self._populated(tmp_path, "json")
        destination = self._populated(tmp_path, "sqlite", "dst")
        before = _sqlite_rows(destination)
        with pytest.raises(SweepStoreError, match="resume"):
            migrate_store(source, destination)
        assert destination.exists()
        assert _sqlite_rows(destination) == before


# ----------------------------------------------------------------------
# Multi-worker sweep execution (tentpole)
# ----------------------------------------------------------------------
class TestMultiWorkerSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_worker_mode_equals_run_sweep(self, tmp_path, backend):
        """Worker mode on a fresh store: one pass, same store bytes and
        same reports as a plain run_sweep, zero lease state behind."""
        reference = store_path(tmp_path, backend, "reference")
        run_sweep(_grid(), reference)
        worked = store_path(tmp_path, backend, "worked")
        outcome = run_sweep_worker(
            _grid(), worked, worker_id="test:solo", max_passes=1
        )
        assert outcome.passes == 1
        assert len(outcome.executed) == 6
        assert not outcome.deferred
        assert _snapshot(reference, backend) == _snapshot(worked, backend)
        with open_store(worked, backend=backend) as store:
            assert store.active_leases() == {}
        table2, table3 = _direct_reports()
        for key, cell in table2.cells.items():
            assert outcome.table2.cells[key].theta == cell.theta
        for key, quality in table3.quality.items():
            assert outcome.table3.quality[key] == quality

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_foreign_lease_defers_then_expires_and_reclaims(
        self, tmp_path, backend
    ):
        """A dead worker's live-looking lease defers its cell; once the
        lease expires a surviving worker steals it, re-runs the cell,
        and the store equals an uninterrupted single-worker run."""
        reference = store_path(tmp_path, backend, "reference")
        run_sweep(_grid(), reference)
        shared = store_path(tmp_path, backend, "shared")
        run_sweep(_grid(), shared)
        victim = cell_id("table2", ("iris", "normal"), ("UKM",))
        # Simulate a worker that died mid-cell: payload never written,
        # lease still ticking.
        if backend == "json":
            (shared / "cells" / f"{victim}.json").unlink()
        else:
            conn = sqlite3.connect(str(shared))
            with conn:
                conn.execute(
                    "DELETE FROM cells WHERE cell_id = ?", (victim,)
                )
                conn.execute(
                    "DELETE FROM cell_values WHERE cell_id = ?", (victim,)
                )
            conn.close()
        with open_store(shared, backend=backend) as store:
            assert store.claim_cell(victim, "dead-worker", 2.5)
        lines: list = []
        outcome = run_sweep_worker(
            _grid(),
            shared,
            worker_id="test:survivor",
            lease_ttl=5.0,
            poll_interval=0.1,
            progress=lines.append,
            max_passes=200,
        )
        assert outcome.executed == [victim]
        assert any("deferred" in line for line in lines)
        assert outcome.passes >= 2
        assert _snapshot(reference, backend) == _snapshot(shared, backend)
        with open_store(shared, backend=backend) as store:
            assert store.active_leases() == {}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_workers_one_sigkilled_identical(self, tmp_path, backend):
        """Acceptance: a 2-process cluster on one store — with one
        worker SIGKILLed mid-grid and its leases reclaimed — produces a
        store identical to the uninterrupted single-worker reference."""
        reference = store_path(tmp_path, backend, "reference")
        run_sweep(_grid(), reference)
        shared = store_path(tmp_path, backend, "shared")
        grid = _grid()
        context = multiprocessing.get_context("spawn")
        workers = [
            context.Process(
                target=_worker_main,
                args=(grid, str(shared), backend, f"test:{tag}", 2.0, 0.1),
            )
            for tag in ("victim", "survivor")
        ]
        for process in workers:
            process.start()
        victim, survivor = workers
        time.sleep(1.5)
        victim.kill()  # SIGKILL: no cleanup, leases left ticking
        victim.join()
        survivor.join(timeout=300)
        assert not survivor.is_alive()
        assert survivor.exitcode == 0
        # The collection pass (what run_sweep_workers runs after the
        # join) finishes anything the victim left behind and reaps.
        outcome = run_sweep_worker(
            grid,
            shared,
            worker_id="test:collector",
            lease_ttl=2.0,
            poll_interval=0.1,
            store_backend=backend,
            max_passes=200,
        )
        with open_store(shared, backend=backend) as store:
            store.discard_stray_tmp()
            assert store.active_leases() == {}
        assert _snapshot(reference, backend) == _snapshot(shared, backend)
        table2, table3 = _direct_reports()
        for key, cell in table2.cells.items():
            assert outcome.table2.cells[key].theta == cell.theta
        for key, quality in table3.quality.items():
            assert outcome.table3.quality[key] == quality

    def test_run_sweep_workers_end_to_end(self, tmp_path):
        """The orchestrated path: spawn N children, join, collect."""
        reference = store_path(tmp_path, "json", "reference")
        run_sweep(_grid(), reference)
        shared = store_path(tmp_path, "json", "shared")
        outcome = run_sweep_workers(
            _grid(), shared, workers=2, lease_ttl=5.0, poll_interval=0.1
        )
        assert _tree_bytes(reference) == _tree_bytes(shared)
        table2, _table3 = _direct_reports()
        for key, cell in table2.cells.items():
            assert outcome.table2.cells[key].theta == cell.theta
        with pytest.raises(InvalidParameterError, match="workers"):
            run_sweep_workers(_grid(), shared, workers=0)


# ----------------------------------------------------------------------
# CLI: --workers / --join / store diff
# ----------------------------------------------------------------------
class TestCLIMultiWorker:
    def _sweep_args(self, extra):
        return [
            "sweep",
            "--quick",
            "--surfaces",
            "table2",
            "--runs",
            "1",
            *extra,
        ]

    def test_sweep_requires_store_or_join(self, capsys):
        from repro.cli import main

        assert main(self._sweep_args([])) == 2
        assert "--store" in capsys.readouterr().err

    def test_join_mode_runs_then_reuses(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "shared"
        assert main(self._sweep_args(["--join", str(store)])) == 0
        assert "sweep complete" in capsys.readouterr().out
        # A second worker joining the finished store reuses everything.
        assert main(self._sweep_args(["--join", str(store)])) == 0
        assert "0 cells run, 2 reused" in capsys.readouterr().out

    def test_workers_flag_matches_single_worker_store(self, tmp_path):
        from repro.cli import main

        reference = tmp_path / "reference"
        assert main(self._sweep_args(["--store", str(reference)])) == 0
        shared = tmp_path / "shared"
        assert (
            main(
                self._sweep_args(
                    [
                        "--store",
                        str(shared),
                        "--workers",
                        "2",
                        "--lease-ttl",
                        "5",
                    ]
                )
            )
            == 0
        )
        assert _tree_bytes(reference) == _tree_bytes(shared)

    def test_store_diff_cli(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "left"
        assert main(self._sweep_args(["--store", str(left)])) == 0
        twin = tmp_path / "twin.sqlite"
        assert main(["store", "migrate", str(left), str(twin)]) == 0
        capsys.readouterr()
        assert main(["store", "diff", str(left), str(twin)]) == 0
        assert "stores identical" in capsys.readouterr().out
        other = tmp_path / "other"
        assert (
            main(self._sweep_args(["--store", str(other), "--seed", "9"]))
            == 0
        )
        capsys.readouterr()
        assert main(["store", "diff", str(left), str(other)]) == 1
        out = capsys.readouterr().out
        assert "stores differ" in out
        assert main(["store", "diff", str(left), str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err
