"""Tests for the million-object scale path.

Three families of claims are pinned here:

* :class:`BoundedUKMeans` (Elkan/Hamerly bounds) is **lossless**: it
  must reproduce :class:`BasicUKMeans` assignments exactly, seed for
  seed, including through empty-cluster repairs, while provably
  skipping a large fraction of ED evaluations (counter-asserted).
* :class:`MiniBatchUKMeans` is **lossy** but must recover well-separated
  structure and land near the full UK-means objective.
* The capped density paths: radius-prefiltered FDBSCAN is exact (same
  labels as the dense path), FOPTICS with ``knn_cap = n - 1`` is
  bitwise the dense ordering, and smaller caps degrade gracefully.

Also covers the once-per-fit convergence-warning semantics and the
engine's parent-side non-convergence aggregate.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.clustering import (
    FDBSCAN,
    FOPTICS,
    BasicUKMeans,
    BoundedUKMeans,
    MiniBatchUKMeans,
    UKMeans,
)
from repro.clustering._density import (
    eps_candidate_pairs,
    expected_distance_matrix,
    gathered_pair_expected_distances,
    gathered_pair_probabilities,
    knn_candidate_indices,
    sample_radii,
    scattered_row_sums,
    symmetric_adjacency,
)
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects import UncertainDataset, UncertainObject

BOUNDS = ["elkan", "hamerly"]


@pytest.fixture(scope="module")
def overlap_data():
    """Moderately overlapping blobs: enough iterations for bounds to pay."""
    return make_blobs_uncertain(
        n_objects=80, n_clusters=4, separation=2.0, seed=23
    )


@pytest.fixture(scope="module")
def separated_data():
    return make_blobs_uncertain(
        n_objects=150, n_clusters=3, separation=7.0, seed=11
    )


class TestBoundedLossless:
    """Bounds-accelerated UK-means must match BasicUKMeans *exactly*.

    The pruning tests are strict-inequality-only on exact plane
    distances and every compared ED uses the literal Basic kernel, so
    the argmin — including tie resolution — is bitwise reproducible.
    """

    @pytest.mark.parametrize("bounds", BOUNDS)
    def test_exact_assignment_match_across_seeds(self, overlap_data, bounds):
        for seed in range(20):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                basic = BasicUKMeans(n_clusters=4, n_samples=24).fit(
                    overlap_data, seed=seed
                )
                fast = BoundedUKMeans(
                    n_clusters=4, n_samples=24, bounds=bounds
                ).fit(overlap_data, seed=seed)
            np.testing.assert_array_equal(
                basic.labels,
                fast.labels,
                err_msg=f"bounds={bounds} diverged from bUKM at seed {seed}",
            )
            assert fast.objective == pytest.approx(basic.objective)

    @pytest.mark.parametrize("bounds", BOUNDS)
    def test_skip_counters_account_for_all_rows(self, overlap_data, bounds):
        result = BoundedUKMeans(
            n_clusters=4, n_samples=24, bounds=bounds
        ).fit(overlap_data, seed=0)
        extras = result.extras
        n, k = len(overlap_data), 4
        total = result.n_iterations * n * k
        assert extras["ed_evaluations"] + extras["ed_skipped"] == total
        assert extras["skip_rate"] == pytest.approx(
            extras["ed_skipped"] / total
        )
        # The whole point of the variant: most ED evaluations skipped.
        assert extras["skip_rate"] >= 0.5, extras
        assert 0 < extras["rows_skipped"]
        assert extras["bounds"] == bounds

    @pytest.mark.parametrize("bounds", BOUNDS)
    def test_repair_regression_bounds_stay_valid(self, bounds):
        """Empty-cluster reseeds must invalidate stale bounds.

        Tight groups of near-duplicate objects with k close to n force
        repeated empty-cluster repairs; a repair moves an object whose
        upper bound may have justified skipping its row the same
        iteration.  If the repaired object's bounds were left stale the
        next assignment would diverge from BasicUKMeans.
        """
        rng = np.random.default_rng(5)
        base = rng.normal(0.0, 0.05, size=(12, 2))
        points = np.vstack([base, base[:3]])
        objects = [
            UncertainObject.uniform_box(p, [0.01, 0.01], label=0)
            for p in points
        ]
        data = UncertainDataset(objects)
        k = len(data) - 1
        for seed in range(6):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                basic = BasicUKMeans(
                    n_clusters=k, n_samples=8, max_iter=30
                ).fit(data, seed=seed)
                fast = BoundedUKMeans(
                    n_clusters=k, n_samples=8, max_iter=30, bounds=bounds
                ).fit(data, seed=seed)
            np.testing.assert_array_equal(
                basic.labels,
                fast.labels,
                err_msg=f"bounds={bounds} diverged through repairs "
                f"at seed {seed}",
            )

    def test_full_cap_names(self):
        assert BoundedUKMeans(3).name == "bUKM-EH"
        assert BoundedUKMeans(3, bounds="hamerly").name == "bUKM-H"

    def test_does_not_want_pairwise_ed(self):
        # The engine must never hand the bounded variant the O(n^2)
        # shared ED plane — that would defeat the whole scale path.
        assert BoundedUKMeans(3).wants_pairwise_ed is False

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            BoundedUKMeans(3, bounds="lloyd")
        # n_clusters is validated at fit time, matching BasicUKMeans.
        data = make_blobs_uncertain(n_objects=10, n_clusters=2, seed=0)
        with pytest.raises(InvalidParameterError):
            BoundedUKMeans(0).fit(data)
        with pytest.raises(InvalidParameterError):
            BoundedUKMeans(3, n_samples=0)
        with pytest.raises(InvalidParameterError):
            BoundedUKMeans(3, max_iter=0)


class TestMiniBatchUKMeans:
    def test_recovers_separated_blobs(self, separated_data):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = MiniBatchUKMeans(n_clusters=3, batch_size=64).fit(
                separated_data, seed=0
            )
        assert f_measure(result.labels, separated_data.labels) > 0.9
        assert len(np.unique(result.labels)) == 3

    def test_objective_near_full_ukmeans(self, separated_data):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            mini = MiniBatchUKMeans(n_clusters=3, batch_size=64).fit(
                separated_data, seed=0
            )
            full = UKMeans(n_clusters=3).fit(separated_data, seed=0)
        # Lossy by design, but on well-separated blobs both land in the
        # same basin; document the accuracy envelope.
        assert mini.objective <= 1.25 * full.objective

    def test_extras(self, separated_data):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = MiniBatchUKMeans(
                n_clusters=3, batch_size=32, over_cluster=4
            ).fit(separated_data, seed=1)
        extras = result.extras
        assert extras["batch_size"] == 32
        assert extras["k_over"] == 12
        assert extras["objects_seen"] > 0
        assert extras["n_merges"] >= 0

    def test_parameter_validation(self):
        data = make_blobs_uncertain(n_objects=10, n_clusters=2, seed=0)
        with pytest.raises(InvalidParameterError):
            MiniBatchUKMeans(0).fit(data)
        with pytest.raises(InvalidParameterError):
            MiniBatchUKMeans(3, batch_size=0)
        with pytest.raises(InvalidParameterError):
            MiniBatchUKMeans(3, over_cluster=0)
        with pytest.raises(InvalidParameterError):
            MiniBatchUKMeans(3, tol=-1.0)
        with pytest.raises(InvalidParameterError):
            MiniBatchUKMeans(3, max_iter=0)


class TestPrefilteredFDBSCAN:
    """The radius prefilter must be *exact*: identical labels to dense.

    Any pair pruned by the triangle-inequality test has matching
    probability exactly zero, and the surviving pairs run through
    kernels that reduce in the same order as the dense path.
    """

    def test_matches_dense_across_seeds(self):
        for seed in range(8):
            data = make_blobs_uncertain(
                n_objects=70, n_clusters=3, separation=4.0, seed=seed
            )
            dense = FDBSCAN(n_samples=24).fit(data, seed=seed)
            fast = FDBSCAN(n_samples=24, prefilter=True).fit(data, seed=seed)
            np.testing.assert_array_equal(
                dense.labels,
                fast.labels,
                err_msg=f"prefiltered FDBSCAN diverged at seed {seed}",
            )
            assert fast.extras["n_core"] == dense.extras["n_core"]
            assert fast.extras["n_noise"] == dense.extras["n_noise"]

    def test_prefilter_actually_prunes(self):
        data = make_blobs_uncertain(
            n_objects=80, n_clusters=4, separation=6.0, seed=2
        )
        result = FDBSCAN(n_samples=16, prefilter=True).fit(data, seed=2)
        n = len(data)
        assert result.extras["n_candidate_pairs"] < n * (n - 1) // 2
        assert result.extras["pair_prune_rate"] > 0.0


class TestCappedFOPTICS:
    def test_full_cap_is_bitwise_dense(self):
        for seed in range(4):
            data = make_blobs_uncertain(
                n_objects=60, n_clusters=3, separation=4.0, seed=seed
            )
            n = len(data)
            dense = FOPTICS(n_samples=16, n_clusters=3).fit(data, seed=seed)
            capped = FOPTICS(
                n_samples=16, n_clusters=3, knn_cap=n - 1
            ).fit(data, seed=seed)
            assert capped.extras["ordering"] == dense.extras["ordering"]
            assert capped.extras["reachability"] == dense.extras["reachability"]
            np.testing.assert_array_equal(dense.labels, capped.labels)

    def test_small_cap_is_sane(self):
        data = make_blobs_uncertain(
            n_objects=80, n_clusters=3, separation=6.0, seed=7
        )
        result = FOPTICS(n_samples=16, n_clusters=3, knn_cap=10).fit(
            data, seed=7
        )
        assert result.labels.shape == (80,)
        assert result.extras["knn_cap"] == 10
        # Union-symmetrized 10-NN graph: far fewer than dense pairs.
        assert result.extras["n_graph_edges"] < 80 * 79 // 2
        # Lossy cap still recovers the well-separated structure.
        assert f_measure(result.labels, data.labels) > 0.9

    def test_cap_validation(self):
        with pytest.raises(InvalidParameterError):
            FOPTICS(min_pts=4, knn_cap=3)
        with pytest.raises(InvalidParameterError):
            FOPTICS(knn_cap=0)


class TestDensityHelpers:
    @pytest.fixture(scope="class")
    def samples(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(40, 12, 3))

    def test_prefilter_never_prunes_nonzero_pairs(self, samples):
        n = samples.shape[0]
        means = samples.mean(axis=1)
        radii = sample_radii(samples)
        eps = 1.0
        ii, jj = eps_candidate_pairs(means, radii, eps)
        kept = set(zip(ii.tolist(), jj.tolist()))
        tri = np.triu_indices(n, k=1)
        all_probs = gathered_pair_probabilities(samples, eps, tri[0], tri[1])
        for a, b, p in zip(tri[0], tri[1], all_probs):
            if (int(a), int(b)) not in kept:
                assert p == 0.0, f"pruned pair ({a},{b}) has p={p}"

    def test_gathered_eds_match_dense_bitwise(self, samples):
        dense = expected_distance_matrix(samples)
        n = samples.shape[0]
        tri = np.triu_indices(n, k=1)
        gathered = gathered_pair_expected_distances(samples, tri[0], tri[1])
        assert np.array_equal(gathered, dense[tri])

    def test_scattered_row_sums_match_dense_bitwise(self, samples):
        n = samples.shape[0]
        tri = np.triu_indices(n, k=1)
        probs = gathered_pair_probabilities(samples, 1.5, tri[0], tri[1])
        dense = np.zeros((n, n))
        dense[tri] = probs
        dense = dense + dense.T
        np.fill_diagonal(dense, 1.0)
        expected = dense.sum(axis=1)
        # Exercise the blocked path too: tiny blocks must still match.
        for block in (None, 7):
            got = scattered_row_sums(n, tri[0], tri[1], probs, block=block)
            assert np.array_equal(got, expected)

    def test_knn_candidate_indices(self, samples):
        means = samples.mean(axis=1)
        n = means.shape[0]
        idx = knn_candidate_indices(means, 5)
        assert idx.shape == (n, 5)
        # No self-neighbors, and each row holds the 5 plane-nearest.
        d = np.linalg.norm(means[:, None] - means[None, :], axis=2)
        np.fill_diagonal(d, np.inf)
        for i in range(n):
            assert i not in idx[i]
            expected = set(np.argsort(d[i])[:5].tolist())
            assert set(idx[i].tolist()) == expected
        with pytest.raises(InvalidParameterError):
            knn_candidate_indices(means, 0)
        with pytest.raises(InvalidParameterError):
            knn_candidate_indices(means, n)

    def test_symmetric_adjacency_sorted_rows(self):
        ii = np.array([0, 2, 1], dtype=np.int64)
        jj = np.array([3, 4, 2], dtype=np.int64)
        offsets, neighbors = symmetric_adjacency(5, ii, jj)
        rows = [
            neighbors[offsets[i]: offsets[i + 1]].tolist() for i in range(5)
        ]
        assert rows == [[3], [2], [1, 4], [0], [2]]


class TestConvergenceWarningSemantics:
    """warn_convergence fires once per *fit*, not once per process."""

    def _unconverging_fit(self, data):
        BasicUKMeans(n_clusters=4, n_samples=8, max_iter=1).fit(data, seed=0)

    def test_warns_on_every_fit(self, overlap_data):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            self._unconverging_fit(overlap_data)
            self._unconverging_fit(overlap_data)
        messages = [
            w for w in caught if issubclass(w.category, ConvergenceWarning)
        ]
        # The stdlib "default" filter dedups by (message, module, lineno)
        # registry; warn_convergence resets the registry so the second
        # fit is not silently swallowed.
        assert len(messages) == 2

    def test_filters_still_apply(self, overlap_data):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("ignore", ConvergenceWarning)
            self._unconverging_fit(overlap_data)
        assert not caught

    def test_runner_aggregates_unconverged(self, overlap_data):
        algorithm = BasicUKMeans(n_clusters=4, n_samples=8, max_iter=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = algorithm.fit_best(
                overlap_data, seed=0, n_init=3, backend="serial"
            )
        assert result.extras["n_unconverged"] == 3
        aggregates = [
            w
            for w in caught
            if issubclass(w.category, ConvergenceWarning)
            and "restarts" in str(w.message)
        ]
        assert len(aggregates) == 1
        assert "3 of 3" in str(aggregates[0].message)

    def test_runner_quiet_when_converged(self, separated_data):
        algorithm = BasicUKMeans(n_clusters=3, n_samples=8, max_iter=100)
        result = algorithm.fit_best(
            separated_data, seed=0, n_init=2, backend="serial"
        )
        assert result.extras["n_unconverged"] == 0
