"""Tests for the experiment runners (Tables 2-3, Figures 4-5) at tiny scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    build_algorithm,
    run_figure4,
    run_figure5,
    run_table2,
    run_table3,
)
from repro.exceptions import InvalidParameterError

TINY = ExperimentConfig(scale=0.08, n_runs=1, seed=99, n_samples=8)


class TestConfig:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert 0 < cfg.scale <= 1
        assert cfg.n_runs >= 1

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(scale=0.0)
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(n_runs=0)

    def test_build_algorithm_all_names(self):
        for name in (
            "UCPC",
            "UKM",
            "MMV",
            "UKmed",
            "bUKM",
            "MinMax-BB",
            "VDBiP",
            "FDB",
            "FOPT",
            "UAHC",
        ):
            algo = build_algorithm(name, n_clusters=3)
            assert algo.name == name

    def test_build_algorithm_unknown(self):
        with pytest.raises(InvalidParameterError):
            build_algorithm("DBSCAN", n_clusters=3)


class TestTable2:
    @pytest.fixture(scope="class")
    def report(self):
        return run_table2(
            TINY,
            datasets=("iris", "wine"),
            families=("normal",),
            algorithms=("UKM", "MMV", "UCPC"),
        )

    def test_all_cells_present(self, report):
        assert len(report.cells) == 2 * 1 * 3
        for cell in report.cells.values():
            assert -1.0 <= cell.theta <= 1.0
            assert -1.0 <= cell.quality <= 1.0

    def test_aggregates_consistent(self, report):
        manual = np.mean(
            [
                report.cells[(ds, "normal", "UCPC")].theta
                for ds in ("iris", "wine")
            ]
        )
        assert report.overall_average("UCPC", "theta") == pytest.approx(manual)
        assert report.average_score("normal", "UCPC", "theta") == pytest.approx(
            manual
        )

    def test_gain_definition(self, report):
        gain = report.overall_gain("UKM", "theta")
        assert gain == pytest.approx(
            report.overall_average("UCPC", "theta")
            - report.overall_average("UKM", "theta")
        )

    def test_render_contains_rows(self, report):
        for metric in ("theta", "quality"):
            text = report.render(metric)
            assert "iris" in text
            assert "overall avg" in text
            assert "UCPC" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def report(self):
        return run_table3(
            ExperimentConfig(scale=0.004, n_runs=1, seed=5, n_samples=8),
            datasets=("neuroblastoma",),
            cluster_counts=(2, 3),
            algorithms=("UKM", "UCPC"),
        )

    def test_cells_present(self, report):
        assert len(report.quality) == 1 * 2 * 2
        for value in report.quality.values():
            assert -1.0 <= value <= 1.0

    def test_aggregates(self, report):
        avg = report.dataset_average("neuroblastoma", "UCPC")
        manual = np.mean(
            [report.quality[("neuroblastoma", k, "UCPC")] for k in (2, 3)]
        )
        assert avg == pytest.approx(manual)
        assert report.overall_average("UCPC") == pytest.approx(manual)

    def test_render(self, report):
        text = report.render()
        assert "neuroblastoma" in text
        assert "overall avg" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def report(self):
        return run_figure4(
            ExperimentConfig(scale=0.01, n_runs=1, seed=3, n_samples=8),
            datasets=("abalone",),
            slow_group=("UKmed",),
            fast_group=("UKM",),
            n_clusters=4,
        )

    def test_runtimes_positive(self, report):
        for value in report.runtimes_ms.values():
            assert value > 0.0

    def test_ucpc_always_measured(self, report):
        assert ("abalone", "UCPC") in report.runtimes_ms

    def test_orders_of_magnitude(self, report):
        oom = report.orders_of_magnitude_vs_ucpc("abalone", "UKmed")
        assert np.isfinite(oom)

    def test_render(self, report):
        text = report.render()
        assert "slower group" in text
        assert "faster group" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def report(self):
        return run_figure5(
            ExperimentConfig(n_runs=1, seed=4, n_samples=8),
            fractions=(0.25, 1.0),
            algorithms=("UKM", "UCPC"),
            base_size=400,
        )

    def test_sizes_grow_with_fraction(self, report):
        assert report.sizes[0.25] < report.sizes[1.0]

    def test_runtimes_recorded(self, report):
        assert len(report.runtimes_ms) == 2 * 2
        for value in report.runtimes_ms.values():
            assert value > 0.0

    def test_linearity_r2_bounded(self, report):
        for alg in ("UKM", "UCPC"):
            assert report.linearity_r2(alg) <= 1.0

    def test_render(self, report):
        text = report.render()
        assert "scalability" in text
        assert "25%" in text
