"""Tests for basic UK-means and the pruning variants (MinMax-BB, VDBiP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import BasicUKMeans, MinMaxBB, UKMeans, VDBiP
from repro.clustering.pruning import _PruningUKMeansBase
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def data():
    return make_blobs_uncertain(
        n_objects=120, n_clusters=3, separation=7.0, seed=17
    )


class TestBasicUKMeans:
    def test_recovers_blobs(self, data):
        result = BasicUKMeans(n_clusters=3, n_samples=32).fit(data, seed=0)
        assert f_measure(result.labels, data.labels) > 0.9

    def test_counts_ed_evaluations(self, data):
        result = BasicUKMeans(n_clusters=3, n_samples=16).fit(data, seed=0)
        evals = result.extras["ed_evaluations"]
        # bUKM evaluates every (object, centroid) pair every iteration.
        assert evals == len(data) * 3 * result.n_iterations

    def test_custom_metric(self, data):
        def manhattan(x, y):
            return float(np.abs(x - y).sum())

        small = data.subset(range(30))
        result = BasicUKMeans(n_clusters=3, n_samples=8, metric=manhattan).fit(
            small, seed=1
        )
        assert result.n_clusters == 3

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            BasicUKMeans(n_clusters=2, n_samples=0)
        with pytest.raises(InvalidParameterError):
            BasicUKMeans(n_clusters=2, max_iter=0)

    def test_agrees_with_fast_ukmeans_on_separated_data(self, data):
        """With squared Euclidean ED, bUKM's MC estimate converges to the
        fast UK-means assignment on well-separated clusters."""
        basic = BasicUKMeans(n_clusters=3, n_samples=64).fit(data, seed=3)
        fast = UKMeans(n_clusters=3, init="kmeans++").fit(data, seed=3)
        assert f_measure(basic.labels, data.labels) == pytest.approx(
            f_measure(fast.labels, data.labels), abs=0.1
        )


@pytest.mark.parametrize("cls", [MinMaxBB, VDBiP], ids=["MinMaxBB", "VDBiP"])
class TestPruningVariants:
    def test_recovers_blobs(self, cls, data):
        result = cls(n_clusters=3, n_samples=32).fit(data, seed=0)
        assert f_measure(result.labels, data.labels) > 0.9

    def test_prunes_something(self, cls, data):
        result = cls(n_clusters=3, n_samples=16).fit(data, seed=0)
        assert result.extras["ed_pruned"] > 0
        assert 0.0 < result.extras["pruning_rate"] <= 1.0

    def test_pruning_is_lossless(self, cls, data):
        """Pruned and unpruned runs produce the same clustering quality
        (pruning only skips provably non-winning candidates)."""
        pruned = cls(n_clusters=3, n_samples=32).fit(data, seed=5)
        plain = BasicUKMeans(n_clusters=3, n_samples=32).fit(data, seed=5)
        assert f_measure(pruned.labels, plain.labels) > 0.95

    def test_cluster_shift_toggle(self, cls, data):
        with_shift = cls(n_clusters=3, n_samples=16, cluster_shift=True).fit(
            data, seed=1
        )
        without = cls(n_clusters=3, n_samples=16, cluster_shift=False).fit(
            data, seed=1
        )
        assert with_shift.extras["cluster_shift"] is True
        assert without.extras["cluster_shift"] is False
        # Pruning (with or without shift bounds) is lossless: identical
        # seeds produce identical clusterings.
        assert f_measure(with_shift.labels, without.labels) == pytest.approx(1.0)

    def test_invalid_parameters(self, cls):
        with pytest.raises(InvalidParameterError):
            cls(n_clusters=2, n_samples=0)
        with pytest.raises(InvalidParameterError):
            cls(n_clusters=2, max_iter=0)


class TestCandidateMasks:
    """The pruning masks must never eliminate the true nearest centroid."""

    def _boxes_and_centers(self, seed):
        rng = np.random.default_rng(seed)
        centers = rng.normal(0, 5, size=(4, 2))
        mids = rng.normal(0, 5, size=(25, 2))
        half = rng.uniform(0.1, 1.5, size=(25, 2))
        return mids - half, mids + half, mids, centers

    @pytest.mark.parametrize("cls", [MinMaxBB, VDBiP], ids=["MinMaxBB", "VDBiP"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mask_keeps_nearest_center_of_every_interior_point(self, cls, seed):
        lower, upper, mids, centers = self._boxes_and_centers(seed)
        algo = cls(n_clusters=4)
        mask = algo._candidate_mask(lower, upper, centers)
        # For random points inside each box, the nearest center must
        # remain a candidate (the pruning bounds hold for all box points,
        # hence for the pdf's support).
        rng = np.random.default_rng(seed + 100)
        for i in range(lower.shape[0]):
            for _ in range(5):
                x = rng.uniform(lower[i], upper[i])
                dists = ((centers - x) ** 2).sum(axis=1)
                nearest = int(np.argmin(dists))
                assert mask[i, nearest], (
                    f"pruned the nearest center {nearest} for object {i}"
                )

    def test_base_class_mask_not_implemented(self):
        class Dummy(_PruningUKMeansBase):
            name = "dummy"

        with pytest.raises(NotImplementedError):
            Dummy(n_clusters=2)._candidate_mask(
                np.zeros((1, 1)), np.ones((1, 1)), np.zeros((2, 1))
            )
