"""Tests for basic UK-means and the pruning variants (MinMax-BB, VDBiP)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.clustering import BasicUKMeans, MinMaxBB, UKMeans, VDBiP
from repro.clustering._repair import repair_empty_clusters
from repro.clustering.pruning import _PruningUKMeansBase
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects import UncertainDataset, UncertainObject


@pytest.fixture(scope="module")
def data():
    return make_blobs_uncertain(
        n_objects=120, n_clusters=3, separation=7.0, seed=17
    )


class TestBasicUKMeans:
    def test_recovers_blobs(self, data):
        result = BasicUKMeans(n_clusters=3, n_samples=32).fit(data, seed=0)
        assert f_measure(result.labels, data.labels) > 0.9

    def test_counts_ed_evaluations(self, data):
        result = BasicUKMeans(n_clusters=3, n_samples=16).fit(data, seed=0)
        evals = result.extras["ed_evaluations"]
        # bUKM evaluates every (object, centroid) pair every iteration.
        assert evals == len(data) * 3 * result.n_iterations

    def test_custom_metric(self, data):
        def manhattan(x, y):
            return float(np.abs(x - y).sum())

        small = data.subset(range(30))
        result = BasicUKMeans(n_clusters=3, n_samples=8, metric=manhattan).fit(
            small, seed=1
        )
        assert result.n_clusters == 3

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            BasicUKMeans(n_clusters=2, n_samples=0)
        with pytest.raises(InvalidParameterError):
            BasicUKMeans(n_clusters=2, max_iter=0)

    def test_agrees_with_fast_ukmeans_on_separated_data(self, data):
        """With squared Euclidean ED, bUKM's MC estimate converges to the
        fast UK-means assignment on well-separated clusters."""
        basic = BasicUKMeans(n_clusters=3, n_samples=64).fit(data, seed=3)
        fast = UKMeans(n_clusters=3, init="kmeans++").fit(data, seed=3)
        assert f_measure(basic.labels, data.labels) == pytest.approx(
            f_measure(fast.labels, data.labels), abs=0.1
        )


@pytest.mark.parametrize("cls", [MinMaxBB, VDBiP], ids=["MinMaxBB", "VDBiP"])
class TestPruningVariants:
    def test_recovers_blobs(self, cls, data):
        result = cls(n_clusters=3, n_samples=32).fit(data, seed=0)
        assert f_measure(result.labels, data.labels) > 0.9

    def test_prunes_something(self, cls, data):
        result = cls(n_clusters=3, n_samples=16).fit(data, seed=0)
        assert result.extras["ed_pruned"] > 0
        assert 0.0 < result.extras["pruning_rate"] <= 1.0

    def test_pruning_is_lossless(self, cls, data):
        """Pruned and unpruned runs produce the same clustering quality
        (pruning only skips provably non-winning candidates)."""
        pruned = cls(n_clusters=3, n_samples=32).fit(data, seed=5)
        plain = BasicUKMeans(n_clusters=3, n_samples=32).fit(data, seed=5)
        assert f_measure(pruned.labels, plain.labels) > 0.95

    def test_cluster_shift_toggle(self, cls, data):
        with_shift = cls(n_clusters=3, n_samples=16, cluster_shift=True).fit(
            data, seed=1
        )
        without = cls(n_clusters=3, n_samples=16, cluster_shift=False).fit(
            data, seed=1
        )
        assert with_shift.extras["cluster_shift"] is True
        assert without.extras["cluster_shift"] is False
        # Pruning (with or without shift bounds) is lossless: identical
        # seeds produce identical clusterings.
        assert f_measure(with_shift.labels, without.labels) == pytest.approx(1.0)

    def test_invalid_parameters(self, cls):
        with pytest.raises(InvalidParameterError):
            cls(n_clusters=2, n_samples=0)
        with pytest.raises(InvalidParameterError):
            cls(n_clusters=2, max_iter=0)


class TestCandidateMasks:
    """The pruning masks must never eliminate the true nearest centroid."""

    def _boxes_and_centers(self, seed):
        rng = np.random.default_rng(seed)
        centers = rng.normal(0, 5, size=(4, 2))
        mids = rng.normal(0, 5, size=(25, 2))
        half = rng.uniform(0.1, 1.5, size=(25, 2))
        return mids - half, mids + half, mids, centers

    @pytest.mark.parametrize("cls", [MinMaxBB, VDBiP], ids=["MinMaxBB", "VDBiP"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mask_keeps_nearest_center_of_every_interior_point(self, cls, seed):
        lower, upper, mids, centers = self._boxes_and_centers(seed)
        algo = cls(n_clusters=4)
        mask = algo._candidate_mask(lower, upper, centers)
        # For random points inside each box, the nearest center must
        # remain a candidate (the pruning bounds hold for all box points,
        # hence for the pdf's support).
        rng = np.random.default_rng(seed + 100)
        for i in range(lower.shape[0]):
            for _ in range(5):
                x = rng.uniform(lower[i], upper[i])
                dists = ((centers - x) ** 2).sum(axis=1)
                nearest = int(np.argmin(dists))
                assert mask[i, nearest], (
                    f"pruned the nearest center {nearest} for object {i}"
                )

    def test_base_class_mask_not_implemented(self):
        class Dummy(_PruningUKMeansBase):
            name = "dummy"

        with pytest.raises(NotImplementedError):
            Dummy(n_clusters=2)._candidate_mask(
                np.zeros((1, 1)), np.ones((1, 1)), np.zeros((2, 1))
            )


class TestLosslessPruningRegression:
    """Pruning must reproduce the basic UK-means assignments *exactly*.

    Regression for the cluster-shift staleness bug: the shift bound used
    only the last iteration's centroid displacement against EDs cached
    several iterations earlier, producing invalid lower bounds that
    could prune the true nearest centroid.
    """

    @pytest.mark.parametrize("cls", [MinMaxBB, VDBiP], ids=["MinMaxBB", "VDBiP"])
    @pytest.mark.parametrize("cluster_shift", [True, False], ids=["shift", "noshift"])
    def test_exact_assignment_match_across_seeds(self, cls, cluster_shift):
        data = make_blobs_uncertain(
            n_objects=80, n_clusters=4, separation=2.0, seed=23
        )
        for seed in range(20):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                basic = BasicUKMeans(n_clusters=4, n_samples=24).fit(
                    data, seed=seed
                )
                pruned = cls(
                    n_clusters=4, n_samples=24, cluster_shift=cluster_shift
                ).fit(data, seed=seed)
            np.testing.assert_array_equal(
                basic.labels,
                pruned.labels,
                err_msg=f"{cls.__name__} diverged from bUKM at seed {seed}",
            )
            assert pruned.objective == pytest.approx(basic.objective)


class TestEmptyClusterRepair:
    """The shared repair helper must not cascade new empty clusters."""

    def test_sole_member_victim_excluded(self):
        # Cluster 2 is empty and the object farthest from its centroid
        # (index 2, distance 10) is the *sole* member of cluster 1:
        # moving it — as the old argmax-only repair did — would merely
        # relocate the emptiness.  The helper must pick a cluster-0
        # object instead.
        points = np.array([[0.0], [0.1], [100.0]])
        centers = np.array([[0.05], [90.0], [50.0]])
        assignment = np.array([0, 0, 1], dtype=np.int64)
        moves = repair_empty_clusters(assignment, points, centers, k=3)
        counts = np.bincount(assignment, minlength=3)
        assert np.all(counts > 0), f"repair left empties: {counts}"
        assert assignment[2] == 1, "sole member was moved"
        assert moves and moves[0][0] == 2

    def test_cascade_is_refilled(self):
        # Two empty clusters and one far-away pair: naive repair that
        # iterates a stale empty list can end with an empty cluster.
        points = np.array([[0.0], [0.2], [10.0], [10.2]])
        centers = np.array([[0.1], [10.1], [5.0], [7.0]])
        assignment = np.array([0, 0, 1, 1], dtype=np.int64)
        repair_empty_clusters(assignment, points, centers, k=4)
        counts = np.bincount(assignment, minlength=4)
        assert np.all(counts > 0), f"repair left empties: {counts}"

    @pytest.mark.parametrize("cls", [MinMaxBB, VDBiP, BasicUKMeans])
    def test_k_near_n_adversarial(self, cls):
        """k close to n forces repeated repairs; every cluster survives."""
        rng = np.random.default_rng(5)
        # Tight groups of duplicate-ish points make many centroids
        # collapse onto the same optimum, forcing empty clusters.
        base = rng.normal(0.0, 0.05, size=(12, 2))
        points = np.vstack([base, base[:3]])
        objects = [
            UncertainObject.uniform_box(p, [0.01, 0.01], label=0)
            for p in points
        ]
        data = UncertainDataset(objects)
        k = len(data) - 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = cls(n_clusters=k, n_samples=8, max_iter=30).fit(
                data, seed=1
            )
        counts = np.bincount(result.labels, minlength=k)
        assert np.all(counts > 0), f"{cls.__name__} left empties: {counts}"

    def test_k_equals_n(self):
        """Extreme case: every object must end up alone in a cluster."""
        data = make_blobs_uncertain(n_objects=10, n_clusters=2, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = MinMaxBB(n_clusters=10, n_samples=4, max_iter=20).fit(
                data, seed=3
            )
        counts = np.bincount(result.labels, minlength=10)
        assert np.all(counts == 1)


class TestSampleCache:
    @pytest.mark.parametrize("cls", [MinMaxBB, VDBiP, BasicUKMeans])
    def test_cache_shape_validated(self, cls, data):
        algo = cls(n_clusters=3, n_samples=8)
        algo.sample_cache = np.zeros((2, 8, 2))
        with pytest.raises(InvalidParameterError):
            algo.fit(data, seed=0)

    def test_cache_used_verbatim(self, data):
        tensor = data.sample_tensor(8, seed=42)
        algo = BasicUKMeans(n_clusters=3, n_samples=8)
        algo.sample_cache = tensor
        cached = algo.fit(data, seed=0)
        algo2 = BasicUKMeans(n_clusters=3, n_samples=8)
        algo2.sample_cache = tensor.copy()
        again = algo2.fit(data, seed=0)
        np.testing.assert_array_equal(cached.labels, again.labels)
