"""Tests for MMVar and UK-medoids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import MMVar, UKMedoids, j_mm
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import InvalidParameterError
from repro.objects.distance import pairwise_squared_expected_distances


@pytest.fixture(scope="module")
def data():
    return make_blobs_uncertain(
        n_objects=120, n_clusters=3, separation=7.0, seed=23
    )


class TestMMVar:
    def test_recovers_blobs(self, data):
        """Best of a few random restarts (local search can stall)."""
        best = max(
            f_measure(MMVar(n_clusters=3).fit(data, seed=s).labels, data.labels)
            for s in range(5)
        )
        assert best > 0.9

    def test_objective_matches_jmm_sum(self, data):
        result = MMVar(n_clusters=3).fit(data, seed=1)
        total = 0.0
        for c in range(3):
            members = [o for o, lab in zip(data, result.labels) if lab == c]
            total += j_mm(members)
        assert result.objective == pytest.approx(total, rel=1e-6)

    def test_objective_monotone(self, data):
        result = MMVar(n_clusters=4).fit(data, seed=2)
        history = result.objective_history
        for prev, curr in zip(history, history[1:]):
            assert curr <= prev + 1e-9 * max(1.0, abs(prev))

    def test_all_clusters_nonempty(self, data):
        result = MMVar(n_clusters=5).fit(data, seed=3)
        assert np.all(np.bincount(result.labels, minlength=5) > 0)

    def test_reproducible(self, data):
        a = MMVar(n_clusters=3).fit(data, seed=9)
        b = MMVar(n_clusters=3).fit(data, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            MMVar(n_clusters=2, max_iter=0)


class TestUKMedoids:
    def test_recovers_blobs(self, data):
        best = max(
            f_measure(
                UKMedoids(n_clusters=3).fit(data, seed=s).labels, data.labels
            )
            for s in range(5)
        )
        assert best > 0.85

    def test_medoids_are_cluster_members(self, data):
        result = UKMedoids(n_clusters=3).fit(data, seed=1)
        medoids = result.extras["medoids"]
        assert len(medoids) == 3
        for c, medoid in enumerate(medoids):
            assert result.labels[medoid] == c

    def test_objective_is_sum_of_medoid_distances(self, data):
        result = UKMedoids(n_clusters=3).fit(data, seed=2)
        distances = pairwise_squared_expected_distances(data)
        medoids = np.array(result.extras["medoids"])
        expected = float(
            distances[np.arange(len(data)), medoids[result.labels]].sum()
        )
        assert result.objective == pytest.approx(expected)

    def test_precomputed_matrix_reused(self, data):
        distances = pairwise_squared_expected_distances(data)
        result = UKMedoids(n_clusters=3, precomputed=distances).fit(data, seed=3)
        reference = UKMedoids(n_clusters=3).fit(data, seed=3)
        assert np.array_equal(result.labels, reference.labels)

    def test_precomputed_shape_checked(self, data):
        with pytest.raises(InvalidParameterError):
            UKMedoids(n_clusters=3, precomputed=np.zeros((2, 2))).fit(data, seed=0)

    def test_kmeanspp_init(self, data):
        best = max(
            f_measure(
                UKMedoids(n_clusters=3, init="kmeans++").fit(data, seed=s).labels,
                data.labels,
            )
            for s in range(5)
        )
        assert best > 0.85

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            UKMedoids(n_clusters=2, init="bogus")
        with pytest.raises(InvalidParameterError):
            UKMedoids(n_clusters=2, max_iter=0)

    def test_reproducible(self, data):
        a = UKMedoids(n_clusters=3).fit(data, seed=6)
        b = UKMedoids(n_clusters=3).fit(data, seed=6)
        assert np.array_equal(a.labels, b.labels)

    def test_empty_cluster_reseed_keeps_k_distinct_medoids(self, monkeypatch):
        """Regression: the empty-cluster reseed used to take a bare
        ``argmax(own_cost)``, which can pick an object that was just
        chosen as another cluster's new medoid — collapsing the
        clustering to k-1 distinct medoids.  This matrix forces exactly
        that trap: cluster 2 starts empty, and the worst-served object
        (4) simultaneously wins cluster 1's medoid update."""
        from repro.objects import UncertainDataset

        # Symmetric ÊD stand-in, objects 0..5: {0, 2, 3} near medoid 0
        # (objects 0 and 2 coincident), {1, 4, 5} near medoid 1, with
        # the far pair (4, 5) equidistant from it.
        d = np.zeros((6, 6))
        pairs = {
            (0, 1): 5.0, (0, 2): 0.0, (0, 3): 2.0, (0, 4): 12.0, (0, 5): 12.0,
            (1, 2): 5.0, (1, 3): 4.0, (1, 4): 10.0, (1, 5): 10.0,
            (2, 3): 2.0, (2, 4): 12.0, (2, 5): 12.0,
            (3, 4): 12.0, (3, 5): 12.0,
            (4, 5): 0.1,
        }
        for (i, j), value in pairs.items():
            d[i, j] = d[j, i] = value
        monkeypatch.setattr(
            "repro.clustering.ukmedoids.random_seed_indices",
            lambda n, k, rng: np.array([0, 1, 2]),
        )
        dataset = UncertainDataset.from_points(np.zeros((6, 1)))
        result = UKMedoids(n_clusters=3, precomputed=d).fit(dataset, seed=0)
        medoids = result.extras["medoids"]
        assert result.extras["reseeded"] >= 1
        assert len(set(medoids)) == 3
        assert result.n_clusters == 3

    def test_member_update_cannot_steal_reseed_target(self, monkeypatch):
        """The collapse hazard from the other direction: after an empty
        cluster reseeds onto object x, a *later* cluster's member-based
        medoid update must not pick x too.  Here cluster 1 (medoid 1)
        starts empty and reseeds onto object 2 — which then also wins
        cluster 2's within-sum tie between members {2, 3}."""
        from repro.objects import UncertainDataset

        d = np.zeros((5, 5))
        pairs = {
            (0, 1): 0.0, (0, 2): 100.0, (0, 3): 100.0, (0, 4): 1.0,
            (1, 2): 100.0, (1, 3): 100.0, (1, 4): 1.0,
            (2, 3): 10.0, (2, 4): 100.0,
            (3, 4): 100.0,
        }
        for (i, j), value in pairs.items():
            d[i, j] = d[j, i] = value
        monkeypatch.setattr(
            "repro.clustering.ukmedoids.random_seed_indices",
            lambda n, k, rng: np.array([0, 1, 3]),
        )
        dataset = UncertainDataset.from_points(np.zeros((5, 1)))
        result = UKMedoids(n_clusters=3, precomputed=d).fit(dataset, seed=0)
        assert result.extras["reseeded"] >= 1
        assert len(set(result.extras["medoids"])) == 3
        assert result.n_clusters == 3

    def test_reseed_with_all_objects_medoids_keeps_old_medoid(self, monkeypatch):
        """Degenerate k == n case: when every object already is a
        medoid there is no reseed candidate, so the empty cluster keeps
        its old medoid instead of duplicating another one."""
        from repro.objects import UncertainDataset

        # Objects 0 and 1 coincide, so with medoids [0, 1] object 1's
        # tie breaks to medoid 0 and cluster 1 goes empty.
        d = np.array([[0.0, 0.0], [0.0, 0.0]])
        monkeypatch.setattr(
            "repro.clustering.ukmedoids.random_seed_indices",
            lambda n, k, rng: np.array([0, 1]),
        )
        dataset = UncertainDataset.from_points(np.zeros((2, 1)))
        result = UKMedoids(n_clusters=2, precomputed=d).fit(dataset, seed=0)
        assert len(set(result.extras["medoids"])) == 2
