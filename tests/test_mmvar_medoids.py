"""Tests for MMVar and UK-medoids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import MMVar, UKMedoids, j_mm
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import InvalidParameterError
from repro.objects.distance import pairwise_squared_expected_distances


@pytest.fixture(scope="module")
def data():
    return make_blobs_uncertain(
        n_objects=120, n_clusters=3, separation=7.0, seed=23
    )


class TestMMVar:
    def test_recovers_blobs(self, data):
        """Best of a few random restarts (local search can stall)."""
        best = max(
            f_measure(MMVar(n_clusters=3).fit(data, seed=s).labels, data.labels)
            for s in range(5)
        )
        assert best > 0.9

    def test_objective_matches_jmm_sum(self, data):
        result = MMVar(n_clusters=3).fit(data, seed=1)
        total = 0.0
        for c in range(3):
            members = [o for o, lab in zip(data, result.labels) if lab == c]
            total += j_mm(members)
        assert result.objective == pytest.approx(total, rel=1e-6)

    def test_objective_monotone(self, data):
        result = MMVar(n_clusters=4).fit(data, seed=2)
        history = result.objective_history
        for prev, curr in zip(history, history[1:]):
            assert curr <= prev + 1e-9 * max(1.0, abs(prev))

    def test_all_clusters_nonempty(self, data):
        result = MMVar(n_clusters=5).fit(data, seed=3)
        assert np.all(np.bincount(result.labels, minlength=5) > 0)

    def test_reproducible(self, data):
        a = MMVar(n_clusters=3).fit(data, seed=9)
        b = MMVar(n_clusters=3).fit(data, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            MMVar(n_clusters=2, max_iter=0)


class TestUKMedoids:
    def test_recovers_blobs(self, data):
        best = max(
            f_measure(
                UKMedoids(n_clusters=3).fit(data, seed=s).labels, data.labels
            )
            for s in range(5)
        )
        assert best > 0.85

    def test_medoids_are_cluster_members(self, data):
        result = UKMedoids(n_clusters=3).fit(data, seed=1)
        medoids = result.extras["medoids"]
        assert len(medoids) == 3
        for c, medoid in enumerate(medoids):
            assert result.labels[medoid] == c

    def test_objective_is_sum_of_medoid_distances(self, data):
        result = UKMedoids(n_clusters=3).fit(data, seed=2)
        distances = pairwise_squared_expected_distances(data)
        medoids = np.array(result.extras["medoids"])
        expected = float(
            distances[np.arange(len(data)), medoids[result.labels]].sum()
        )
        assert result.objective == pytest.approx(expected)

    def test_precomputed_matrix_reused(self, data):
        distances = pairwise_squared_expected_distances(data)
        result = UKMedoids(n_clusters=3, precomputed=distances).fit(data, seed=3)
        reference = UKMedoids(n_clusters=3).fit(data, seed=3)
        assert np.array_equal(result.labels, reference.labels)

    def test_precomputed_shape_checked(self, data):
        with pytest.raises(InvalidParameterError):
            UKMedoids(n_clusters=3, precomputed=np.zeros((2, 2))).fit(data, seed=0)

    def test_kmeanspp_init(self, data):
        best = max(
            f_measure(
                UKMedoids(n_clusters=3, init="kmeans++").fit(data, seed=s).labels,
                data.labels,
            )
            for s in range(5)
        )
        assert best > 0.85

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            UKMedoids(n_clusters=2, init="bogus")
        with pytest.raises(InvalidParameterError):
            UKMedoids(n_clusters=2, max_iter=0)

    def test_reproducible(self, data):
        a = UKMedoids(n_clusters=3).fit(data, seed=6)
        b = UKMedoids(n_clusters=3).fit(data, seed=6)
        assert np.array_equal(a.labels, b.labels)
