"""Tests for FDBSCAN, FOPTICS and U-AHC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import FDBSCAN, FOPTICS, UAHC, auto_eps
from repro.clustering.fdbscan import pairwise_reach_probabilities
from repro.clustering.foptics import (
    cluster_ordering,
    expected_distance_matrix,
    extract_by_threshold,
)
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def data():
    return make_blobs_uncertain(
        n_objects=90, n_clusters=3, separation=8.0, uncertainty_std=0.2, seed=31
    )


class TestFDBSCAN:
    def test_finds_dense_clusters(self, data):
        result = FDBSCAN(min_pts=4, n_samples=16).fit(data, seed=0)
        # Density clustering may emit noise; the non-noise part must align
        # with the blob structure.
        assert result.n_clusters >= 2
        assert f_measure(result.labels, data.labels) > 0.6

    def test_noise_labeling(self, data):
        # A tiny eps turns everything into noise.
        result = FDBSCAN(eps=1e-6, min_pts=4, n_samples=8).fit(data, seed=0)
        assert result.n_noise == len(data)
        assert result.n_clusters == 0

    def test_single_cluster_with_huge_eps(self, data):
        result = FDBSCAN(eps=1e3, min_pts=2, n_samples=8).fit(data, seed=0)
        assert result.n_clusters == 1
        assert result.n_noise == 0

    def test_extras_recorded(self, data):
        result = FDBSCAN(min_pts=4, n_samples=8).fit(data, seed=0)
        assert result.extras["eps"] > 0
        assert result.extras["n_core"] >= 0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            FDBSCAN(eps=-1.0)
        with pytest.raises(InvalidParameterError):
            FDBSCAN(min_pts=0)
        with pytest.raises(InvalidParameterError):
            FDBSCAN(reach_prob=1.5)
        with pytest.raises(InvalidParameterError):
            FDBSCAN(n_samples=0)

    def test_auto_eps_positive_and_scale_aware(self, data):
        from repro.objects import UncertainDataset

        eps = auto_eps(data, quantile=0.1)
        assert eps > 0
        # The same geometry stretched 10x must yield ~10x the eps.
        stretched = UncertainDataset.from_points(data.mu_matrix * 10.0)
        assert auto_eps(stretched, quantile=0.1) == pytest.approx(
            10.0 * eps, rel=1e-6
        )

    def test_reach_probabilities_properties(self, data):
        samples = np.stack([obj.sample(8, seed=i) for i, obj in enumerate(data)])
        probs = pairwise_reach_probabilities(samples, eps=2.0)
        assert probs.shape == (len(data), len(data))
        assert np.allclose(probs, probs.T)
        assert np.all((probs >= 0.0) & (probs <= 1.0))
        assert np.allclose(np.diag(probs), 1.0)


class TestFOPTICS:
    def test_extracts_requested_clusters(self, data):
        result = FOPTICS(min_pts=4, n_samples=16, n_clusters=3).fit(data, seed=0)
        assert result.n_clusters == 3
        assert f_measure(result.labels, data.labels) > 0.8

    def test_ordering_covers_all_objects(self, data):
        result = FOPTICS(min_pts=4, n_samples=8).fit(data, seed=0)
        ordering = result.extras["ordering"]
        assert sorted(ordering) == list(range(len(data)))

    def test_fixed_threshold_extraction(self, data):
        result = FOPTICS(min_pts=4, n_samples=8, threshold=1e6).fit(data, seed=0)
        # Threshold above every reachability: a single cluster run.
        assert result.n_clusters == 1

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            FOPTICS(min_pts=0)
        with pytest.raises(InvalidParameterError):
            FOPTICS(threshold=0.0)
        with pytest.raises(InvalidParameterError):
            FOPTICS(n_clusters=0)
        with pytest.raises(InvalidParameterError):
            FOPTICS(n_samples=0)

    def test_cluster_ordering_reachability_semantics(self):
        # Two tight groups far apart: the jump between groups must show a
        # large reachability value.
        pts = np.array([[0.0], [0.1], [0.2], [10.0], [10.1], [10.2]])
        dist = np.abs(pts - pts.T)
        ordering, reach = cluster_ordering(dist, min_pts=2)
        labels = extract_by_threshold(ordering, reach, threshold=1.0)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[-1]

    def test_cluster_ordering_minpts_validation(self):
        with pytest.raises(InvalidParameterError):
            cluster_ordering(np.zeros((3, 3)), min_pts=5)

    def test_expected_distance_matrix_symmetric(self, data):
        samples = np.stack([obj.sample(8, seed=i) for i, obj in enumerate(data)])
        dist = expected_distance_matrix(samples[:20])
        assert np.allclose(dist, dist.T)
        assert np.all(dist >= 0)


class TestUAHC:
    def test_ed_linkage_recovers_blobs(self, data):
        result = UAHC(n_clusters=3, linkage="ed").fit(data, seed=0)
        assert result.n_clusters == 3
        assert f_measure(result.labels, data.labels) > 0.9

    def test_jeffreys_linkage_produces_k_clusters(self, data):
        result = UAHC(n_clusters=3).fit(data, seed=0)
        assert result.n_clusters == 3
        assert result.extras["linkage"] == "jeffreys"

    def test_jeffreys_is_variance_sensitive(self):
        """The information-theoretic linkage merges variance-compatible
        clusters first: two co-located objects with very different
        variances are *farther* (in Jeffreys divergence) than two
        moderately separated objects with matched variances."""
        from repro.objects import UncertainDataset, UncertainObject

        data = UncertainDataset(
            [
                UncertainObject.uniform_box([0.0], [0.1]),   # tiny variance
                UncertainObject.uniform_box([0.0], [5.0]),   # huge variance
                UncertainObject.uniform_box([1.0], [0.1]),   # matched variance
                UncertainObject.uniform_box([30.0], [0.1]),  # far away
            ]
        )
        result = UAHC(n_clusters=3).fit(data)
        labels = result.labels
        # Objects 0 and 2 (matched variances, close) merge first.
        assert labels[0] == labels[2]
        assert labels[0] != labels[1]

    def test_invalid_linkage(self):
        with pytest.raises(InvalidParameterError):
            UAHC(n_clusters=2, linkage="single")

    def test_deterministic(self, data):
        a = UAHC(n_clusters=3).fit(data)
        b = UAHC(n_clusters=3).fit(data)
        assert np.array_equal(a.labels, b.labels)

    def test_merge_history_length(self, data):
        result = UAHC(n_clusters=3).fit(data)
        merges = result.extras["merges"]
        assert len(merges) == len(data) - 3
        # Merge heights trend upward overall (closest pairs merge first);
        # mixture representatives make strict monotonicity non-guaranteed.
        heights = [m.height for m in merges]
        assert heights[0] <= max(heights)

    @pytest.mark.parametrize("linkage", ["jeffreys", "ed"])
    def test_vectorized_proximity_preserves_merge_order_bit_exactly(
        self, linkage
    ):
        """The vectorized initial proximity structure and the
        incremental per-merge Gaussian refresh must reproduce the
        per-row reference implementation *bit for bit* — agglomerative
        merge order is decided by float comparisons, so even one ulp of
        drift reorders dendrograms.  For ``linkage="ed"`` the singleton
        structure is by definition the dataset's pairwise ÊD matrix
        (the distance-plane artifact), so the reference builds it with
        the same kernel — and refreshed rows use the model's own
        variance floor (0 for "ed", matching the unfloored seed); the
        per-row path still covers every merged-row refresh."""
        from repro.datagen import make_blobs_uncertain
        from repro.objects.distance import (
            pairwise_squared_expected_distances,
        )

        data = make_blobs_uncertain(
            n_objects=120, n_clusters=4, n_attributes=5, separation=1.5,
            seed=3,
        )
        model = UAHC(n_clusters=4, linkage=linkage)

        def legacy_agglomerate(dataset, k):
            n = len(dataset)
            mu_sum = dataset.mu_matrix.copy()
            mu2_sum = dataset.mu2_matrix.copy()
            counts = np.ones(n, dtype=np.int64)
            active = np.ones(n, dtype=bool)
            membership = np.arange(n)

            def gaussians():
                inv = 1.0 / counts.astype(np.float64)
                mix_mu = mu_sum * inv[:, None]
                mix_mu2 = mu2_sum * inv[:, None]
                return mix_mu, np.maximum(
                    mix_mu2 - mix_mu**2, model._var_floor
                )

            mu, var = gaussians()
            if linkage == "ed":
                prox = pairwise_squared_expected_distances(dataset)
            else:
                prox = np.empty((n, n))
                for i in range(n):
                    prox[i] = model._row_against(mu, var, i)
            np.fill_diagonal(prox, np.inf)
            merges = []
            n_active = n
            while n_active > k:
                flat = int(np.argmin(prox))
                a, b = divmod(flat, n)
                if a > b:
                    a, b = b, a
                merges.append((a, b, float(prox[a, b])))
                mu_sum[a] += mu_sum[b]
                mu2_sum[a] += mu2_sum[b]
                counts[a] += counts[b]
                active[b] = False
                membership[membership == b] = a
                prox[b, :] = np.inf
                prox[:, b] = np.inf
                mu, var = gaussians()
                row = model._row_against(mu, var, a)
                row[~active] = np.inf
                row[a] = np.inf
                prox[a, :] = row
                prox[:, a] = row
                n_active -= 1
            survivors = {
                old: new for new, old in enumerate(np.flatnonzero(active))
            }
            labels = np.array(
                [survivors[int(c)] for c in membership], dtype=np.int64
            )
            return labels, merges

        labels, merges = model._agglomerate(data, 4)
        ref_labels, ref_merges = legacy_agglomerate(data, 4)
        np.testing.assert_array_equal(labels, ref_labels)
        assert [(m.left, m.right) for m in merges] == [
            (a, b) for a, b, _ in ref_merges
        ]
        assert [m.height for m in merges] == [h for _, _, h in ref_merges]

    def test_ed_heights_exact_on_point_masses(self):
        """The "ed" linkage floors variances at 0, so dendrogram heights
        on deterministic points are *exact*: singleton merges sit at the
        squared distance, and merged-vs-singleton proximities carry no
        floor bias (the Jeffreys floor would add ``2 m * 1e-9`` to every
        refreshed row, silently flipping near-tie merge decisions
        against merged clusters)."""
        from repro.objects import UncertainDataset

        data = UncertainDataset.from_points([[0.0], [1.0], [10.0], [30.0]])
        result = UAHC(n_clusters=1, linkage="ed").fit(data)
        heights = [m.height for m in result.extras["merges"]]
        # ÊD(0, 1) = (0-1)^2 exactly — no variance floor on singletons.
        assert heights[0] == 1.0
        # {0,1} vs 10: mixture var 0.25 + (10 - 0.5)^2, again exact.
        assert heights[1] == 0.25 + 9.5**2

    def test_k_equals_n_is_identity(self, mixed_dataset):
        result = UAHC(n_clusters=len(mixed_dataset)).fit(mixed_dataset)
        assert result.n_clusters == len(mixed_dataset)
        assert result.extras["merges"] == []

    def test_k_one_merges_all(self, mixed_dataset):
        result = UAHC(n_clusters=1).fit(mixed_dataset)
        assert result.n_clusters == 1

    def test_invalid_k(self, mixed_dataset):
        with pytest.raises(InvalidParameterError):
            UAHC(n_clusters=10).fit(mixed_dataset)
