"""Tests for the family-grouped batch sampler (repro.uncertainty.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import make_blobs_uncertain
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.objects import UncertainDataset
from repro.uncertainty import (
    EmpiricalDistribution,
    IndependentProduct,
    MixtureDistribution,
    TriangularDistribution,
    TruncatedExponentialDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
    batch_families,
    build_sampling_plan,
    is_batchable,
    sample_tensor,
)
from repro.uncertainty.batch import _FAMILIES
from repro.uncertainty.point import MultivariatePointMass, PointMassDistribution

from tests.conftest import random_uncertain_objects


def _family_marginals(family, rng, count=7):
    """A diverse batch of marginals of one family."""
    out = []
    for _ in range(count):
        center = float(rng.normal(0.0, 3.0))
        scale = float(rng.uniform(0.2, 2.0))
        if family is UniformDistribution:
            out.append(UniformDistribution.centered(center, scale))
        elif family is TruncatedNormalDistribution:
            out.append(
                TruncatedNormalDistribution.central_mass(center, scale, 0.95)
            )
        elif family is TruncatedExponentialDistribution:
            direction = 1 if rng.random() < 0.5 else -1
            out.append(
                TruncatedExponentialDistribution.with_mean(
                    center, 1.0 / scale, direction=direction, mass=0.95
                )
            )
        elif family is TriangularDistribution:
            out.append(TriangularDistribution.symmetric(center, scale))
        elif family is PointMassDistribution:
            out.append(PointMassDistribution(center))
        else:  # pragma: no cover - keep the parametrization honest
            raise AssertionError(f"unhandled family {family}")
    return out


class TestFamilyEquivalence:
    """Batched quantile transforms must match the scalar ppf exactly."""

    @pytest.mark.parametrize(
        "family", list(batch_families()), ids=lambda f: f.__name__
    )
    def test_batch_matches_per_marginal_ppf(self, family, rng):
        marginals = _family_marginals(family, rng)
        q = rng.random((len(marginals), 33))
        stack, apply = _FAMILIES[family]
        batched = apply(q, *stack(marginals))
        for i, marginal in enumerate(marginals):
            np.testing.assert_array_equal(
                batched[i],
                marginal.ppf(q[i]),
                err_msg=f"{family.__name__} marginal {i} diverged",
            )

    @pytest.mark.parametrize(
        "family", list(batch_families()), ids=lambda f: f.__name__
    )
    def test_degenerate_quantiles(self, family, rng):
        """Endpoints q=0 and q=1 go through the same clips as the ppf."""
        marginals = _family_marginals(family, rng, count=3)
        q = np.tile(np.array([0.0, 0.5, 1.0]), (len(marginals), 1))
        stack, apply = _FAMILIES[family]
        batched = apply(q, *stack(marginals))
        for i, marginal in enumerate(marginals):
            np.testing.assert_array_equal(batched[i], marginal.ppf(q[i]))

    def test_triangular_degenerate_sides(self):
        """mode == lower / mode == upper collapse like the scalar ppf."""
        marginals = [
            TriangularDistribution(0.0, 0.0, 2.0),
            TriangularDistribution(-1.0, 1.0, 1.0),
        ]
        q = np.tile(np.linspace(0.0, 1.0, 9), (2, 1))
        stack, apply = _FAMILIES[TriangularDistribution]
        batched = apply(q, *stack(marginals))
        for i, marginal in enumerate(marginals):
            np.testing.assert_array_equal(batched[i], marginal.ppf(q[i]))


class TestSampleTensor:
    def test_deterministic_under_fixed_seed(self, mixed_dataset):
        first = mixed_dataset.sample_tensor(12, seed=99)
        second = mixed_dataset.sample_tensor(12, seed=99)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self, blob_dataset):
        a = blob_dataset.sample_tensor(8, seed=0)
        b = blob_dataset.sample_tensor(8, seed=1)
        assert not np.array_equal(a, b)

    def test_shape(self, mixed_dataset):
        tensor = mixed_dataset.sample_tensor(5, seed=0)
        assert tensor.shape == (len(mixed_dataset), 5, mixed_dataset.dim)

    def test_samples_land_in_regions(self, mixed_dataset):
        tensor = mixed_dataset.sample_tensor(64, seed=3)
        for idx, obj in enumerate(mixed_dataset):
            lower = obj.region.lower - 1e-12
            upper = obj.region.upper + 1e-12
            assert np.all(tensor[idx] >= lower)
            assert np.all(tensor[idx] <= upper)

    def test_sample_means_approach_moments(self):
        data = make_blobs_uncertain(n_objects=40, n_clusters=2, seed=5)
        tensor = data.sample_tensor(4096, seed=7)
        np.testing.assert_allclose(
            tensor.mean(axis=1), data.mu_matrix, atol=0.1
        )

    def test_point_mass_objects_are_constant(self):
        data = UncertainDataset.from_points(np.array([[1.0, -2.0], [0.5, 3.0]]))
        tensor = data.sample_tensor(6, seed=0)
        np.testing.assert_array_equal(
            tensor, np.repeat(data.mu_matrix[:, None, :], 6, axis=1)
        )

    def test_empirical_and_mixture_grouped(self, rng):
        """Empirical/mixture objects are grouped, not per-object fallback."""
        empirical = EmpiricalDistribution(rng.normal(0.0, 1.0, size=(50, 2)))
        mixture = MixtureDistribution(
            [
                MultivariatePointMass([0.0, 0.0]),
                MultivariatePointMass([1.0, 1.0]),
            ]
        )
        uniform = IndependentProduct(
            [UniformDistribution(0.0, 1.0), UniformDistribution(2.0, 3.0)]
        )
        plan = build_sampling_plan([empirical, mixture, uniform])
        assert plan.n_fallback == 0
        assert plan.n_empirical == 1
        assert plan.n_mixture == 1
        assert plan.n_batched_cells == 2
        tensor = plan.sample(16, seed=4)
        assert tensor.shape == (3, 16, 2)
        assert np.all(tensor[2, :, 0] <= 1.0)
        assert np.all(tensor[2, :, 1] >= 2.0)

    def test_custom_distribution_falls_back(self, rng):
        """Unregistered multivariates still sample via their own method."""
        from repro.uncertainty.base import MultivariateDistribution
        from repro.uncertainty.region import BoxRegion
        from repro.utils.rng import ensure_rng

        class Spherical(MultivariateDistribution):
            """A toy multivariate with no registered batch transform."""

            @property
            def region(self):
                return BoxRegion([-1.0, -1.0], [1.0, 1.0])

            @property
            def mean_vector(self):
                return np.zeros(2)

            @property
            def second_moment_vector(self):
                return np.full(2, 0.25)

            def pdf(self, points):
                return np.ones(self._points_matrix(points).shape[0])

            def sample(self, size, seed=None):
                gen = ensure_rng(seed)
                return gen.uniform(-1.0, 1.0, size=(size, 2))

        custom = Spherical()
        uniform = IndependentProduct(
            [UniformDistribution(0.0, 1.0), UniformDistribution(2.0, 3.0)]
        )
        assert not is_batchable(custom)
        plan = build_sampling_plan([custom, uniform])
        assert plan.n_fallback == 1
        tensor = plan.sample(12, seed=3)
        assert tensor.shape == (2, 12, 2)
        assert np.all(np.abs(tensor[0]) <= 1.0)

    def test_mixed_family_objects_batch(self, mixed_dataset):
        """Objects mixing families per dimension still use the fast path."""
        plan = build_sampling_plan(
            [obj.distribution for obj in mixed_dataset]
        )
        # Every object in the fixture is a product of registered
        # families or a point mass: nothing falls back.
        assert plan.n_fallback == 0

    def test_equivalence_with_per_object_distribution(self, rng):
        """Batch tensor rows are draws from each object's distribution.

        Statistical check per object: compare batched sample moments
        with the object's analytic moments.
        """
        objects = random_uncertain_objects(rng, n=12, dim=3)
        tensor = sample_tensor(
            [o.distribution for o in objects], 2048, seed=11
        )
        for i, obj in enumerate(objects):
            np.testing.assert_allclose(
                tensor[i].mean(axis=0), obj.mu, atol=0.15
            )
            np.testing.assert_allclose(
                tensor[i].var(axis=0), obj.sigma2, atol=0.3
            )

    def test_validation(self, blob_dataset):
        with pytest.raises(InvalidParameterError):
            sample_tensor([], 4)
        with pytest.raises(InvalidParameterError):
            blob_dataset.sample_tensor(0)
        with pytest.raises(DimensionMismatchError):
            sample_tensor(
                [
                    MultivariatePointMass([0.0, 1.0]),
                    MultivariatePointMass([0.0, 1.0, 2.0]),
                ],
                4,
            )

    def test_is_batchable(self, rng):
        assert is_batchable(MultivariatePointMass([1.0]))
        assert is_batchable(
            IndependentProduct([UniformDistribution(0.0, 1.0)])
        )
        assert is_batchable(EmpiricalDistribution(rng.normal(size=(10, 2))))
        assert is_batchable(
            MixtureDistribution(
                [MultivariatePointMass([0.0]), MultivariatePointMass([1.0])]
            )
        )

    def test_generator_seed_shares_stream(self, blob_dataset):
        """Passing a Generator consumes it (two calls differ)."""
        gen = np.random.default_rng(0)
        a = blob_dataset.sample_tensor(4, seed=gen)
        b = blob_dataset.sample_tensor(4, seed=gen)
        assert not np.array_equal(a, b)


def _ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (sup CDF distance)."""
    grid = np.sort(np.concatenate([a, b]))
    cdf_a = np.searchsorted(np.sort(a), grid, side="right") / a.size
    cdf_b = np.searchsorted(np.sort(b), grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


class TestEmpiricalBatchEquivalence:
    """Grouped empirical sampling ≡ the per-object path, exactly."""

    def _empiricals(self, rng, count=5):
        out = []
        for i in range(count):
            points = rng.normal(i, 1.0 + 0.2 * i, size=(10 + 7 * i, 2))
            weights = rng.random(points.shape[0]) if i % 2 else None
            out.append(EmpiricalDistribution(points, weights=weights))
        return out

    def test_single_object_stream_identical(self, rng):
        for dist in self._empiricals(rng):
            batched = sample_tensor([dist], 64, seed=17)[0]
            sequential = dist.sample(64, seed=17)
            np.testing.assert_array_equal(batched, sequential)

    def test_homogeneous_group_matches_per_object_loop(self, rng):
        dists = self._empiricals(rng)
        batched = sample_tensor(dists, 32, seed=3)
        gen = np.random.default_rng(3)
        looped = np.stack([d.sample(32, gen) for d in dists])
        np.testing.assert_array_equal(batched, looped)

    def test_moments_match_analytic(self, rng):
        dists = self._empiricals(rng)
        tensor = sample_tensor(dists, 8192, seed=5)
        for i, dist in enumerate(dists):
            np.testing.assert_allclose(
                tensor[i].mean(axis=0), dist.mean_vector, atol=0.15
            )
            np.testing.assert_allclose(
                (tensor[i] ** 2).mean(axis=0),
                dist.second_moment_vector,
                atol=0.5,
            )

    def test_ks_against_per_object_path(self, rng):
        """Distributional check: batched draws vs the sequential path."""
        dists = self._empiricals(rng)
        tensor = sample_tensor(dists, 4096, seed=8)
        for i, dist in enumerate(dists):
            sequential = dist.sample(4096, seed=1234 + i)
            for dim in range(2):
                assert _ks_statistic(tensor[i, :, dim], sequential[:, dim]) < 0.05

    def test_zero_weight_points_never_drawn(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        dist = EmpiricalDistribution(points, weights=[0.0, 1.0, 0.0])
        tensor = sample_tensor([dist], 256, seed=0)
        np.testing.assert_array_equal(
            tensor[0], np.ones((256, 2))
        )


class TestMixtureBatchEquivalence:
    """Grouped mixture sampling: exact single-object streams, correct
    distribution for heterogeneous groups."""

    def _mixture(self, rng, shift=0.0):
        return MixtureDistribution(
            [
                IndependentProduct(
                    [
                        UniformDistribution(shift, shift + 1.0),
                        TruncatedNormalDistribution(shift, 0.5, shift - 2, shift + 2),
                    ]
                ),
                MultivariatePointMass([shift + 3.0, shift + 3.0]),
                EmpiricalDistribution(rng.normal(shift, 1.0, size=(9, 2))),
            ],
            weights=[0.5, 0.2, 0.3],
        )

    def test_single_object_stream_identical(self, rng):
        """Regression (stream-alignment fix): Mixture.sample threads one
        Generator through selection and component realization, so the
        batched path reproduces it draw for draw."""
        mix = self._mixture(rng)
        for seed in range(5):
            batched = sample_tensor([mix], 48, seed=seed)[0]
            sequential = mix.sample(48, seed=seed)
            np.testing.assert_array_equal(batched, sequential)

    def test_sequential_draws_deterministic(self, rng):
        mix = self._mixture(rng)
        np.testing.assert_array_equal(
            mix.sample(32, seed=7), mix.sample(32, seed=7)
        )

    def test_group_of_mixtures_moments(self, rng):
        mixtures = [self._mixture(rng, shift=float(s)) for s in range(3)]
        tensor = sample_tensor(mixtures, 8192, seed=2)
        for i, mix in enumerate(mixtures):
            np.testing.assert_allclose(
                tensor[i].mean(axis=0), mix.mean_vector, atol=0.15
            )
            np.testing.assert_allclose(
                (tensor[i] ** 2).mean(axis=0),
                mix.second_moment_vector,
                rtol=0.1,
                atol=0.3,
            )

    def test_ks_against_per_object_path(self, rng):
        mixtures = [self._mixture(rng, shift=float(s)) for s in range(3)]
        tensor = sample_tensor(mixtures, 4096, seed=9)
        for i, mix in enumerate(mixtures):
            sequential = mix.sample(4096, seed=4321 + i)
            for dim in range(2):
                assert _ks_statistic(tensor[i, :, dim], sequential[:, dim]) < 0.05

    def test_nested_mixture_batches(self, rng):
        inner = MixtureDistribution(
            [MultivariatePointMass([0.0, 0.0]), MultivariatePointMass([1.0, 1.0])]
        )
        outer = MixtureDistribution(
            [inner, MultivariatePointMass([5.0, 5.0])], weights=[0.5, 0.5]
        )
        assert is_batchable(outer)
        plan = build_sampling_plan([outer])
        assert plan.n_mixture == 1
        tensor = plan.sample(2048, seed=0)
        np.testing.assert_allclose(
            tensor[0].mean(axis=0), outer.mean_vector, atol=0.1
        )

    def test_zero_weight_component_never_drawn(self):
        mix = MixtureDistribution(
            [MultivariatePointMass([0.0]), MultivariatePointMass([9.0])],
            weights=[0.0, 1.0],
        )
        tensor = sample_tensor([mix], 512, seed=0)
        np.testing.assert_array_equal(tensor[0], np.full((512, 1), 9.0))

    def test_mixture_with_unbatchable_component_falls_back(self, rng):
        from repro.uncertainty.base import MultivariateDistribution
        from repro.uncertainty.region import BoxRegion
        from repro.utils.rng import ensure_rng

        class Custom(MultivariateDistribution):
            @property
            def region(self):
                return BoxRegion([0.0], [1.0])

            @property
            def mean_vector(self):
                return np.array([0.5])

            @property
            def second_moment_vector(self):
                return np.array([1.0 / 3.0])

            def pdf(self, points):
                return np.ones(self._points_matrix(points).shape[0])

            def sample(self, size, seed=None):
                return ensure_rng(seed).random((size, 1))

        mix = MixtureDistribution(
            [Custom(), MultivariatePointMass([2.0])], weights=[0.5, 0.5]
        )
        assert not is_batchable(mix)
        plan = build_sampling_plan([mix])
        assert plan.n_fallback == 1
        tensor = plan.sample(64, seed=1)
        assert tensor.shape == (1, 64, 1)


class TestRowCdfTableExactness:
    """The grouped lookup must equal per-row searchsorted exactly, even
    at ulp-scale ties the row-shift trick would otherwise round over."""

    def test_matches_per_row_searchsorted_randomized(self, rng):
        from repro.uncertainty.batch import _RowCdfTable

        cdfs = []
        for _ in range(6):
            w = rng.random(rng.integers(2, 12))
            cdf = w.cumsum()
            cdf /= cdf[-1]
            cdfs.append(cdf)
        table = _RowCdfTable(cdfs)
        q = rng.random((6, 200))
        flat = table.lookup(q)
        for r, cdf in enumerate(cdfs):
            expected = np.minimum(
                np.searchsorted(cdf, q[r], side="right"), cdf.size - 1
            )
            np.testing.assert_array_equal(flat[r] - table.offsets[r], expected)

    def test_ulp_tie_refined(self):
        """Adversarial: a uniform one ulp below a CDF boundary in a
        high-index row — the shifted comparison rounds them equal, the
        refinement must restore the exact per-row answer."""
        from repro.uncertainty.batch import _RowCdfTable

        cdf = np.array([0.5, 1.0])
        rows = 9
        table = _RowCdfTable([cdf] * rows)
        below = np.nextafter(0.5, 0.0)  # < 0.5, collapses under + r
        q = np.full((rows, 2), below)
        q[:, 1] = 0.5  # exactly the boundary: counted by side="right"
        flat = table.lookup(q)
        for r in range(rows):
            assert flat[r, 0] - table.offsets[r] == 0, f"row {r} rounded over"
            assert flat[r, 1] - table.offsets[r] == 1

    def test_duplicate_boundaries(self):
        """Zero-weight runs create duplicate CDF entries; the count must
        include the whole run, exactly as per-row searchsorted does."""
        from repro.uncertainty.batch import _RowCdfTable

        cdf = np.array([0.25, 0.25, 0.25, 1.0])
        table = _RowCdfTable([cdf] * 4)
        q = np.full((4, 1), 0.25)
        flat = table.lookup(q)
        for r in range(4):
            assert flat[r, 0] - table.offsets[r] == 3


class TestAllFamiliesCovered:
    """The whole-repo coverage claim: a dataset mixing every
    distribution family batches with zero per-object fallbacks."""

    def test_zero_fallbacks_across_all_seven_families(self, rng):
        seven_families = [
            IndependentProduct(
                [UniformDistribution(0.0, 1.0), UniformDistribution(1.0, 2.0)]
            ),
            IndependentProduct(
                [
                    TruncatedNormalDistribution(0.0, 1.0, -2.0, 2.0),
                    TriangularDistribution(0.0, 0.5, 1.0),
                ]
            ),
            IndependentProduct(
                [
                    TruncatedExponentialDistribution(0.5, 2.0, cutoff=3.0),
                    PointMassDistribution(1.0),
                ]
            ),
            MultivariatePointMass([0.0, 0.0]),
            EmpiricalDistribution(rng.normal(0.0, 1.0, size=(20, 2))),
            MixtureDistribution(
                [
                    IndependentProduct(
                        [UniformDistribution(0.0, 1.0), UniformDistribution(0.0, 1.0)]
                    ),
                    MultivariatePointMass([4.0, 4.0]),
                ],
                weights=[0.6, 0.4],
            ),
        ]
        plan = build_sampling_plan(seven_families)
        assert plan.n_fallback == 0
        assert plan.n_empirical == 1
        assert plan.n_mixture == 1
        tensor = plan.sample(128, seed=6)
        assert tensor.shape == (6, 128, 2)
        assert np.isfinite(tensor).all()
        # Re-draw determinism over the heterogeneous plan.
        np.testing.assert_array_equal(tensor, plan.sample(128, seed=6))


class TestMonteCarloDrawMany:
    def test_matches_sample_tensor(self, mixed_dataset):
        from repro.uncertainty import MonteCarloSampler

        dists = [obj.distribution for obj in mixed_dataset]
        batched = MonteCarloSampler(seed=21).draw_many(dists, 10)
        direct = sample_tensor(dists, 10, seed=21)
        np.testing.assert_array_equal(batched, direct)

    def test_size_validation(self, mixed_dataset):
        from repro.uncertainty import MonteCarloSampler

        with pytest.raises(InvalidParameterError):
            MonteCarloSampler(seed=0).draw_many(
                [mixed_dataset[0].distribution], 0
            )
