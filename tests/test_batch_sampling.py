"""Tests for the family-grouped batch sampler (repro.uncertainty.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import make_blobs_uncertain
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.objects import UncertainDataset
from repro.uncertainty import (
    EmpiricalDistribution,
    IndependentProduct,
    MixtureDistribution,
    TriangularDistribution,
    TruncatedExponentialDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
    batch_families,
    build_sampling_plan,
    is_batchable,
    sample_tensor,
)
from repro.uncertainty.batch import _FAMILIES
from repro.uncertainty.point import MultivariatePointMass, PointMassDistribution

from tests.conftest import random_uncertain_objects


def _family_marginals(family, rng, count=7):
    """A diverse batch of marginals of one family."""
    out = []
    for _ in range(count):
        center = float(rng.normal(0.0, 3.0))
        scale = float(rng.uniform(0.2, 2.0))
        if family is UniformDistribution:
            out.append(UniformDistribution.centered(center, scale))
        elif family is TruncatedNormalDistribution:
            out.append(
                TruncatedNormalDistribution.central_mass(center, scale, 0.95)
            )
        elif family is TruncatedExponentialDistribution:
            direction = 1 if rng.random() < 0.5 else -1
            out.append(
                TruncatedExponentialDistribution.with_mean(
                    center, 1.0 / scale, direction=direction, mass=0.95
                )
            )
        elif family is TriangularDistribution:
            out.append(TriangularDistribution.symmetric(center, scale))
        elif family is PointMassDistribution:
            out.append(PointMassDistribution(center))
        else:  # pragma: no cover - keep the parametrization honest
            raise AssertionError(f"unhandled family {family}")
    return out


class TestFamilyEquivalence:
    """Batched quantile transforms must match the scalar ppf exactly."""

    @pytest.mark.parametrize(
        "family", list(batch_families()), ids=lambda f: f.__name__
    )
    def test_batch_matches_per_marginal_ppf(self, family, rng):
        marginals = _family_marginals(family, rng)
        q = rng.random((len(marginals), 33))
        stack, apply = _FAMILIES[family]
        batched = apply(q, *stack(marginals))
        for i, marginal in enumerate(marginals):
            np.testing.assert_array_equal(
                batched[i],
                marginal.ppf(q[i]),
                err_msg=f"{family.__name__} marginal {i} diverged",
            )

    @pytest.mark.parametrize(
        "family", list(batch_families()), ids=lambda f: f.__name__
    )
    def test_degenerate_quantiles(self, family, rng):
        """Endpoints q=0 and q=1 go through the same clips as the ppf."""
        marginals = _family_marginals(family, rng, count=3)
        q = np.tile(np.array([0.0, 0.5, 1.0]), (len(marginals), 1))
        stack, apply = _FAMILIES[family]
        batched = apply(q, *stack(marginals))
        for i, marginal in enumerate(marginals):
            np.testing.assert_array_equal(batched[i], marginal.ppf(q[i]))

    def test_triangular_degenerate_sides(self):
        """mode == lower / mode == upper collapse like the scalar ppf."""
        marginals = [
            TriangularDistribution(0.0, 0.0, 2.0),
            TriangularDistribution(-1.0, 1.0, 1.0),
        ]
        q = np.tile(np.linspace(0.0, 1.0, 9), (2, 1))
        stack, apply = _FAMILIES[TriangularDistribution]
        batched = apply(q, *stack(marginals))
        for i, marginal in enumerate(marginals):
            np.testing.assert_array_equal(batched[i], marginal.ppf(q[i]))


class TestSampleTensor:
    def test_deterministic_under_fixed_seed(self, mixed_dataset):
        first = mixed_dataset.sample_tensor(12, seed=99)
        second = mixed_dataset.sample_tensor(12, seed=99)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self, blob_dataset):
        a = blob_dataset.sample_tensor(8, seed=0)
        b = blob_dataset.sample_tensor(8, seed=1)
        assert not np.array_equal(a, b)

    def test_shape(self, mixed_dataset):
        tensor = mixed_dataset.sample_tensor(5, seed=0)
        assert tensor.shape == (len(mixed_dataset), 5, mixed_dataset.dim)

    def test_samples_land_in_regions(self, mixed_dataset):
        tensor = mixed_dataset.sample_tensor(64, seed=3)
        for idx, obj in enumerate(mixed_dataset):
            lower = obj.region.lower - 1e-12
            upper = obj.region.upper + 1e-12
            assert np.all(tensor[idx] >= lower)
            assert np.all(tensor[idx] <= upper)

    def test_sample_means_approach_moments(self):
        data = make_blobs_uncertain(n_objects=40, n_clusters=2, seed=5)
        tensor = data.sample_tensor(4096, seed=7)
        np.testing.assert_allclose(
            tensor.mean(axis=1), data.mu_matrix, atol=0.1
        )

    def test_point_mass_objects_are_constant(self):
        data = UncertainDataset.from_points(np.array([[1.0, -2.0], [0.5, 3.0]]))
        tensor = data.sample_tensor(6, seed=0)
        np.testing.assert_array_equal(
            tensor, np.repeat(data.mu_matrix[:, None, :], 6, axis=1)
        )

    def test_fallback_families_sampled(self, rng):
        """Empirical/mixture objects take the per-object fallback path."""
        empirical = EmpiricalDistribution(rng.normal(0.0, 1.0, size=(50, 2)))
        mixture = MixtureDistribution(
            [
                MultivariatePointMass([0.0, 0.0]),
                MultivariatePointMass([1.0, 1.0]),
            ]
        )
        uniform = IndependentProduct(
            [UniformDistribution(0.0, 1.0), UniformDistribution(2.0, 3.0)]
        )
        plan = build_sampling_plan([empirical, mixture, uniform])
        assert plan.n_fallback == 2
        assert plan.n_batched_cells == 2
        tensor = plan.sample(16, seed=4)
        assert tensor.shape == (3, 16, 2)
        assert np.all(tensor[2, :, 0] <= 1.0)
        assert np.all(tensor[2, :, 1] >= 2.0)

    def test_mixed_family_objects_batch(self, mixed_dataset):
        """Objects mixing families per dimension still use the fast path."""
        plan = build_sampling_plan(
            [obj.distribution for obj in mixed_dataset]
        )
        # Every object in the fixture is a product of registered
        # families or a point mass: nothing falls back.
        assert plan.n_fallback == 0

    def test_equivalence_with_per_object_distribution(self, rng):
        """Batch tensor rows are draws from each object's distribution.

        Statistical check per object: compare batched sample moments
        with the object's analytic moments.
        """
        objects = random_uncertain_objects(rng, n=12, dim=3)
        tensor = sample_tensor(
            [o.distribution for o in objects], 2048, seed=11
        )
        for i, obj in enumerate(objects):
            np.testing.assert_allclose(
                tensor[i].mean(axis=0), obj.mu, atol=0.15
            )
            np.testing.assert_allclose(
                tensor[i].var(axis=0), obj.sigma2, atol=0.3
            )

    def test_validation(self, blob_dataset):
        with pytest.raises(InvalidParameterError):
            sample_tensor([], 4)
        with pytest.raises(InvalidParameterError):
            blob_dataset.sample_tensor(0)
        with pytest.raises(DimensionMismatchError):
            sample_tensor(
                [
                    MultivariatePointMass([0.0, 1.0]),
                    MultivariatePointMass([0.0, 1.0, 2.0]),
                ],
                4,
            )

    def test_is_batchable(self, rng):
        assert is_batchable(MultivariatePointMass([1.0]))
        assert is_batchable(
            IndependentProduct([UniformDistribution(0.0, 1.0)])
        )
        assert not is_batchable(
            EmpiricalDistribution(rng.normal(size=(10, 2)))
        )

    def test_generator_seed_shares_stream(self, blob_dataset):
        """Passing a Generator consumes it (two calls differ)."""
        gen = np.random.default_rng(0)
        a = blob_dataset.sample_tensor(4, seed=gen)
        b = blob_dataset.sample_tensor(4, seed=gen)
        assert not np.array_equal(a, b)


class TestMonteCarloDrawMany:
    def test_matches_sample_tensor(self, mixed_dataset):
        from repro.uncertainty import MonteCarloSampler

        dists = [obj.distribution for obj in mixed_dataset]
        batched = MonteCarloSampler(seed=21).draw_many(dists, 10)
        direct = sample_tensor(dists, 10, seed=21)
        np.testing.assert_array_equal(batched, direct)

    def test_size_validation(self, mixed_dataset):
        from repro.uncertainty import MonteCarloSampler

        with pytest.raises(InvalidParameterError):
            MonteCarloSampler(seed=0).draw_many(
                [mixed_dataset[0].distribution], 0
            )
