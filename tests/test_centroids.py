"""Tests for the three centroid notions (Eq. (7), Eq. (10)/Lemma 2, Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import random_uncertain_objects

from repro.centroids import MixtureModelCentroid, UCentroid, ukmeans_centroid
from repro.centroids.deterministic import ukmeans_centroids_from_assignment
from repro.exceptions import EmptyClusterError, InvalidParameterError
from repro.objects import UncertainObject


class TestUKMeansCentroid:
    def test_eq7_average_of_means(self, mixed_cluster):
        center = ukmeans_centroid(mixed_cluster)
        expected = np.mean([obj.mu for obj in mixed_cluster], axis=0)
        assert np.allclose(center, expected)

    def test_empty_rejected(self):
        with pytest.raises(EmptyClusterError):
            ukmeans_centroid([])

    def test_from_assignment(self, blob_dataset):
        assignment = np.array(blob_dataset.labels)
        centers = ukmeans_centroids_from_assignment(blob_dataset, assignment, 3)
        for c in range(3):
            members = [o for o, lab in zip(blob_dataset, assignment) if lab == c]
            assert np.allclose(centers[c], ukmeans_centroid(members))

    def test_from_assignment_empty_cluster_nan(self, blob_dataset):
        assignment = np.zeros(len(blob_dataset), dtype=np.int64)
        centers = ukmeans_centroids_from_assignment(blob_dataset, assignment, 2)
        assert np.all(np.isnan(centers[1]))


class TestMixtureModelCentroid:
    def test_lemma2_moments(self, mixed_cluster):
        centroid = MixtureModelCentroid(mixed_cluster)
        n = len(mixed_cluster)
        assert np.allclose(
            centroid.mu, sum(o.mu for o in mixed_cluster) / n
        )
        assert np.allclose(
            centroid.mu2, sum(o.mu2 for o in mixed_cluster) / n
        )

    def test_moments_match_materialized_mixture(self, mixed_cluster):
        centroid = MixtureModelCentroid(mixed_cluster)
        mixture = centroid.as_distribution()
        assert np.allclose(centroid.mu, mixture.mean_vector)
        assert np.allclose(centroid.mu2, mixture.second_moment_vector)

    def test_variance_nonnegative(self, rng):
        for _ in range(5):
            cluster = random_uncertain_objects(rng, 6, 2)
            assert MixtureModelCentroid(cluster).total_variance >= 0.0

    def test_empty_rejected(self):
        with pytest.raises(EmptyClusterError):
            MixtureModelCentroid([])

    def test_as_uncertain_object(self, mixed_cluster):
        obj = MixtureModelCentroid(mixed_cluster).as_uncertain_object()
        assert isinstance(obj, UncertainObject)
        assert obj.dim == 2


class TestUCentroid:
    def test_theorem1_region(self, mixed_cluster):
        """Centroid region bounds = averages of member region bounds."""
        centroid = UCentroid(mixed_cluster)
        lowers = np.mean([o.region.lower for o in mixed_cluster], axis=0)
        uppers = np.mean([o.region.upper for o in mixed_cluster], axis=0)
        assert np.allclose(centroid.region.lower, lowers)
        assert np.allclose(centroid.region.upper, uppers)

    def test_lemma5_mean_equals_ukmeans_centroid(self, mixed_cluster):
        centroid = UCentroid(mixed_cluster)
        assert np.allclose(centroid.mu, ukmeans_centroid(mixed_cluster))

    def test_lemma5_second_moment(self, mixed_cluster):
        """mu2(C̄) per Lemma 5's explicit double-sum formula."""
        centroid = UCentroid(mixed_cluster)
        n = len(mixed_cluster)
        mu2_sum = sum(o.mu2 for o in mixed_cluster)
        cross = np.zeros(2)
        for i in range(n - 1):
            for j in range(i + 1, n):
                cross += 2.0 * mixed_cluster[i].mu * mixed_cluster[j].mu
        assert np.allclose(centroid.mu2, (mu2_sum + cross) / n**2)

    def test_theorem2_variance(self, mixed_cluster):
        """sigma^2(C̄) = |C|^-2 sum_i sigma^2(o_i) (Theorem 2)."""
        centroid = UCentroid(mixed_cluster)
        n = len(mixed_cluster)
        total = sum(o.total_variance for o in mixed_cluster)
        assert centroid.total_variance == pytest.approx(total / n**2)

    @pytest.mark.parametrize("n_members", [2, 5, 37, 150])
    def test_moments_exactly_match_member_loop(self, rng, n_members):
        """The stacked-array reductions of ``__init__`` must reproduce
        the per-member accumulation loop they replaced *bit for bit*
        (outer-axis ufunc reduction accumulates row by row), on
        mixed-family clusters of any size."""
        members = random_uncertain_objects(rng, n_members, dim=3)
        centroid = UCentroid(members)
        mu_sum = np.zeros(3)
        mu2_sum = np.zeros(3)
        mu_sq_sum = np.zeros(3)
        for obj in members:
            mu_sum += obj.mu
            mu2_sum += obj.mu2
            mu_sq_sum += obj.mu**2
        cross = mu_sum**2 - mu_sq_sum
        np.testing.assert_array_equal(centroid.mu, mu_sum / n_members)
        np.testing.assert_array_equal(
            centroid.mu2, (mu2_sum + cross) / (n_members * n_members)
        )

    def test_sampling_matches_analytic_moments(self, mixed_cluster):
        centroid = UCentroid(mixed_cluster)
        samples = centroid.sample(60000, seed=0)
        assert np.allclose(samples.mean(axis=0), centroid.mu, atol=0.02)
        sample_mu2 = (samples**2).mean(axis=0)
        assert np.allclose(sample_mu2, centroid.mu2, atol=0.05)

    def test_samples_inside_region(self, mixed_cluster):
        centroid = UCentroid(mixed_cluster)
        for row in centroid.sample(500, seed=1):
            assert centroid.region.contains(row, atol=1e-9)

    def test_pdf_estimate_positive_at_mean(self, mixed_cluster):
        centroid = UCentroid(mixed_cluster)
        density = centroid.pdf_estimate(centroid.mu, n_samples=4000, seed=0)
        assert density[0] > 0.0

    def test_pdf_estimate_dim_check(self, mixed_cluster):
        centroid = UCentroid(mixed_cluster)
        with pytest.raises(InvalidParameterError):
            centroid.pdf_estimate(np.zeros(3))

    def test_singleton_cluster_is_the_object(self):
        obj = UncertainObject.uniform_box([1.0, 2.0], [0.5, 0.5])
        centroid = UCentroid([obj])
        assert np.allclose(centroid.mu, obj.mu)
        assert np.allclose(centroid.mu2, obj.mu2)
        assert centroid.region == obj.region

    def test_empty_rejected(self):
        with pytest.raises(EmptyClusterError):
            UCentroid([])

    def test_invalid_sample_size(self, mixed_cluster):
        with pytest.raises(InvalidParameterError):
            UCentroid(mixed_cluster).sample(0)

    def test_as_uncertain_object(self, mixed_cluster):
        centroid = UCentroid(mixed_cluster)
        obj = centroid.as_uncertain_object(n_samples=4000, seed=0)
        assert np.allclose(obj.mu, centroid.mu, atol=0.05)

    def test_variance_shrinks_with_cluster_size(self, rng):
        """Adding objects shrinks centroid variance ~ 1/n^2 per Theorem 2."""
        objects = random_uncertain_objects(rng, 16, 2)
        small = UCentroid(objects[:4])
        large = UCentroid(objects)
        sum_small = sum(o.total_variance for o in objects[:4])
        sum_large = sum(o.total_variance for o in objects)
        assert small.total_variance == pytest.approx(sum_small / 16)
        assert large.total_variance == pytest.approx(sum_large / 256)
