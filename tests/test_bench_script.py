"""Smoke tests for the CI benchmark runner (benchmarks/run_bench.py)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bench_module():
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import run_bench
    finally:
        sys.path.pop(0)
    return run_bench


def _run_bench(*args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "run_bench.py"),
            *args,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_run_bench_quick_emits_schema_json(tmp_path):
    output = tmp_path / "BENCH_engine.json"
    # Seed the path with an incompatible snapshot: --force must both
    # bypass the overwrite guard and emit a fresh valid payload.
    output.write_text(json.dumps({"schema": 0, "benchmarks": []}))
    proc = _run_bench("--quick", "--force", "--output", str(output))
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(output.read_text())
    assert payload["schema"] == _bench_module().SCHEMA_VERSION
    assert payload["quick"] is True
    assert payload["machine"]["cpu_count"] == os.cpu_count()
    names = {entry["name"] for entry in payload["benchmarks"]}
    # The roster must cover sampling, restarts, density, every backend,
    # and the hierarchical kernel.
    by_name = {entry["name"]: entry for entry in payload["benchmarks"]}
    assert by_name["sample_tensor_batched"]["speedup"] > 0
    assert by_name["ukmedoids_plane_shared"]["speedup"] > 0
    assert {
        "sample_tensor_batched",
        "multi_restart_shared_cache",
        "fdbscan_ported_fit",
        "backend_serial_ukmeans_restarts",
        "backend_threads_ukmeans_restarts",
        "backend_processes_ukmeans_restarts",
        "ukmedoids_plane_shared",
        "ukmedoids_plane_recompute",
        "uahc_jeffreys_fit",
        "store_aggregate_sqlite",
        "store_aggregate_json",
    } <= names
    assert by_name["store_aggregate_sqlite"]["speedup"] > 0
    assert all(entry["seconds"] > 0 for entry in payload["benchmarks"])


class TestOverwriteGuard:
    """Satellite: run_bench refuses to clobber a snapshot whose schema
    version or measurement roster differs, unless --force is passed.
    The guard runs before any benchmark executes, so these are fast."""

    def test_refuses_schema_mismatch(self, tmp_path):
        output = tmp_path / "BENCH_engine.json"
        original = json.dumps({"schema": 99, "benchmarks": []})
        output.write_text(original)
        proc = _run_bench("--quick", "--output", str(output), timeout=60)
        assert proc.returncode == 2
        assert "refusing to overwrite" in proc.stderr
        assert "schema version" in proc.stderr
        assert output.read_text() == original  # untouched

    def test_refuses_roster_mismatch(self, tmp_path):
        output = tmp_path / "BENCH_engine.json"
        original = json.dumps(
            {
                "schema": _bench_module().SCHEMA_VERSION,
                "benchmarks": [{"name": "retired_measurement", "seconds": 1}],
            }
        )
        output.write_text(original)
        proc = _run_bench("--quick", "--output", str(output), timeout=60)
        assert proc.returncode == 2
        assert "roster differs" in proc.stderr
        assert output.read_text() == original

    def test_refuses_unreadable_snapshot(self, tmp_path):
        output = tmp_path / "BENCH_engine.json"
        output.write_text("{truncated")
        proc = _run_bench("--quick", "--output", str(output), timeout=60)
        assert proc.returncode == 2
        assert "not readable" in proc.stderr

    def test_committed_snapshot_is_like_for_like(self):
        """The committed BENCH_engine.json must always be overwritable
        by the current script — i.e. schema and roster in sync."""
        run_bench = _bench_module()
        assert (
            run_bench.snapshot_conflict(REPO_ROOT / "BENCH_engine.json")
            is None
        )
