"""Smoke test for the CI benchmark runner (benchmarks/run_bench.py)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_run_bench_quick_emits_schema_json(tmp_path):
    output = tmp_path / "BENCH_engine.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "run_bench.py"),
            "--quick",
            "--output",
            str(output),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(output.read_text())
    assert payload["schema"] == 1
    assert payload["quick"] is True
    assert payload["machine"]["cpu_count"] == os.cpu_count()
    names = {entry["name"] for entry in payload["benchmarks"]}
    # The roster must cover sampling, restarts, density, every backend,
    # and the hierarchical kernel.
    by_name = {entry["name"]: entry for entry in payload["benchmarks"]}
    assert by_name["sample_tensor_batched"]["speedup"] > 0
    assert by_name["ukmedoids_plane_shared"]["speedup"] > 0
    assert {
        "sample_tensor_batched",
        "multi_restart_shared_cache",
        "fdbscan_ported_fit",
        "backend_serial_ukmeans_restarts",
        "backend_threads_ukmeans_restarts",
        "backend_processes_ukmeans_restarts",
        "ukmedoids_plane_shared",
        "ukmedoids_plane_recompute",
        "uahc_jeffreys_fit",
    } <= names
    assert all(entry["seconds"] > 0 for entry in payload["benchmarks"])
