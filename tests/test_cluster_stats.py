"""Tests for the Psi/Phi/Upsilon incremental statistics (Theorem 3, Corollary 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


from repro.clustering import ClusterStats, ClusterStatsMatrix, j_ucpc
from repro.exceptions import EmptyClusterError, InvalidParameterError
from repro.objects import UncertainObject


class TestClusterStats:
    def test_objective_matches_reference(self, mixed_cluster):
        stats = ClusterStats.from_objects(mixed_cluster)
        assert stats.objective() == pytest.approx(j_ucpc(mixed_cluster))

    def test_add_remove_roundtrip(self, mixed_cluster):
        stats = ClusterStats.from_objects(mixed_cluster)
        before = stats.objective()
        extra = UncertainObject.uniform_box([5.0, 5.0], [1.0, 1.0])
        stats.add(extra)
        stats.remove(extra)
        assert stats.objective() == pytest.approx(before)
        assert stats.count == len(mixed_cluster)

    def test_corollary1_objective_with(self, mixed_cluster):
        """O(m) hypothetical insertion equals from-scratch recomputation."""
        stats = ClusterStats.from_objects(mixed_cluster)
        extra = UncertainObject.gaussian([3.0, -2.0], [0.4, 0.6])
        hypothetical = stats.objective_with(extra)
        reference = j_ucpc(list(mixed_cluster) + [extra])
        assert hypothetical == pytest.approx(reference)
        # The query must not mutate the stats.
        assert stats.count == len(mixed_cluster)
        assert stats.objective() == pytest.approx(j_ucpc(mixed_cluster))

    def test_corollary1_objective_without(self, mixed_cluster):
        stats = ClusterStats.from_objects(mixed_cluster)
        removed = mixed_cluster[2]
        hypothetical = stats.objective_without(removed)
        reference = j_ucpc([o for o in mixed_cluster if o is not removed])
        assert hypothetical == pytest.approx(reference)

    def test_negative_means_handled(self):
        """The signed-sum fix: the paper's sqrt(Upsilon) form breaks when
        sum(mu) < 0; our stats must not."""
        cluster = [
            UncertainObject.uniform_box([-5.0], [0.5]),
            UncertainObject.uniform_box([-3.0], [0.2]),
        ]
        stats = ClusterStats.from_objects(cluster)
        assert stats.objective() == pytest.approx(j_ucpc(cluster))
        extra = UncertainObject.uniform_box([-4.0], [0.1])
        assert stats.objective_with(extra) == pytest.approx(
            j_ucpc(cluster + [extra])
        )

    def test_upsilon_is_squared_signed_sum(self):
        cluster = [
            UncertainObject.from_point([-2.0]),
            UncertainObject.from_point([1.0]),
        ]
        stats = ClusterStats.from_objects(cluster)
        assert stats.mu_sum[0] == pytest.approx(-1.0)
        assert stats.upsilon[0] == pytest.approx(1.0)

    def test_relocation_delta(self, mixed_cluster):
        source = ClusterStats.from_objects(mixed_cluster[:3])
        target = ClusterStats.from_objects(mixed_cluster[3:])
        moved = mixed_cluster[0]
        delta = source.relocation_delta(target, moved)
        before = j_ucpc(mixed_cluster[:3]) + j_ucpc(mixed_cluster[3:])
        after = j_ucpc(mixed_cluster[1:3]) + j_ucpc(
            list(mixed_cluster[3:]) + [moved]
        )
        assert delta == pytest.approx(after - before)

    def test_empty_cluster_objective_zero(self):
        stats = ClusterStats(dim=2)
        assert stats.objective() == 0.0
        assert stats.count == 0

    def test_remove_from_empty_raises(self):
        stats = ClusterStats(dim=1)
        with pytest.raises(EmptyClusterError):
            stats.remove(UncertainObject.from_point([0.0]))
        with pytest.raises(EmptyClusterError):
            stats.objective_without(UncertainObject.from_point([0.0]))

    def test_remove_to_empty_snaps_to_zero(self):
        obj = UncertainObject.uniform_box([1.0], [0.5])
        stats = ClusterStats.from_objects([obj])
        stats.remove(obj)
        assert stats.objective() == 0.0
        assert np.all(stats.psi == 0.0)
        assert np.all(stats.mu_sum == 0.0)

    def test_dim_mismatch(self):
        stats = ClusterStats(dim=2)
        with pytest.raises(InvalidParameterError):
            stats.add(UncertainObject.from_point([0.0]))

    def test_invalid_dim(self):
        with pytest.raises(InvalidParameterError):
            ClusterStats(dim=0)

    def test_copy_is_independent(self, mixed_cluster):
        stats = ClusterStats.from_objects(mixed_cluster)
        clone = stats.copy()
        clone.add(UncertainObject.from_point([0.0, 0.0]))
        assert clone.count == stats.count + 1
        assert stats.objective() == pytest.approx(j_ucpc(mixed_cluster))

    def test_from_dataset_indices(self, blob_dataset):
        indices = [0, 3, 7, 11]
        stats = ClusterStats.from_dataset_indices(blob_dataset, indices)
        reference = ClusterStats.from_objects([blob_dataset[i] for i in indices])
        assert stats.objective() == pytest.approx(reference.objective())

    def test_centroid_mean(self, mixed_cluster):
        stats = ClusterStats.from_objects(mixed_cluster)
        expected = np.mean([o.mu for o in mixed_cluster], axis=0)
        assert np.allclose(stats.centroid_mean, expected)
        empty = ClusterStats(dim=2)
        with pytest.raises(EmptyClusterError):
            _ = empty.centroid_mean

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-30, max_value=30),
                st.floats(min_value=0.01, max_value=4),
            ),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_batch_property(self, params):
        """Build stats incrementally, compare against the reference J."""
        cluster = [
            UncertainObject.uniform_box([mean], [half]) for mean, half in params
        ]
        stats = ClusterStats(dim=1)
        for obj in cluster:
            stats.add(obj)
        assert stats.objective() == pytest.approx(
            j_ucpc(cluster), rel=1e-7, abs=1e-8
        )
        # Remove half the objects and compare again.
        keep = cluster[: len(cluster) // 2 + 1]
        for obj in cluster[len(cluster) // 2 + 1 :]:
            stats.remove(obj)
        assert stats.objective() == pytest.approx(
            j_ucpc(keep), rel=1e-6, abs=1e-6
        )


class TestClusterStatsMatrix:
    def _setup(self, blob_dataset):
        labels = np.array(blob_dataset.labels)
        return ClusterStatsMatrix.from_assignment(blob_dataset, labels, 3), labels

    def test_total_objective_matches_per_cluster(self, blob_dataset):
        matrix, labels = self._setup(blob_dataset)
        total = 0.0
        for c in range(3):
            members = [o for o, lab in zip(blob_dataset, labels) if lab == c]
            total += j_ucpc(members)
        assert matrix.total_objective() == pytest.approx(total)

    def test_objectives_with_matches_scalar(self, blob_dataset):
        matrix, labels = self._setup(blob_dataset)
        obj = blob_dataset[0]
        vector = matrix.objectives_with(obj.sigma2, obj.mu2, obj.mu)
        for c in range(3):
            members = [o for o, lab in zip(blob_dataset, labels) if lab == c]
            assert vector[c] == pytest.approx(j_ucpc(members + [obj]))

    def test_objective_without_matches_scalar(self, blob_dataset):
        matrix, labels = self._setup(blob_dataset)
        idx = 5
        own = int(labels[idx])
        obj = blob_dataset[idx]
        value = matrix.objective_without(own, obj.sigma2, obj.mu2, obj.mu)
        members = [
            o
            for i, (o, lab) in enumerate(zip(blob_dataset, labels))
            if lab == own and i != idx
        ]
        assert value == pytest.approx(j_ucpc(members))

    def test_move_consistency(self, blob_dataset):
        matrix, labels = self._setup(blob_dataset)
        idx = 2
        own = int(labels[idx])
        target = (own + 1) % 3
        obj = blob_dataset[idx]
        matrix.move(own, target, obj.sigma2, obj.mu2, obj.mu)
        labels[idx] = target
        rebuilt = ClusterStatsMatrix.from_assignment(blob_dataset, labels, 3)
        assert matrix.total_objective() == pytest.approx(
            rebuilt.total_objective()
        )
        assert np.array_equal(matrix.counts, rebuilt.counts)

    def test_empty_cluster_objective_zero(self, blob_dataset):
        labels = np.zeros(len(blob_dataset), dtype=np.int64)
        matrix = ClusterStatsMatrix.from_assignment(blob_dataset, labels, 2)
        objectives = matrix.objectives()
        assert objectives[1] == 0.0
        assert matrix.counts[1] == 0

    def test_invalid_n_clusters(self):
        with pytest.raises(InvalidParameterError):
            ClusterStatsMatrix(0, 2)
