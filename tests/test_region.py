"""Tests for repro.uncertainty.region (BoxRegion + Theorem 1's region)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.uncertainty.region import BoxRegion, scaled_minkowski_sum


class TestConstruction:
    def test_basic_properties(self):
        region = BoxRegion([0.0, -1.0], [2.0, 3.0])
        assert region.dim == 2
        assert np.allclose(region.widths, [2.0, 4.0])
        assert np.allclose(region.center, [1.0, 1.0])
        assert region.volume == pytest.approx(8.0)

    def test_degenerate_dimension_allowed(self):
        region = BoxRegion([1.0, 2.0], [1.0, 5.0])
        assert region.volume == 0.0
        assert region.contains([1.0, 3.0])

    def test_lower_above_upper_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoxRegion([2.0], [1.0])

    def test_nan_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoxRegion([np.nan], [1.0])

    def test_infinite_bounds_allowed(self):
        region = BoxRegion([-np.inf], [np.inf])
        assert region.contains([1e12])

    def test_from_intervals(self):
        region = BoxRegion.from_intervals([(0, 1), (2, 3)])
        assert region.dim == 2
        assert region.contains([0.5, 2.5])

    def test_from_intervals_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoxRegion.from_intervals([])

    def test_point_region(self):
        region = BoxRegion.point([1.0, 2.0])
        assert region.volume == 0.0
        assert region.contains([1.0, 2.0])
        assert not region.contains([1.0, 2.1])

    def test_bounds_are_read_only(self):
        region = BoxRegion([0.0], [1.0])
        with pytest.raises(ValueError):
            region.lower[0] = 5.0

    def test_equality_and_hash(self):
        a = BoxRegion([0.0], [1.0])
        b = BoxRegion([0.0], [1.0])
        c = BoxRegion([0.0], [2.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_iteration_yields_interval_pairs(self):
        region = BoxRegion([0.0, 1.0], [2.0, 3.0])
        assert list(region) == [(0.0, 2.0), (1.0, 3.0)]

    def test_repr_mentions_intervals(self):
        assert "[0, 1]" in repr(BoxRegion([0.0], [1.0]))


class TestGeometry:
    def test_contains_boundary(self):
        region = BoxRegion([0.0], [1.0])
        assert region.contains([0.0])
        assert region.contains([1.0])
        assert not region.contains([1.1])

    def test_clip_projects_onto_box(self):
        region = BoxRegion([0.0, 0.0], [1.0, 1.0])
        assert np.allclose(region.clip([2.0, -1.0]), [1.0, 0.0])
        assert np.allclose(region.clip([0.5, 0.5]), [0.5, 0.5])

    def test_min_dist_zero_inside(self):
        region = BoxRegion([0.0, 0.0], [1.0, 1.0])
        assert region.min_dist_sq([0.5, 0.5]) == 0.0

    def test_min_dist_outside(self):
        region = BoxRegion([0.0, 0.0], [1.0, 1.0])
        # Point (2, 2): nearest box point is (1, 1), squared distance 2.
        assert region.min_dist_sq([2.0, 2.0]) == pytest.approx(2.0)

    def test_max_dist_is_farthest_corner(self):
        region = BoxRegion([0.0, 0.0], [1.0, 1.0])
        # From the origin corner, the farthest corner is (1, 1).
        assert region.max_dist_sq([0.0, 0.0]) == pytest.approx(2.0)

    def test_min_le_max_everywhere(self, rng):
        region = BoxRegion([-1.0, 0.0, 2.0], [1.0, 5.0, 2.5])
        for _ in range(50):
            p = rng.normal(0, 3, size=3)
            assert region.min_dist_sq(p) <= region.max_dist_sq(p) + 1e-12

    def test_intersects(self):
        a = BoxRegion([0.0], [1.0])
        b = BoxRegion([0.5], [2.0])
        c = BoxRegion([1.5], [2.0])
        assert a.intersects(b)
        assert not a.intersects(c)
        # Touching boxes are considered intersecting (closed boxes).
        assert a.intersects(BoxRegion([1.0], [2.0]))

    def test_union_box(self):
        a = BoxRegion([0.0, 0.0], [1.0, 1.0])
        b = BoxRegion([2.0, -1.0], [3.0, 0.5])
        u = a.union_box(b)
        assert np.allclose(u.lower, [0.0, -1.0])
        assert np.allclose(u.upper, [3.0, 1.0])

    def test_dim_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            BoxRegion([0.0], [1.0]).intersects(BoxRegion([0.0, 0.0], [1.0, 1.0]))


class TestScaledMinkowskiSum:
    def test_theorem1_region_formula(self):
        # Theorem 1: centroid region bounds are the averages of member bounds.
        r1 = BoxRegion([0.0, 0.0], [2.0, 4.0])
        r2 = BoxRegion([2.0, -2.0], [4.0, 0.0])
        centroid_region = scaled_minkowski_sum([r1, r2])
        assert np.allclose(centroid_region.lower, [1.0, -1.0])
        assert np.allclose(centroid_region.upper, [3.0, 2.0])

    def test_single_region_identity(self):
        r = BoxRegion([0.0], [1.0])
        assert scaled_minkowski_sum([r]) == r

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            scaled_minkowski_sum([])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            scaled_minkowski_sum(
                [BoxRegion([0.0], [1.0]), BoxRegion([0.0, 0.0], [1.0, 1.0])]
            )

    @given(
        lows=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=2, max_size=6
        ),
        widths=st.lists(
            st.floats(min_value=0, max_value=50), min_size=2, max_size=6
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_average_of_member_means_inside(self, lows, widths):
        """The average of member centers always lies in the centroid region."""
        size = min(len(lows), len(widths))
        regions = [
            BoxRegion([lows[i]], [lows[i] + widths[i]]) for i in range(size)
        ]
        combined = scaled_minkowski_sum(regions)
        centers = np.array([r.center[0] for r in regions])
        assert combined.contains([centers.mean()], atol=1e-9)
