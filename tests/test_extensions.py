"""Tests for the library extensions: triangular pdf, standardizer,
stability metric, moving-objects workload."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import UAHC, UCPC, UKMeans
from repro.datagen import make_blobs_uncertain, make_moving_objects
from repro.evaluation import clustering_stability, f_measure
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.objects import UncertainDataset, UncertainObject, UncertainStandardizer
from repro.uncertainty import (
    TriangularDistribution,
    quadrature_mass,
    quadrature_moments,
)


class TestTriangular:
    def test_moments_closed_form(self):
        dist = TriangularDistribution(0.0, 1.0, 4.0)
        assert dist.mean == pytest.approx(5.0 / 3.0)
        var = (0 + 1 + 16 - 0 - 0 - 4) / 18.0
        assert dist.variance == pytest.approx(var)

    def test_moments_match_quadrature(self):
        dist = TriangularDistribution(-2.0, 0.5, 3.0)
        mean, second = quadrature_moments(dist)
        assert dist.mean == pytest.approx(mean, abs=1e-8)
        assert dist.second_moment == pytest.approx(second, abs=1e-7)

    def test_pdf_integrates_to_one(self):
        dist = TriangularDistribution(1.0, 2.0, 5.0)
        assert quadrature_mass(dist) == pytest.approx(1.0, abs=1e-8)

    def test_degenerate_sides_allowed(self):
        left = TriangularDistribution(0.0, 0.0, 2.0)  # mode at lower
        right = TriangularDistribution(0.0, 2.0, 2.0)  # mode at upper
        assert quadrature_mass(left) == pytest.approx(1.0, abs=1e-8)
        assert quadrature_mass(right) == pytest.approx(1.0, abs=1e-8)

    def test_ppf_inverts_cdf(self):
        dist = TriangularDistribution(0.0, 3.0, 4.0)
        qs = np.array([0.1, 0.5, 0.9])
        assert np.allclose(dist.cdf(dist.ppf(qs)), qs, atol=1e-9)

    def test_sampling_statistics(self):
        dist = TriangularDistribution.symmetric(2.0, 1.5)
        samples = dist.sample(40000, seed=0)
        assert samples.mean() == pytest.approx(2.0, abs=0.02)
        assert np.all((samples >= 0.5) & (samples <= 3.5))

    def test_symmetric_mean_is_center(self):
        dist = TriangularDistribution.symmetric(-1.0, 2.0)
        assert dist.mean == pytest.approx(-1.0)
        assert dist.mode == pytest.approx(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            TriangularDistribution(2.0, 1.0, 3.0)
        with pytest.raises(InvalidParameterError):
            TriangularDistribution(1.0, 1.0, 1.0)
        with pytest.raises(InvalidParameterError):
            TriangularDistribution.symmetric(0.0, 0.0)
        with pytest.raises(InvalidParameterError):
            TriangularDistribution(np.inf, 1.0, 2.0)

    @given(
        lower=st.floats(min_value=-20, max_value=20),
        mode_frac=st.floats(min_value=0.0, max_value=1.0),
        width=st.floats(min_value=0.01, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_mean_between_bounds_property(self, lower, mode_frac, width):
        upper = lower + width
        mode = lower + mode_frac * width
        dist = TriangularDistribution(lower, mode, upper)
        assert lower - 1e-9 <= dist.mean <= upper + 1e-9
        assert dist.variance >= 0.0


class TestStandardizer:
    def test_zero_mean_unit_scale(self, blob_dataset):
        z = UncertainStandardizer().fit_transform(blob_dataset)
        assert np.allclose(z.mu_matrix.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.mu_matrix.std(axis=0), 1.0, atol=1e-9)

    def test_variance_scaling_exact(self, blob_dataset):
        std = UncertainStandardizer().fit(blob_dataset)
        z = std.transform(blob_dataset)
        scale_sq = std.plan.scale**2
        assert np.allclose(
            z.sigma2_matrix, blob_dataset.sigma2_matrix / scale_sq, atol=1e-9
        )

    def test_labels_preserved(self, blob_dataset):
        z = UncertainStandardizer().fit_transform(blob_dataset)
        assert np.array_equal(z.labels, blob_dataset.labels)

    def test_distributions_still_valid(self, blob_dataset):
        z = UncertainStandardizer().fit_transform(blob_dataset)
        obj = z[0]
        samples = obj.sample(500, seed=0)
        for row in samples:
            assert obj.region.contains(row, atol=1e-9)

    def test_center_only(self, blob_dataset):
        z = UncertainStandardizer(with_scale=False).fit_transform(blob_dataset)
        assert np.allclose(z.mu_matrix.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.sigma2_matrix, blob_dataset.sigma2_matrix)

    def test_inverse_point(self, blob_dataset):
        std = UncertainStandardizer().fit(blob_dataset)
        z = std.transform(blob_dataset)
        back = std.inverse_point(z.mu_matrix[0])
        assert np.allclose(back, blob_dataset.mu_matrix[0], atol=1e-9)

    def test_mixed_families(self, mixed_dataset):
        z = UncertainStandardizer().fit_transform(mixed_dataset)
        # Means transform exactly for every family.
        plan = UncertainStandardizer().fit(mixed_dataset).plan
        expected = (mixed_dataset.mu_matrix - plan.shift) / plan.scale
        assert np.allclose(z.mu_matrix, expected, atol=1e-9)

    def test_not_fitted_error(self, blob_dataset):
        with pytest.raises(NotFittedError):
            UncertainStandardizer().transform(blob_dataset)

    def test_constant_dimension_scale_one(self):
        objs = [UncertainObject.from_point([1.0, float(i)]) for i in range(4)]
        data = UncertainDataset(objs)
        std = UncertainStandardizer().fit(data)
        assert std.plan.scale[0] == 1.0  # zero-std column guarded

    def test_clustering_invariance_under_isotropic_scaling(self):
        """K-means-family assignments are invariant to a shared affine
        map; the standardizer must not change blob recovery."""
        data = make_blobs_uncertain(n_objects=60, n_clusters=3, separation=8.0, seed=2)
        z = UncertainStandardizer().fit_transform(data)
        raw = UKMeans(3, init="kmeans++").fit(data, seed=0)
        scaled = UKMeans(3, init="kmeans++").fit(z, seed=0)
        assert f_measure(scaled.labels, raw.labels) > 0.95


class TestStability:
    def test_deterministic_algorithm_fully_stable(self, blob_dataset):
        result = clustering_stability(
            UAHC(n_clusters=3, linkage="ed"), blob_dataset, n_runs=3, seed=0
        )
        assert result.mean_agreement == pytest.approx(1.0)
        assert result.is_stable

    def test_randomized_algorithm_in_range(self, blob_dataset):
        result = clustering_stability(
            UCPC(n_clusters=3), blob_dataset, n_runs=4, seed=0
        )
        assert -1.0 <= result.min_agreement <= result.mean_agreement
        assert result.mean_agreement <= result.max_agreement <= 1.0

    def test_invalid_runs(self, blob_dataset):
        with pytest.raises(InvalidParameterError):
            clustering_stability(UCPC(3), blob_dataset, n_runs=1)

    def test_custom_agreement(self, blob_dataset):
        result = clustering_stability(
            UKMeans(3),
            blob_dataset,
            n_runs=3,
            seed=1,
            agreement=f_measure,
        )
        assert 0.0 <= result.mean_agreement <= 1.0


class TestMovingObjects:
    def test_shapes_and_labels(self):
        fleet = make_moving_objects(n_objects=80, n_hubs=4, seed=0)
        assert len(fleet) == 80
        assert fleet.dim == 2
        assert fleet.n_classes == 4

    def test_heterogeneous_variances(self):
        fleet = make_moving_objects(n_objects=100, seed=1)
        variances = fleet.total_variances
        assert variances.max() > 3.0 * variances.min()

    def test_gaussian_variant(self):
        fleet = make_moving_objects(n_objects=50, pdf="normal", seed=2)
        assert np.all(fleet.total_variances > 0)

    def test_hubs_recoverable(self):
        fleet = make_moving_objects(
            n_objects=200, n_hubs=3, hub_radius=5.0, max_speed=2.0, seed=3
        )
        best = max(
            f_measure(UCPC(3).fit(fleet, seed=s).labels, fleet.labels)
            for s in range(3)
        )
        assert best > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            make_moving_objects(n_objects=4, n_hubs=4)
        with pytest.raises(InvalidParameterError):
            make_moving_objects(pdf="cauchy")
        with pytest.raises(InvalidParameterError):
            make_moving_objects(max_speed=0.0)

    def test_deterministic(self):
        a = make_moving_objects(n_objects=40, seed=9)
        b = make_moving_objects(n_objects=40, seed=9)
        assert np.allclose(a.mu_matrix, b.mu_matrix)
