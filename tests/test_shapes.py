"""Unit tests of the shape-check predicates (on synthetic reports)."""

from __future__ import annotations


from repro.experiments.figure4 import Figure4Report
from repro.experiments.figure5 import Figure5Report
from repro.experiments.shapes import (
    ShapeCheck,
    check_density_methods_weak_theta,
    check_linear_scalability,
    check_pruning_between_bukm_and_ukm,
    check_slow_group_slower_at_scale,
    check_ucpc_beats_mmvar_quality,
    check_ucpc_beats_ukmeans_theta,
    check_ucpc_quality_competitive,
    check_ucpc_same_order_as_fast_group,
    check_uahc_strong_at_large_k,
)
from repro.experiments.table2 import Table2Cell, Table2Report
from repro.experiments.table3 import Table3Report


def _table2(ucpc_theta, ukm_theta, ucpc_q=0.3, ukm_q=0.2):
    report = Table2Report(
        datasets=("iris",), families=("normal",),
        algorithms=("FDB", "FOPT", "UKM", "UKmed", "MMV", "UCPC"),
    )
    values = {
        "FDB": (-0.1, 0.1),
        "FOPT": (0.0, 0.1),
        "UKM": (ukm_theta, ukm_q),
        "UKmed": (0.01, 0.15),
        "MMV": (0.02, 0.05),
        "UCPC": (ucpc_theta, ucpc_q),
    }
    for alg, (theta, quality) in values.items():
        report.cells[("iris", "normal", alg)] = Table2Cell(theta, quality)
    return report


def _table3(ucpc=0.5, mmv=0.4, uahc_small=0.1, uahc_large=0.3):
    report = Table3Report(
        datasets=("neuroblastoma",),
        cluster_counts=(2, 5, 20, 30),
        algorithms=("MMV", "UAHC", "UCPC"),
    )
    uahc = {2: uahc_small, 5: uahc_small, 20: uahc_large, 30: uahc_large}
    for k in report.cluster_counts:
        report.quality[("neuroblastoma", k, "MMV")] = mmv
        report.quality[("neuroblastoma", k, "UCPC")] = ucpc
        report.quality[("neuroblastoma", k, "UAHC")] = uahc[k]
    return report


def _figure4(ucpc=30.0, ukm=10.0, mmv=25.0, bukm=200.0, prune=80.0, slow=500.0):
    report = Figure4Report(
        datasets=("abalone", "letter"),
        slow_group=("UKmed", "bUKM", "UAHC", "FDB", "FOPT"),
        fast_group=("UKM", "MMV", "MinMax-BB", "VDBiP"),
    )
    for ds in report.datasets:
        report.runtimes_ms[(ds, "UCPC")] = ucpc
        report.runtimes_ms[(ds, "UKM")] = ukm
        report.runtimes_ms[(ds, "MMV")] = mmv
        report.runtimes_ms[(ds, "bUKM")] = bukm
        report.runtimes_ms[(ds, "MinMax-BB")] = prune
        report.runtimes_ms[(ds, "VDBiP")] = prune
        for alg in ("UKmed", "UAHC", "FDB", "FOPT"):
            report.runtimes_ms[(ds, alg)] = slow
        report.runtimes_ms[(ds, "UKmed")] = 1.0  # off-line-excluded exemption
    return report


def _figure5(linear=True):
    report = Figure5Report(fractions=(0.25, 0.5, 1.0), algorithms=("UKM", "UCPC"))
    for frac in report.fractions:
        n = int(1000 * frac)
        report.sizes[frac] = n
        report.runtimes_ms[(frac, "UKM")] = n * 0.01
        report.runtimes_ms[(frac, "UCPC")] = (
            n * 0.05 if linear else n * n * 1e-4
        )
    return report


class TestTable2Checks:
    def test_theta_gain_pass_and_fail(self):
        assert check_ucpc_beats_ukmeans_theta(_table2(0.2, 0.1)).passed
        assert not check_ucpc_beats_ukmeans_theta(_table2(0.05, 0.1)).passed

    def test_quality_competitive(self):
        assert check_ucpc_quality_competitive(_table2(0.2, 0.1)).passed
        assert not check_ucpc_quality_competitive(
            _table2(0.2, 0.1, ucpc_q=0.1, ukm_q=0.3)
        ).passed

    def test_density_weak(self):
        assert check_density_methods_weak_theta(_table2(0.2, 0.1)).passed
        assert not check_density_methods_weak_theta(_table2(-0.5, 0.1)).passed


class TestTable3Checks:
    def test_mmvar_gain(self):
        assert check_ucpc_beats_mmvar_quality(_table3()).passed
        assert not check_ucpc_beats_mmvar_quality(_table3(ucpc=0.3, mmv=0.4)).passed

    def test_uahc_trend(self):
        assert check_uahc_strong_at_large_k(_table3()).passed
        assert not check_uahc_strong_at_large_k(
            _table3(uahc_small=0.4, uahc_large=0.1)
        ).passed


class TestFigure4Checks:
    def test_same_order(self):
        assert check_ucpc_same_order_as_fast_group(_figure4()).passed
        assert not check_ucpc_same_order_as_fast_group(
            _figure4(ucpc=5000.0)
        ).passed

    def test_slow_group(self):
        assert check_slow_group_slower_at_scale(_figure4()).passed
        assert not check_slow_group_slower_at_scale(_figure4(slow=1.0)).passed

    def test_pruning_band(self):
        assert check_pruning_between_bukm_and_ukm(_figure4()).passed
        assert not check_pruning_between_bukm_and_ukm(
            _figure4(prune=2000.0)
        ).passed


class TestFigure5Checks:
    def test_linear(self):
        assert check_linear_scalability(_figure5(linear=True)).passed
        assert not check_linear_scalability(
            _figure5(linear=False), min_r2=0.999
        ).passed

    def test_str_rendering(self):
        check = ShapeCheck(name="x", passed=True, detail="d")
        assert "PASS" in str(check)
        assert "FAIL" in str(ShapeCheck(name="x", passed=False, detail="d"))
