"""Tests for the univariate pdf families (uniform, normal, exponential, point).

Every family's analytic moments are cross-checked against quadrature
(exact integration of the implemented pdf) and Monte-Carlo sampling, and
the pdf itself is checked to integrate to 1 over its support (Eq. (1)).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.uncertainty import (
    PointMassDistribution,
    TruncatedExponentialDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
    quadrature_mass,
    quadrature_moments,
)

ALL_FAMILIES = [
    UniformDistribution(-1.0, 3.0),
    UniformDistribution.centered(5.0, 0.5),
    TruncatedNormalDistribution(0.0, 1.0),
    TruncatedNormalDistribution(2.0, 0.5, 1.0, 3.5),
    TruncatedNormalDistribution.central_mass(-3.0, 2.0, 0.95),
    TruncatedExponentialDistribution(0.0, 1.5),
    TruncatedExponentialDistribution(1.0, 2.0, cutoff=2.0),
    TruncatedExponentialDistribution(4.0, 0.7, cutoff=5.0, direction=-1),
    TruncatedExponentialDistribution.with_mean(0.0, 2.0, direction=-1, mass=0.95),
]


@pytest.mark.parametrize("dist", ALL_FAMILIES, ids=lambda d: repr(d))
class TestFamilyContract:
    """Invariants every 1-D family must satisfy."""

    def test_pdf_integrates_to_one(self, dist):
        assert quadrature_mass(dist) == pytest.approx(1.0, abs=1e-6)

    def test_analytic_mean_matches_quadrature(self, dist):
        mean, _ = quadrature_moments(dist)
        assert dist.mean == pytest.approx(mean, abs=1e-7)

    def test_analytic_second_moment_matches_quadrature(self, dist):
        _, second = quadrature_moments(dist)
        assert dist.second_moment == pytest.approx(second, abs=1e-6)

    def test_variance_nonnegative_and_consistent(self, dist):
        assert dist.variance >= 0.0
        assert dist.variance == pytest.approx(
            dist.second_moment - dist.mean**2, abs=1e-9
        )

    def test_samples_inside_support(self, dist):
        samples = dist.sample(2000, seed=0)
        assert np.all(samples >= dist.support_lower - 1e-9)
        assert np.all(samples <= dist.support_upper + 1e-9)

    def test_sample_mean_converges(self, dist):
        samples = dist.sample(40000, seed=1)
        tolerance = 5.0 * np.sqrt(dist.variance / samples.size) + 1e-3
        assert samples.mean() == pytest.approx(dist.mean, abs=tolerance)

    def test_pdf_zero_outside_support(self, dist):
        lo, hi = dist.support_lower, dist.support_upper
        if np.isfinite(lo):
            assert dist.pdf(np.array([lo - 1.0]))[0] == 0.0
        if np.isfinite(hi):
            assert dist.pdf(np.array([hi + 1.0]))[0] == 0.0

    def test_cdf_monotone_and_bounded(self, dist):
        lo = dist.support_lower if np.isfinite(dist.support_lower) else -20.0
        hi = dist.support_upper if np.isfinite(dist.support_upper) else 20.0
        grid = np.linspace(lo, hi, 101)
        cdf = dist.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] >= -1e-12
        assert cdf[-1] <= 1.0 + 1e-12

    def test_ppf_inverts_cdf(self, dist):
        qs = np.array([0.05, 0.25, 0.5, 0.75, 0.95])
        xs = dist.ppf(qs)
        back = dist.cdf(xs)
        assert np.allclose(back, qs, atol=1e-7)


class TestUniform:
    def test_moments_closed_form(self):
        dist = UniformDistribution(2.0, 6.0)
        assert dist.mean == pytest.approx(4.0)
        assert dist.variance == pytest.approx(16.0 / 12.0)

    def test_centered_mean_exact(self):
        dist = UniformDistribution.centered(-3.5, 2.0)
        assert dist.mean == pytest.approx(-3.5)

    def test_invalid_bounds(self):
        with pytest.raises(InvalidParameterError):
            UniformDistribution(1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            UniformDistribution(np.inf, 0.0)
        with pytest.raises(InvalidParameterError):
            UniformDistribution.centered(0.0, -1.0)

    def test_pdf_height(self):
        dist = UniformDistribution(0.0, 4.0)
        assert dist.pdf(np.array([2.0]))[0] == pytest.approx(0.25)

    @given(
        center=st.floats(min_value=-50, max_value=50),
        half=st.floats(min_value=1e-3, max_value=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_variance_formula_property(self, center, half):
        dist = UniformDistribution.centered(center, half)
        assert dist.variance == pytest.approx((2 * half) ** 2 / 12.0, rel=1e-9)


class TestTruncatedNormal:
    def test_untruncated_moments(self):
        dist = TruncatedNormalDistribution(1.5, 2.0)
        assert dist.mean == pytest.approx(1.5)
        assert dist.variance == pytest.approx(4.0)

    def test_symmetric_truncation_keeps_mean(self):
        dist = TruncatedNormalDistribution(3.0, 1.0, 1.0, 5.0)
        assert dist.mean == pytest.approx(3.0)
        assert dist.variance < 1.0  # truncation shrinks the variance

    def test_one_sided_truncation_shifts_mean(self):
        dist = TruncatedNormalDistribution(0.0, 1.0, lower=0.0)
        # Half-normal mean = sqrt(2/pi).
        assert dist.mean == pytest.approx(np.sqrt(2.0 / np.pi), abs=1e-9)

    def test_central_mass_interval(self):
        dist = TruncatedNormalDistribution.central_mass(2.0, 1.0, 0.95)
        # 95% central interval is loc +- 1.959964 sigma.
        assert dist.support_lower == pytest.approx(2.0 - 1.959964, abs=1e-4)
        assert dist.support_upper == pytest.approx(2.0 + 1.959964, abs=1e-4)
        assert dist.mean == pytest.approx(2.0)

    def test_central_mass_full(self):
        dist = TruncatedNormalDistribution.central_mass(0.0, 1.0, 1.0)
        assert not np.isfinite(dist.support_lower)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            TruncatedNormalDistribution(0.0, 0.0)
        with pytest.raises(InvalidParameterError):
            TruncatedNormalDistribution(0.0, 1.0, 2.0, 1.0)
        with pytest.raises(InvalidParameterError):
            TruncatedNormalDistribution.central_mass(0.0, 1.0, 0.0)

    def test_zero_mass_interval_rejected(self):
        with pytest.raises(InvalidParameterError):
            TruncatedNormalDistribution(0.0, 1.0, 40.0, 41.0)

    @given(
        loc=st.floats(min_value=-20, max_value=20),
        scale=st.floats(min_value=0.05, max_value=5),
        mass=st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(max_examples=50, deadline=None)
    def test_central_mass_mean_preserved_property(self, loc, scale, mass):
        dist = TruncatedNormalDistribution.central_mass(loc, scale, mass)
        assert dist.mean == pytest.approx(loc, abs=1e-9 * max(1, abs(loc)))
        assert dist.variance <= scale * scale + 1e-12


class TestTruncatedExponential:
    def test_untruncated_moments(self):
        dist = TruncatedExponentialDistribution(0.0, 2.0)
        assert dist.mean == pytest.approx(0.5)
        assert dist.variance == pytest.approx(0.25)

    def test_left_tail_direction(self):
        dist = TruncatedExponentialDistribution(0.0, 2.0, direction=-1)
        assert dist.mean == pytest.approx(-0.5)
        assert dist.support_upper == 0.0

    def test_with_mean_untruncated(self):
        dist = TruncatedExponentialDistribution.with_mean(3.0, 4.0)
        assert dist.mean == pytest.approx(3.0)

    def test_with_mean_truncated_shifts_slightly(self):
        dist = TruncatedExponentialDistribution.with_mean(3.0, 4.0, mass=0.95)
        # Truncation removes the long right tail: mean decreases a bit.
        assert dist.mean < 3.0
        assert dist.mean == pytest.approx(3.0, abs=0.1)

    def test_truncation_mass(self):
        dist = TruncatedExponentialDistribution.with_mean(0.0, 1.0, mass=0.9)
        # Support covers exactly the 90% region of the parent pdf.
        assert dist.support_upper - dist.support_lower == pytest.approx(
            -np.log(0.1), abs=1e-9
        )

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            TruncatedExponentialDistribution(0.0, -1.0)
        with pytest.raises(InvalidParameterError):
            TruncatedExponentialDistribution(0.0, 1.0, cutoff=-1.0)
        with pytest.raises(InvalidParameterError):
            TruncatedExponentialDistribution(0.0, 1.0, direction=2)
        with pytest.raises(InvalidParameterError):
            TruncatedExponentialDistribution.with_mean(0.0, 1.0, mass=1.5)

    @given(
        rate=st.floats(min_value=0.1, max_value=10),
        cutoff=st.floats(min_value=0.1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_truncated_mean_below_untruncated_property(self, rate, cutoff):
        truncated = TruncatedExponentialDistribution(0.0, rate, cutoff=cutoff)
        assert truncated.mean <= 1.0 / rate + 1e-12
        assert truncated.variance <= 1.0 / rate**2 + 1e-12


class TestPointMass:
    def test_moments(self):
        dist = PointMassDistribution(3.0)
        assert dist.mean == 3.0
        assert dist.second_moment == 9.0
        assert dist.variance == 0.0

    def test_sampling_constant(self):
        dist = PointMassDistribution(-1.5)
        assert np.all(dist.sample(10, seed=0) == -1.5)

    def test_cdf_step(self):
        dist = PointMassDistribution(2.0)
        assert dist.cdf(np.array([1.9]))[0] == 0.0
        assert dist.cdf(np.array([2.0]))[0] == 1.0
