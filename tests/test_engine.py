"""Tests for the multi-restart execution engine (repro.engine)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.clustering import BasicUKMeans, MinMaxBB, UKMeans
from repro.datagen import make_blobs_uncertain
from repro.engine import MultiRestartRunner, RestartRecord
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def data():
    # Moderate separation so different seeds reach different optima.
    return make_blobs_uncertain(
        n_objects=90, n_clusters=4, separation=2.5, seed=13
    )


@pytest.fixture
def tensor_spy(monkeypatch):
    """Counts UncertainDataset.sample_tensor calls (behavior intact)."""
    from repro.objects.dataset import UncertainDataset

    calls = {"count": 0}
    original = UncertainDataset.sample_tensor

    def counting(self, n_samples, seed=None):
        calls["count"] += 1
        return original(self, n_samples, seed)

    monkeypatch.setattr(UncertainDataset, "sample_tensor", counting)
    return calls


class TestMultiRestartRunner:
    def test_returns_best_objective(self, data):
        runner = MultiRestartRunner(UKMeans(4), n_init=8)
        best = runner.run(data, seed=3)
        history = best.extras["restart_history"]
        assert len(history) == 8
        objectives = [record["objective"] for record in history]
        assert best.objective == pytest.approx(min(objectives))
        assert history[best.extras["best_restart"]]["objective"] == pytest.approx(
            best.objective
        )

    def test_no_worse_than_single_restart(self, data):
        """Best-of-n is at least as good as the first restart alone."""
        runner = MultiRestartRunner(UKMeans(4), n_init=6)
        best = runner.run(data, seed=5)
        first = best.extras["restart_history"][0]["objective"]
        assert best.objective <= first + 1e-12

    def test_deterministic(self, data):
        a = MultiRestartRunner(UKMeans(4), n_init=5).run(data, seed=7)
        b = MultiRestartRunner(UKMeans(4), n_init=5).run(data, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.objective == b.objective

    def test_parallel_matches_sequential(self, data):
        sequential = MultiRestartRunner(UKMeans(4), n_init=6, n_jobs=1).run(
            data, seed=11
        )
        parallel = MultiRestartRunner(UKMeans(4), n_init=6, n_jobs=2).run(
            data, seed=11
        )
        np.testing.assert_array_equal(sequential.labels, parallel.labels)
        assert sequential.objective == parallel.objective
        assert parallel.extras["engine_jobs"] == 2

    def test_shared_sample_cache(self, data):
        clusterer = BasicUKMeans(4, n_samples=16)
        runner = MultiRestartRunner(clusterer, n_init=3, share_samples=True)
        best = runner.run(data, seed=2)
        assert best.extras["shared_samples"] is True
        # The cache is injected for the run and restored afterwards.
        assert clusterer.sample_cache is None

    def test_pinned_cache_honored(self, data):
        """A caller-pinned sample_cache survives fit_best untouched."""
        tensor = data.sample_tensor(16, seed=33)
        clusterer = BasicUKMeans(4, n_samples=16)
        clusterer.sample_cache = tensor
        best = MultiRestartRunner(clusterer, n_init=3).run(data, seed=2)
        assert best.extras["shared_samples"] is True
        assert clusterer.sample_cache is tensor
        # Restarts really used the pinned tensor: rerunning with the
        # same pin reproduces the result exactly.
        clusterer2 = BasicUKMeans(4, n_samples=16)
        clusterer2.sample_cache = tensor.copy()
        again = MultiRestartRunner(clusterer2, n_init=3).run(data, seed=2)
        np.testing.assert_array_equal(best.labels, again.labels)

    def test_objective_less_algorithms_flagged(self):
        from repro.clustering import FDBSCAN, FOPTICS, UAHC

        assert UKMeans.has_objective is True
        for cls in (FDBSCAN, FOPTICS, UAHC):
            assert cls.has_objective is False

    def test_objective_less_clusterer_warns_on_best_of(self, data):
        """run() cannot rank objective-less restarts and says so;
        run_all() aggregates without ranking, so it stays silent."""
        from repro.clustering import FDBSCAN

        runner = MultiRestartRunner(FDBSCAN(n_samples=4), n_init=2)
        with pytest.warns(UserWarning, match="no objective"):
            runner.run(data, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runner.run_all(data, seed=0)

    def test_shared_cache_off(self, data):
        best = MultiRestartRunner(
            BasicUKMeans(4, n_samples=16), n_init=2, share_samples=False
        ).run(data, seed=2)
        assert best.extras["shared_samples"] is False

    def test_moment_based_algorithms_skip_cache(self, data):
        best = MultiRestartRunner(UKMeans(4), n_init=2).run(data, seed=0)
        assert best.extras["shared_samples"] is False

    def test_pruning_variant_through_engine(self, data):
        best = MultiRestartRunner(MinMaxBB(4, n_samples=16), n_init=3).run(
            data, seed=4
        )
        assert best.n_clusters == 4
        assert best.extras["ed_pruned"] > 0

    def test_restart_record_fields(self, data):
        best = MultiRestartRunner(UKMeans(4), n_init=2).run(data, seed=1)
        record = best.extras["restart_history"][0]
        assert set(record) == {
            field for field in RestartRecord.__dataclass_fields__
        }
        assert best.extras["total_runtime_seconds"] >= 0.0

    def test_validation(self, data):
        with pytest.raises(InvalidParameterError):
            MultiRestartRunner(UKMeans(4), n_init=0)
        with pytest.raises(InvalidParameterError):
            MultiRestartRunner(UKMeans(4), n_jobs=0)

    def test_generator_seed(self, data):
        gen = np.random.default_rng(9)
        best = MultiRestartRunner(UKMeans(4), n_init=3).run(data, seed=gen)
        assert len(best.extras["restart_history"]) == 3


class TestRunAll:
    def test_returns_all_results_in_order(self, data):
        runner = MultiRestartRunner(UKMeans(4), n_init=5)
        results = runner.run_all(data, seed=3)
        assert len(results) == 5
        best = runner.run(data, seed=3)
        objectives = [r.objective for r in results]
        assert best.objective == pytest.approx(min(objectives))

    def test_moment_based_equals_direct_fits(self, data):
        """Moment-based algorithms consume no sample seed, so run_all
        is fit-for-fit identical to the direct per-seed loop."""
        from repro.utils.rng import spawn_rngs

        seeds = spawn_rngs(11, 4)
        direct = [UKMeans(4).fit(data, seed=s) for s in seeds]
        engine = MultiRestartRunner(UKMeans(4), n_init=1).run_all(
            data, seeds=spawn_rngs(11, 4)
        )
        for d, e in zip(direct, engine):
            np.testing.assert_array_equal(d.labels, e.labels)
            assert d.objective == e.objective

    def test_sample_based_equals_direct_fits_with_pinned_cache(self, data):
        """With the shared tensor pinned, engine restarts are identical
        to direct fits reading the same tensor."""
        tensor = data.sample_tensor(16, seed=21)
        seeds = [5, 6, 7]
        direct = []
        for s in seeds:
            algo = BasicUKMeans(4, n_samples=16)
            algo.sample_cache = tensor
            direct.append(algo.fit(data, seed=s))
        shared = BasicUKMeans(4, n_samples=16)
        shared.sample_cache = tensor.copy()
        engine = MultiRestartRunner(shared, n_init=1).run_all(data, seeds=seeds)
        for d, e in zip(direct, engine):
            np.testing.assert_array_equal(d.labels, e.labels)

    def test_empty_seeds_rejected(self, data):
        with pytest.raises(InvalidParameterError):
            MultiRestartRunner(UKMeans(4)).run_all(data, seeds=[])

    def test_sample_tensor_built_exactly_once(self, data, tensor_spy):
        """Spy: a multi-run engine execution draws one shared tensor."""
        runner = MultiRestartRunner(BasicUKMeans(4, n_samples=16), n_init=6)
        runner.run_all(data, seed=2)
        assert tensor_spy["count"] == 1


class TestExperimentEngineRouting:
    """The experiment runners route their per-run fits through the
    engine; for moment-based algorithms the engine path must reproduce
    the direct per-fit path measurement for measurement."""

    def test_fit_runs_engine_matches_direct_for_moment_based(self, data):
        from repro.engine import fit_runs
        from repro.utils.rng import spawn_rngs

        direct = fit_runs(UKMeans(4), data, spawn_rngs(7, 3), engine=False)
        routed = fit_runs(UKMeans(4), data, spawn_rngs(7, 3), engine=True)
        for d, e in zip(direct, routed):
            np.testing.assert_array_equal(d.labels, e.labels)
            assert d.objective == e.objective

    def test_fit_runs_shares_tensor_for_sample_based(self, data, tensor_spy):
        from repro.engine import fit_runs

        results = fit_runs(
            BasicUKMeans(4, n_samples=8), data, [0, 1, 2, 3], sample_seed=9
        )
        assert len(results) == 4
        assert tensor_spy["count"] == 1

    def test_fit_runs_shares_tensor_without_sample_seed(self, data, tensor_spy):
        """Regression: sample_seed=None must still mean *one* shared
        draw (from fresh entropy), not a per-restart draw."""
        from repro.engine import fit_runs

        fit_runs(BasicUKMeans(4, n_samples=8), data, [0, 1, 2])
        assert tensor_spy["count"] == 1

    def test_fit_runs_density_keeps_independent_draws(self, data, tensor_spy):
        """FDBSCAN's only randomness is the draw: fit_runs must not pin
        one tensor across its measurement runs (that would average n
        copies of a single realization) — and with per-run draws the
        engine path equals the direct path exactly."""
        from repro.clustering import FDBSCAN
        from repro.engine import fit_runs

        routed = fit_runs(FDBSCAN(n_samples=8), data, [0, 1, 2], sample_seed=9)
        assert tensor_spy["count"] == 3  # one independent draw per run
        direct = fit_runs(FDBSCAN(n_samples=8), data, [0, 1, 2], engine=False)
        for d, e in zip(direct, routed):
            np.testing.assert_array_equal(d.labels, e.labels)
        # Explicit opt-in to sharing is still possible (restart-style).
        tensor_spy["count"] = 0
        shared = fit_runs(
            FDBSCAN(n_samples=8), data, [0, 1, 2], sample_seed=9,
            share_samples=True,
        )
        assert tensor_spy["count"] == 1
        for result in shared[1:]:
            np.testing.assert_array_equal(shared[0].labels, result.labels)

    def test_mixed_roster_seed_drift_regression(self):
        """Regression: a sample-based algorithm earlier in the roster
        must not shift the seeds of later moment-based cells across the
        engine toggle (the shared-tensor stream is pre-spawned in both
        modes)."""
        from repro.experiments import ExperimentConfig, run_table3

        kwargs = dict(
            datasets=("neuroblastoma",),
            cluster_counts=(2,),
            algorithms=("FDB", "UKM", "MMV"),
        )
        routed = run_table3(
            ExperimentConfig(scale=0.004, n_runs=2, seed=31, n_samples=8, engine=True),
            **kwargs,
        )
        direct = run_table3(
            ExperimentConfig(scale=0.004, n_runs=2, seed=31, n_samples=8, engine=False),
            **kwargs,
        )
        for alg in ("UKM", "MMV"):
            key = ("neuroblastoma", 2, alg)
            assert routed.quality[key] == direct.quality[key]

    def test_table2_engine_path_identical_incl_density(self):
        """Moment-based algorithms consume no tensors; FDB/FOPT draw
        per-run independent tensors from the same run seeds either way
        — so the whole accuracy roster is engine/direct identical."""
        from repro.experiments import ExperimentConfig, run_table2

        kwargs = dict(
            datasets=("iris",),
            families=("normal",),
            algorithms=("FDB", "FOPT", "UKM", "MMV"),
        )
        routed = run_table2(
            ExperimentConfig(scale=0.08, n_runs=2, seed=42, n_samples=8, engine=True),
            **kwargs,
        )
        direct = run_table2(
            ExperimentConfig(scale=0.08, n_runs=2, seed=42, n_samples=8, engine=False),
            **kwargs,
        )
        assert routed.cells.keys() == direct.cells.keys()
        for key in routed.cells:
            assert routed.cells[key].theta == direct.cells[key].theta
            assert routed.cells[key].quality == direct.cells[key].quality

    def test_table3_engine_path_identical_for_moment_based(self):
        from repro.experiments import ExperimentConfig, run_table3

        kwargs = dict(
            datasets=("neuroblastoma",),
            cluster_counts=(2, 3),
            algorithms=("UKM", "MMV"),
        )
        routed = run_table3(
            ExperimentConfig(scale=0.004, n_runs=2, seed=17, engine=True),
            **kwargs,
        )
        direct = run_table3(
            ExperimentConfig(scale=0.004, n_runs=2, seed=17, engine=False),
            **kwargs,
        )
        assert routed.quality == direct.quality

    def test_figure4_engine_path_measures_same_grid(self):
        """Runtimes are wall-clock (not comparable value-for-value);
        the engine path must measure the same (dataset, algorithm) grid
        with positive on-line runtimes, including the density methods."""
        from repro.experiments import ExperimentConfig, run_figure4

        kwargs = dict(
            datasets=("abalone",),
            slow_group=("FDB", "FOPT"),
            fast_group=("UKM",),
            n_clusters=3,
        )
        routed = run_figure4(
            ExperimentConfig(scale=0.01, n_runs=2, seed=8, n_samples=8, engine=True),
            **kwargs,
        )
        direct = run_figure4(
            ExperimentConfig(scale=0.01, n_runs=2, seed=8, n_samples=8, engine=False),
            **kwargs,
        )
        assert routed.runtimes_ms.keys() == direct.runtimes_ms.keys()
        assert all(v > 0 for v in routed.runtimes_ms.values())

    def test_figure5_engine_path_measures_same_grid(self):
        from repro.experiments import ExperimentConfig, run_figure5

        kwargs = dict(fractions=(0.5, 1.0), algorithms=("UKM",), base_size=200)
        routed = run_figure5(
            ExperimentConfig(n_runs=1, seed=4, engine=True), **kwargs
        )
        direct = run_figure5(
            ExperimentConfig(n_runs=1, seed=4, engine=False), **kwargs
        )
        assert routed.runtimes_ms.keys() == direct.runtimes_ms.keys()
        assert routed.sizes == direct.sizes

    def test_protocol_engine_path_identical_for_moment_based(self, data):
        from repro.datagen.uncertainty_gen import UncertaintyGenerator
        from repro.evaluation.protocol import evaluate_theta_multirun

        points = data.mu_matrix
        labels = data.labels
        pair = UncertaintyGenerator(family="normal").generate(
            points, labels, seed=0
        )
        routed = evaluate_theta_multirun(
            UKMeans(4), pair, n_runs=3, seed=13, engine=True
        )
        direct = evaluate_theta_multirun(
            UKMeans(4), pair, n_runs=3, seed=13, engine=False
        )
        assert routed.theta_mean == direct.theta_mean
        assert routed.quality_mean == direct.quality_mean


class TestFitBest:
    def test_matches_runner(self, data):
        via_method = UKMeans(4).fit_best(data, seed=17, n_init=4)
        via_runner = MultiRestartRunner(UKMeans(4), n_init=4).run(data, seed=17)
        np.testing.assert_array_equal(via_method.labels, via_runner.labels)
        assert via_method.objective == via_runner.objective

    def test_sample_based_with_jobs(self, data):
        result = BasicUKMeans(4, n_samples=16).fit_best(
            data, seed=17, n_init=4, n_jobs=2
        )
        assert result.extras["n_init"] == 4
        assert result.extras["shared_samples"] is True
