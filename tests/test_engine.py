"""Tests for the multi-restart execution engine (repro.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import BasicUKMeans, MinMaxBB, UKMeans
from repro.datagen import make_blobs_uncertain
from repro.engine import MultiRestartRunner, RestartRecord
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def data():
    # Moderate separation so different seeds reach different optima.
    return make_blobs_uncertain(
        n_objects=90, n_clusters=4, separation=2.5, seed=13
    )


class TestMultiRestartRunner:
    def test_returns_best_objective(self, data):
        runner = MultiRestartRunner(UKMeans(4), n_init=8)
        best = runner.run(data, seed=3)
        history = best.extras["restart_history"]
        assert len(history) == 8
        objectives = [record["objective"] for record in history]
        assert best.objective == pytest.approx(min(objectives))
        assert history[best.extras["best_restart"]]["objective"] == pytest.approx(
            best.objective
        )

    def test_no_worse_than_single_restart(self, data):
        """Best-of-n is at least as good as the first restart alone."""
        runner = MultiRestartRunner(UKMeans(4), n_init=6)
        best = runner.run(data, seed=5)
        first = best.extras["restart_history"][0]["objective"]
        assert best.objective <= first + 1e-12

    def test_deterministic(self, data):
        a = MultiRestartRunner(UKMeans(4), n_init=5).run(data, seed=7)
        b = MultiRestartRunner(UKMeans(4), n_init=5).run(data, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.objective == b.objective

    def test_parallel_matches_sequential(self, data):
        sequential = MultiRestartRunner(UKMeans(4), n_init=6, n_jobs=1).run(
            data, seed=11
        )
        parallel = MultiRestartRunner(UKMeans(4), n_init=6, n_jobs=2).run(
            data, seed=11
        )
        np.testing.assert_array_equal(sequential.labels, parallel.labels)
        assert sequential.objective == parallel.objective
        assert parallel.extras["engine_jobs"] == 2

    def test_shared_sample_cache(self, data):
        clusterer = BasicUKMeans(4, n_samples=16)
        runner = MultiRestartRunner(clusterer, n_init=3, share_samples=True)
        best = runner.run(data, seed=2)
        assert best.extras["shared_samples"] is True
        # The cache is injected for the run and restored afterwards.
        assert clusterer.sample_cache is None

    def test_pinned_cache_honored(self, data):
        """A caller-pinned sample_cache survives fit_best untouched."""
        tensor = data.sample_tensor(16, seed=33)
        clusterer = BasicUKMeans(4, n_samples=16)
        clusterer.sample_cache = tensor
        best = MultiRestartRunner(clusterer, n_init=3).run(data, seed=2)
        assert best.extras["shared_samples"] is True
        assert clusterer.sample_cache is tensor
        # Restarts really used the pinned tensor: rerunning with the
        # same pin reproduces the result exactly.
        clusterer2 = BasicUKMeans(4, n_samples=16)
        clusterer2.sample_cache = tensor.copy()
        again = MultiRestartRunner(clusterer2, n_init=3).run(data, seed=2)
        np.testing.assert_array_equal(best.labels, again.labels)

    def test_objective_less_algorithms_flagged(self):
        from repro.clustering import FDBSCAN, FOPTICS, UAHC

        assert UKMeans.has_objective is True
        for cls in (FDBSCAN, FOPTICS, UAHC):
            assert cls.has_objective is False

    def test_objective_less_clusterer_warns(self):
        from repro.clustering import FDBSCAN

        with pytest.warns(UserWarning, match="no objective"):
            MultiRestartRunner(FDBSCAN(n_samples=4), n_init=2)

    def test_shared_cache_off(self, data):
        best = MultiRestartRunner(
            BasicUKMeans(4, n_samples=16), n_init=2, share_samples=False
        ).run(data, seed=2)
        assert best.extras["shared_samples"] is False

    def test_moment_based_algorithms_skip_cache(self, data):
        best = MultiRestartRunner(UKMeans(4), n_init=2).run(data, seed=0)
        assert best.extras["shared_samples"] is False

    def test_pruning_variant_through_engine(self, data):
        best = MultiRestartRunner(MinMaxBB(4, n_samples=16), n_init=3).run(
            data, seed=4
        )
        assert best.n_clusters == 4
        assert best.extras["ed_pruned"] > 0

    def test_restart_record_fields(self, data):
        best = MultiRestartRunner(UKMeans(4), n_init=2).run(data, seed=1)
        record = best.extras["restart_history"][0]
        assert set(record) == {
            field for field in RestartRecord.__dataclass_fields__
        }
        assert best.extras["total_runtime_seconds"] >= 0.0

    def test_validation(self, data):
        with pytest.raises(InvalidParameterError):
            MultiRestartRunner(UKMeans(4), n_init=0)
        with pytest.raises(InvalidParameterError):
            MultiRestartRunner(UKMeans(4), n_jobs=0)

    def test_generator_seed(self, data):
        gen = np.random.default_rng(9)
        best = MultiRestartRunner(UKMeans(4), n_init=3).run(data, seed=gen)
        assert len(best.extras["restart_history"]) == 3


class TestFitBest:
    def test_matches_runner(self, data):
        via_method = UKMeans(4).fit_best(data, seed=17, n_init=4)
        via_runner = MultiRestartRunner(UKMeans(4), n_init=4).run(data, seed=17)
        np.testing.assert_array_equal(via_method.labels, via_runner.labels)
        assert via_method.objective == via_runner.objective

    def test_sample_based_with_jobs(self, data):
        result = BasicUKMeans(4, n_samples=16).fit_best(
            data, seed=17, n_init=4, n_jobs=2
        )
        assert result.extras["n_init"] == 4
        assert result.extras["shared_samples"] is True
