"""Tests for the Monte Carlo / Metropolis-Hastings samplers (S2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.uncertainty import (
    BoxRegion,
    IndependentProduct,
    MetropolisHastingsSampler,
    MonteCarloSampler,
    TruncatedNormalDistribution,
    UniformDistribution,
)


def _target_2d():
    return IndependentProduct(
        [
            TruncatedNormalDistribution(1.0, 0.4, 0.0, 2.0),
            UniformDistribution(-1.0, 1.0),
        ]
    )


class TestMonteCarloSampler:
    def test_draw_shape(self):
        sampler = MonteCarloSampler(seed=0)
        samples = sampler.draw(_target_2d(), 100)
        assert samples.shape == (100, 2)

    def test_draw_one(self):
        sampler = MonteCarloSampler(seed=0)
        assert sampler.draw_one(_target_2d()).shape == (2,)

    def test_reproducible_with_seed(self):
        a = MonteCarloSampler(seed=11).draw(_target_2d(), 50)
        b = MonteCarloSampler(seed=11).draw(_target_2d(), 50)
        assert np.array_equal(a, b)

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            MonteCarloSampler(seed=0).draw(_target_2d(), 0)


class TestMetropolisHastings:
    def test_samples_stay_in_region(self):
        target = _target_2d()
        sampler = MetropolisHastingsSampler(seed=0)
        samples = sampler.draw(target.pdf, target.region, 300)
        assert samples.shape == (300, 2)
        for row in samples:
            assert target.region.contains(row, atol=1e-9)

    def test_mean_converges_to_target(self):
        target = _target_2d()
        sampler = MetropolisHastingsSampler(seed=1, burn_in=300, thin=3)
        samples = sampler.draw(target.pdf, target.region, 4000)
        assert np.allclose(samples.mean(axis=0), target.mean_vector, atol=0.08)

    def test_diagnostics_recorded(self):
        target = _target_2d()
        sampler = MetropolisHastingsSampler(seed=2)
        sampler.draw(target.pdf, target.region, 100)
        diag = sampler.last_diagnostics
        assert diag is not None
        assert 0.0 < diag.acceptance_rate <= 1.0
        assert diag.proposed >= 100

    def test_explicit_initial_state(self):
        target = _target_2d()
        sampler = MetropolisHastingsSampler(seed=3)
        samples = sampler.draw(
            target.pdf, target.region, 10, initial=[1.0, 0.0]
        )
        assert samples.shape == (10, 2)

    def test_initial_outside_region_rejected(self):
        target = _target_2d()
        sampler = MetropolisHastingsSampler(seed=4)
        with pytest.raises(InvalidParameterError):
            sampler.draw(target.pdf, target.region, 10, initial=[10.0, 0.0])

    def test_invalid_hyperparameters(self):
        with pytest.raises(InvalidParameterError):
            MetropolisHastingsSampler(step_scale=0.0)
        with pytest.raises(InvalidParameterError):
            MetropolisHastingsSampler(burn_in=-1)
        with pytest.raises(InvalidParameterError):
            MetropolisHastingsSampler(thin=0)

    def test_zero_density_center_recovers(self):
        """A bimodal target whose region center has zero density."""
        def pdf(points):
            x = points[:, 0]
            return np.where((np.abs(x) > 0.5) & (np.abs(x) < 1.0), 1.0, 0.0)

        region = BoxRegion([-1.0], [1.0])
        sampler = MetropolisHastingsSampler(seed=5, burn_in=50)
        samples = sampler.draw(pdf, region, 200)
        assert np.all((np.abs(samples[:, 0]) > 0.5) & (np.abs(samples[:, 0]) < 1.0))

    def test_acceptance_rate_zero_when_no_proposals(self):
        from repro.uncertainty.sampling import MCMCDiagnostics

        assert MCMCDiagnostics(proposed=0, accepted=0).acceptance_rate == 0.0
