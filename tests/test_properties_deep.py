"""Deeper hypothesis property tests across the library's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import ClusterStats, j_mm, j_uk, j_ucpc
from repro.evaluation import adjusted_rand_index, f_measure, purity
from repro.objects import (
    UncertainDataset,
    UncertainObject,
    pairwise_squared_expected_distances,
    squared_expected_distance,
)
from repro.uncertainty import (
    IndependentProduct,
    MixtureDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)

# Reusable strategies -------------------------------------------------------

finite_mean = st.floats(min_value=-50, max_value=50)
small_width = st.floats(min_value=0.01, max_value=10)

uniform_objects = st.lists(
    st.tuples(finite_mean, small_width), min_size=1, max_size=8
).map(
    lambda params: [
        UncertainObject.uniform_box([m], [w]) for m, w in params
    ]
)


class TestDistanceProperties:
    @given(
        a=st.tuples(finite_mean, small_width),
        b=st.tuples(finite_mean, small_width),
    )
    @settings(max_examples=80, deadline=None)
    def test_ehat_lower_bound_is_variance_sum(self, a, b):
        """ÊD(o, o') >= sigma^2(o) + sigma^2(o') with equality iff means
        coincide (Lemma 3's closed form)."""
        obj_a = UncertainObject.uniform_box([a[0]], [a[1]])
        obj_b = UncertainObject.uniform_box([b[0]], [b[1]])
        ed = squared_expected_distance(obj_a, obj_b)
        floor = obj_a.total_variance + obj_b.total_variance
        assert ed >= floor - 1e-9
        if a[0] == b[0]:
            assert ed == pytest.approx(floor)

    @given(uniform_objects)
    @settings(max_examples=50, deadline=None)
    def test_pairwise_matrix_consistent_with_scalar(self, objects):
        dataset = UncertainDataset(objects)
        matrix = pairwise_squared_expected_distances(dataset)
        for i in range(len(objects)):
            assert matrix[i, i] == pytest.approx(
                2.0 * objects[i].total_variance, abs=1e-6
            )


class TestObjectiveProperties:
    @given(uniform_objects)
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, objects):
        """All cluster objectives are set functions: order must not matter."""
        reversed_objects = list(reversed(objects))
        assert j_uk(objects) == pytest.approx(
            j_uk(reversed_objects), rel=1e-9, abs=1e-9
        )
        assert j_mm(objects) == pytest.approx(
            j_mm(reversed_objects), rel=1e-9, abs=1e-9
        )
        assert j_ucpc(objects) == pytest.approx(
            j_ucpc(reversed_objects), rel=1e-9, abs=1e-9
        )

    @given(uniform_objects)
    @settings(max_examples=60, deadline=None)
    def test_objectives_nonnegative(self, objects):
        assert j_uk(objects) >= -1e-9
        assert j_mm(objects) >= -1e-9
        assert j_ucpc(objects) >= -1e-9

    @given(uniform_objects, st.tuples(finite_mean, small_width))
    @settings(max_examples=60, deadline=None)
    def test_stats_add_then_remove_is_identity(self, objects, extra):
        stats = ClusterStats.from_objects(objects)
        before = stats.objective()
        obj = UncertainObject.uniform_box([extra[0]], [extra[1]])
        stats.add(obj)
        stats.remove(obj)
        assert stats.objective() == pytest.approx(before, rel=1e-6, abs=1e-6)

    @given(uniform_objects)
    @settings(max_examples=40, deadline=None)
    def test_translation_shifts_only_upsilon(self, objects):
        """Translating every object by t leaves J(C) unchanged (J is a
        function of pairwise structure, not absolute position)."""
        shift = 7.5
        translated = [
            UncertainObject.uniform_box([obj.mu[0] + shift],
                                        [(obj.region.widths[0]) / 2.0])
            for obj in objects
        ]
        assert j_ucpc(objects) == pytest.approx(
            j_ucpc(translated), rel=1e-6, abs=1e-6
        )


class TestMixtureProperties:
    @given(
        st.lists(
            st.tuples(finite_mean, small_width), min_size=2, max_size=6
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mixture_mean_is_convex_combination(self, params):
        components = [
            IndependentProduct([UniformDistribution.centered(m, w)])
            for m, w in params
        ]
        mix = MixtureDistribution(components)
        means = [c.mean_vector[0] for c in components]
        assert min(means) - 1e-9 <= mix.mean_vector[0] <= max(means) + 1e-9

    @given(
        loc=finite_mean,
        scale=st.floats(min_value=0.05, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_mixture_of_identical_components_is_component(self, loc, scale):
        comp = IndependentProduct(
            [TruncatedNormalDistribution.central_mass(loc, scale, 0.95)]
        )
        mix = MixtureDistribution([comp, comp, comp])
        assert mix.mean_vector[0] == pytest.approx(comp.mean_vector[0])
        assert mix.total_variance == pytest.approx(comp.total_variance)


class TestExternalCriteriaProperties:
    labelings = st.lists(
        st.integers(min_value=0, max_value=4), min_size=4, max_size=40
    )

    @given(labelings, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_relabeling_invariance(self, labels, seed):
        """Permuting cluster ids never changes any external score."""
        rng = np.random.default_rng(seed)
        pred = np.array(labels)
        ref = rng.integers(0, 3, size=pred.size)
        permutation = rng.permutation(5)
        permuted = permutation[pred]
        assert f_measure(pred, ref) == pytest.approx(f_measure(permuted, ref))
        assert purity(pred, ref) == pytest.approx(purity(permuted, ref))
        assert adjusted_rand_index(pred, ref) == pytest.approx(
            adjusted_rand_index(permuted, ref)
        )

    @given(labelings)
    @settings(max_examples=40, deadline=None)
    def test_refinement_does_not_lower_purity(self, labels):
        """Splitting any cluster into singletons can only raise purity."""
        pred = np.array(labels)
        ref = pred.copy()
        singletons = np.arange(pred.size)
        assert purity(singletons, ref) >= purity(pred, ref) - 1e-12
