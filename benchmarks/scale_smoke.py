"""CI smoke for the million-object scale path (n=20k synthetic roster).

Runs the scale-path variants on one synthetic 20_000-object roster with
their exactness assertions **on**:

* Elkan- and Hamerly-bounded UK-means must reproduce ``BasicUKMeans``
  labels bit for bit, and the Elkan counters must show >= 50% of
  assignment-row ED evaluations skipped;
* mini-batch UK-means (lossy) must still recover the planted structure;
* radius-prefiltered FDBSCAN must match the dense path exactly (checked
  at n=4000 — the dense reference is quadratic, the prefiltered path is
  what scales);
* kNN-capped FOPTICS must produce a full ordering at n=20_000 without
  ever materializing the dense ÊD matrix.

Wall-clock timings for every stage are written as JSON so CI can upload
them as an artifact and regressions stay visible across commits.

Usage::

    PYTHONPATH=src python benchmarks/scale_smoke.py --output scale_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import warnings
from pathlib import Path
from typing import List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.clustering import (
    FDBSCAN,
    FOPTICS,
    BasicUKMeans,
    BoundedUKMeans,
    MiniBatchUKMeans,
)
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure
from repro.exceptions import ConvergenceWarning

N_OBJECTS = 20_000
N_CLUSTERS = 20
N_ATTRIBUTES = 8
N_MC_SAMPLES = 32
MAX_ITER = 5
DENSITY_N = 4000  # dense FDBSCAN reference is O(n^2); keep it honest


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run_smoke() -> List[dict]:
    records: List[dict] = []

    def record(name: str, seconds: float, **meta) -> None:
        records.append({"name": name, "seconds": seconds, **meta})
        extra = " ".join(f"{k}={v}" for k, v in meta.items())
        print(f"{name:32s} {seconds * 1e3:9.1f} ms  {extra}")

    data, gen_time = _timed(
        lambda: make_blobs_uncertain(
            n_objects=N_OBJECTS,
            n_clusters=N_CLUSTERS,
            n_attributes=N_ATTRIBUTES,
            separation=3.0,
            seed=42,
        )
    )
    record("datagen", gen_time, n=N_OBJECTS, k=N_CLUSTERS, m=N_ATTRIBUTES)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)

        basic, basic_time = _timed(
            lambda: BasicUKMeans(
                N_CLUSTERS, n_samples=N_MC_SAMPLES, max_iter=MAX_ITER
            ).fit(data, seed=0)
        )
        record("basic_ukmeans", basic_time, S=N_MC_SAMPLES)

        for bounds in ("elkan", "hamerly"):
            bounded, seconds = _timed(
                lambda: BoundedUKMeans(
                    N_CLUSTERS,
                    n_samples=N_MC_SAMPLES,
                    max_iter=MAX_ITER,
                    bounds=bounds,
                ).fit(data, seed=0)
            )
            # The lossless contract, asserted at scale on every CI run.
            np.testing.assert_array_equal(
                basic.labels,
                bounded.labels,
                err_msg=f"bounds={bounds} diverged from BasicUKMeans",
            )
            skip_rate = bounded.extras["skip_rate"]
            if bounds == "elkan":
                assert skip_rate >= 0.5, (
                    f"elkan skip rate {skip_rate:.3f} below the 0.5 floor"
                )
            record(
                f"bounded_ukmeans_{bounds}",
                seconds,
                skip_rate=round(skip_rate, 4),
                speedup=round(basic_time / seconds, 2),
            )

        mini, seconds = _timed(
            lambda: MiniBatchUKMeans(N_CLUSTERS, batch_size=1024).fit(
                data, seed=0
            )
        )
        score = f_measure(mini.labels, data.labels)
        assert score > 0.5, f"mini-batch lost the planted structure: {score}"
        record(
            "minibatch_ukmeans",
            seconds,
            f_measure=round(score, 3),
            objects_seen=mini.extras["objects_seen"],
        )

    density_data = make_blobs_uncertain(
        n_objects=DENSITY_N,
        n_clusters=5,
        n_attributes=N_ATTRIBUTES,
        separation=4.0,
        seed=7,
    )
    dense, dense_time = _timed(
        lambda: FDBSCAN(n_samples=16).fit(density_data, seed=0)
    )
    fast, fast_time = _timed(
        lambda: FDBSCAN(n_samples=16, prefilter=True).fit(density_data, seed=0)
    )
    np.testing.assert_array_equal(
        dense.labels, fast.labels, err_msg="prefiltered FDBSCAN diverged"
    )
    # At this size the dense blocked-GEMM kernel can still out-run the
    # gathered survivor kernels; the prefilter's win is the O(kept
    # pairs) memory/compute *bound* (no dense n^2 probability matrix),
    # which is what lets FDBSCAN leave the paper's n ceiling at all.
    record("fdbscan_dense", dense_time, n=DENSITY_N)
    record(
        "fdbscan_prefiltered",
        fast_time,
        n=DENSITY_N,
        pair_prune_rate=round(fast.extras["pair_prune_rate"], 4),
    )

    capped, seconds = _timed(
        lambda: FOPTICS(n_samples=16, n_clusters=N_CLUSTERS, knn_cap=64).fit(
            data, seed=0
        )
    )
    assert len(capped.extras["ordering"]) == N_OBJECTS
    record(
        "foptics_knn_capped",
        seconds,
        n=N_OBJECTS,
        knn_cap=64,
        n_graph_edges=capped.extras["n_graph_edges"],
    )
    return records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Scale-path smoke: exactness assertions + timings JSON."
    )
    parser.add_argument(
        "--output", default="scale_smoke.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    records = run_smoke()
    payload = {
        "schema": 1,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "benchmarks": records,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
