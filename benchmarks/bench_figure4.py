"""Benchmark harness for Figure 4 (E3) — the efficiency comparison itself.

pytest-benchmark's timing table IS the reproduction artifact here: one
bench per (dataset, algorithm) pair over the paper's slow/fast rosters,
grouped per dataset so the relative ordering (slow group orders of
magnitude above UCPC; UCPC ~ UK-means ~ MMVar; pruning variants between
bUKM and UKM) is directly visible in the output.
"""

from __future__ import annotations

import pytest

from repro.datagen import UncertaintyGenerator, make_benchmark, make_microarray
from repro.experiments import FAST_ROSTER, SLOW_ROSTER, build_algorithm

#: Figure 4's roster with UCPC appended to both groups, deduplicated.
ALGORITHMS = list(dict.fromkeys(list(SLOW_ROSTER) + list(FAST_ROSTER) + ["UCPC"]))


def _benchmark_dataset(name, bench_config):
    if name in ("neuroblastoma", "leukaemia"):
        return make_microarray(
            name, scale=min(bench_config.scale * 0.2, 1.0), seed=bench_config.seed
        )
    points, labels = make_benchmark(
        name, scale=bench_config.scale, seed=bench_config.seed
    )
    generator = UncertaintyGenerator(family="normal", spread=bench_config.spread)
    return generator.uncertain_dataset(points, labels, seed=bench_config.seed)


@pytest.fixture(scope="module")
def abalone(bench_config):
    return _benchmark_dataset("abalone", bench_config)


@pytest.fixture(scope="module")
def letter(bench_config):
    return _benchmark_dataset("letter", bench_config)


@pytest.fixture(scope="module")
def neuroblastoma(bench_config):
    return _benchmark_dataset("neuroblastoma", bench_config)


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_abalone_runtime(benchmark, abalone, algorithm_name, bench_config):
    algorithm = build_algorithm(
        algorithm_name, n_clusters=17, n_samples=bench_config.n_samples
    )
    benchmark.group = "figure4-abalone"
    benchmark(algorithm.fit, abalone, seed=5)


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_letter_runtime(benchmark, letter, algorithm_name, bench_config):
    algorithm = build_algorithm(
        algorithm_name, n_clusters=10, n_samples=bench_config.n_samples
    )
    benchmark.group = "figure4-letter"
    benchmark(algorithm.fit, letter, seed=5)


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_microarray_runtime(
    benchmark, neuroblastoma, algorithm_name, bench_config
):
    algorithm = build_algorithm(
        algorithm_name, n_clusters=10, n_samples=bench_config.n_samples
    )
    benchmark.group = "figure4-neuroblastoma"
    benchmark(algorithm.fit, neuroblastoma, seed=5)
