"""Benchmark harness for Figure 5 (E4) — scalability on the KDD workload.

One bench per (fraction, algorithm): the benchmark table shows runtime
growing linearly with the dataset fraction for every fast algorithm,
which is the paper's scalability claim.
"""

from __future__ import annotations

import pytest

from repro.datagen import UncertaintyGenerator, make_benchmark
from repro.experiments import SCALABILITY_ROSTER, build_algorithm
from repro.experiments.figure5 import FIGURE5_K

#: Base object count of the 100% fraction (paper: 4M; see DESIGN.md §4).
#: Scaled down so the full sweep (4 fractions x 5 algorithms) stays in
#: benchmark territory; raise via REPRO_BENCH_SCALE for larger runs.
BASE_SIZE = 4000

FRACTIONS = (0.05, 0.25, 0.5, 1.0)


@pytest.fixture(scope="module")
def kdd_full(bench_config):
    import os

    base = int(BASE_SIZE * float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    scale = min(1.0, max(base, 200) / 4_000_000)
    points, labels = make_benchmark("kddcup99", scale=scale, seed=bench_config.seed)
    generator = UncertaintyGenerator(family="normal", spread=bench_config.spread)
    return generator.uncertain_dataset(points, labels, seed=bench_config.seed)


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("algorithm_name", SCALABILITY_ROSTER)
def test_scalability(benchmark, kdd_full, algorithm_name, fraction, bench_config):
    subset = kdd_full.sample_fraction(fraction, seed=3, stratified=True)
    k = min(FIGURE5_K, len(subset) - 1)
    algorithm = build_algorithm(
        algorithm_name, n_clusters=k, n_samples=bench_config.n_samples
    )
    benchmark.group = f"figure5-{algorithm_name}"
    benchmark.extra_info["n_objects"] = len(subset)
    # One round per point: the series across fractions is the artifact,
    # not per-point variance, and the pruning variants are costly.
    benchmark.pedantic(
        algorithm.fit, args=(subset,), kwargs={"seed": 5}, rounds=1, iterations=1
    )
