"""Benchmark harness for Table 2 (E1) — accuracy on benchmark datasets.

Times the Case-2 clustering step of every accuracy-roster algorithm on a
representative benchmark workload, and regenerates a reduced Table 2
end-to-end.  The accuracy numbers themselves are produced by
``repro.experiments.run_table2`` (see EXPERIMENTS.md); the benches here
pin the per-algorithm cost that the table's 50-run averaging multiplies.
"""

from __future__ import annotations

import pytest

from repro.datagen import UncertaintyGenerator, make_benchmark
from repro.experiments import ACCURACY_ROSTER, build_algorithm, run_table2
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def workload(bench_config):
    """Case-2 uncertain dataset for the 'ecoli' stand-in, Normal pdfs."""
    points, labels = make_benchmark(
        "ecoli", scale=max(bench_config.scale, 0.3), seed=bench_config.seed
    )
    generator = UncertaintyGenerator(family="normal", spread=bench_config.spread)
    pair = generator.generate(points, labels, seed=bench_config.seed)
    n_classes = int(max(labels)) + 1
    return pair.uncertain, n_classes


@pytest.mark.parametrize("algorithm_name", ACCURACY_ROSTER)
def test_case2_clustering(benchmark, workload, algorithm_name, bench_config):
    """One Case-2 clustering run per roster algorithm (Table 2's inner loop)."""
    dataset, n_classes = workload
    algorithm = build_algorithm(
        algorithm_name, n_clusters=n_classes, n_samples=bench_config.n_samples
    )
    benchmark.group = "table2-case2-clustering"
    benchmark(algorithm.fit, dataset, seed=7)


def test_table2_end_to_end(benchmark, bench_config):
    """Full reduced Table 2 (2 datasets x 2 pdfs x 3 algorithms)."""
    config = ExperimentConfig(
        scale=bench_config.scale,
        n_runs=1,
        seed=bench_config.seed,
        n_samples=bench_config.n_samples,
    )
    benchmark.group = "table2-end-to-end"
    report = benchmark(
        run_table2,
        config,
        datasets=("iris", "glass"),
        families=("uniform", "normal"),
        algorithms=("UKM", "MMV", "UCPC"),
    )
    assert len(report.cells) == 12
