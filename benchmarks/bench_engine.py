"""Benchmarks of the batch execution engine.

Pins the two claims the engine layer makes:

* :meth:`UncertainDataset.sample_tensor` beats the per-object sampling
  loop it replaced by a wide margin (the off-line phase of every
  sample-based algorithm) — asserted at >= 5x for n=2000, S=64;
* multi-restart execution amortizes the off-line work: ``n_init``
  restarts through :class:`MultiRestartRunner` with a shared sample
  cache cost far less than ``n_init`` independent fits.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.clustering import BasicUKMeans, MinMaxBB
from repro.datagen import make_blobs_uncertain
from repro.engine import MultiRestartRunner
from repro.objects import UncertainDataset, UncertainObject
from repro.utils.rng import ensure_rng

N_OBJECTS = 2000
N_SAMPLES = 64


@pytest.fixture(scope="module")
def data():
    """Uniform-family dataset: every marginal takes the batched path.

    The Uniform quantile transform is a single fused multiply-add, so
    this family isolates the Python-dispatch overhead the batched
    sampler eliminates (heavier families like truncated-Normal spend
    most of their time inside ``ndtri`` on both paths).
    """
    rng = np.random.default_rng(11)
    centers = rng.normal(0.0, 10.0, size=(N_OBJECTS, 2))
    widths = rng.uniform(0.2, 2.0, size=(N_OBJECTS, 2))
    return UncertainDataset(
        [
            UncertainObject.uniform_box(centers[i], widths[i], label=0)
            for i in range(N_OBJECTS)
        ]
    )


def _per_object_loop(dataset, n_samples, seed):
    """The replaced idiom: one Python-level sample call per object."""
    rng = ensure_rng(seed)
    out = np.empty((len(dataset), n_samples, dataset.dim))
    for idx, obj in enumerate(dataset):
        out[idx] = obj.sample(n_samples, rng)
    return out


def test_sample_tensor_batched(benchmark, data):
    benchmark.group = "off-line-sampling"
    benchmark(data.sample_tensor, N_SAMPLES, 0)


def test_sample_tensor_per_object(benchmark, data):
    benchmark.group = "off-line-sampling"
    benchmark(_per_object_loop, data, N_SAMPLES, 0)


def test_sample_tensor_speedup_floor(data):
    """Acceptance pin: batched sampling >= 5x the per-object loop."""
    # Warm both paths once so neither pays first-call import/alloc cost.
    data.sample_tensor(N_SAMPLES, 0)
    _per_object_loop(data, N_SAMPLES, 0)

    def best_of(fn, repeats=3):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    batched = best_of(lambda: data.sample_tensor(N_SAMPLES, 0))
    looped = best_of(lambda: _per_object_loop(data, N_SAMPLES, 0))
    speedup = looped / batched
    assert speedup >= 5.0, (
        f"sample_tensor speedup {speedup:.1f}x below the 5x floor "
        f"(batched {batched * 1e3:.1f} ms, per-object {looped * 1e3:.1f} ms)"
    )


@pytest.fixture(scope="module")
def small_data():
    return make_blobs_uncertain(
        n_objects=400, n_clusters=4, separation=4.0, seed=11
    )


def test_multi_restart_shared_cache(benchmark, small_data):
    benchmark.group = "multi-restart"
    runner = MultiRestartRunner(
        BasicUKMeans(4, n_samples=32), n_init=5, share_samples=True
    )
    benchmark(runner.run, small_data, 0)


def test_multi_restart_fresh_samples(benchmark, small_data):
    benchmark.group = "multi-restart"
    runner = MultiRestartRunner(
        BasicUKMeans(4, n_samples=32), n_init=5, share_samples=False
    )
    benchmark(runner.run, small_data, 0)


def test_multi_restart_pruned(benchmark, small_data):
    benchmark.group = "multi-restart"
    runner = MultiRestartRunner(
        MinMaxBB(4, n_samples=32), n_init=5, share_samples=True
    )
    benchmark(runner.run, small_data, 0)
