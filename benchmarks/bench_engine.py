"""Benchmarks of the batch execution engine.

Pins the claims the engine layer makes:

* :meth:`UncertainDataset.sample_tensor` beats the per-object sampling
  loop it replaced by a wide margin (the off-line phase of every
  sample-based algorithm) — asserted at >= 5x for n=2000, S=64;
* multi-restart execution amortizes the off-line work: ``n_init``
  restarts through :class:`MultiRestartRunner` with a shared sample
  cache cost far less than ``n_init`` independent fits;
* the ported density clustering (batched sampling + blocked GEMM
  probability kernel) beats the pre-port per-object FDBSCAN — asserted
  at >= 3x for n=1000, S=64;
* the ``threads`` execution backend runs 16 moment-based restarts at
  paper scale (n=5000, m=16) >= 2x faster than ``serial`` on parallel
  hardware — asserted when >= 4 cores are available.  The floor is
  pinned on the moment-based roster (UK-means), whose per-iteration
  kernels are large GIL-releasing numpy ops; UCPC's relocation sweep is
  an inherently sequential per-object Python loop, so threads cannot
  speed it up on CPython — it is measured alongside for the record (and
  routed to the ``processes`` backend by the README's backend matrix);
* the pairwise-distance plane amortizes UK-medoids' off-line ``ÊD``
  matrix across an engine run-set: a paper-scale multi-restart run
  (n=2000, n_init=8) with the shared plane is asserted >= 4x faster
  than the pre-plane per-restart recompute it replaced — same seeds,
  bit-identical results;
* the sweep orchestrator runs a small paper grid (2 microarray
  datasets x 3 algorithms x 2 cluster counts at paper-shaped scale)
  >= 2x faster than the same cells executed as isolated per-cell runs
  (each regenerating its dataset and rebuilding the
  moment/plan/``ÊD`` caches) — with bit-identical cell values;
* report-shaped aggregation (metric summary + best-of-group +
  rank-over-grid) over a ~10k-cell synthetic result store is >= 5x
  faster on the SQLite columnar backend (indexed SQL: GROUP BY +
  window functions) than on the JSON directory backend's full-scan
  reference reads — with identical result rows;
* the multi-worker sweep (two claim-based worker processes leasing
  cells off one shared store) finishes a compute-dominated small grid
  >= 1.6x faster than a single worker on parallel hardware — asserted
  when >= 2 cores are available, always with a store logically
  identical to the single-worker run's;
* the million-object scale path: Elkan-bounded UK-means reproduces
  ``BasicUKMeans`` bit for bit at n=100_000 (S=32, m=8, k=20) while
  running >= 2x faster (measured ~5x on the reference box), and the
  bound counters prove >= 50% of assignment-row ED evaluations are
  skipped at n=20_000.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np
import pytest

from repro.clustering import (
    FDBSCAN,
    UCPC,
    BasicUKMeans,
    MinMaxBB,
    UKMeans,
    UKMedoids,
    auto_eps,
)
from repro.datagen import make_blobs_uncertain
from repro.engine import MultiRestartRunner
from repro.exceptions import ConvergenceWarning
from repro.objects import UncertainDataset, UncertainObject
from repro.utils.rng import ensure_rng

N_OBJECTS = 2000
N_SAMPLES = 64


def _best_of(fn, repeats):
    """Best-of-``repeats`` wall-clock seconds for the timing floors."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


@pytest.fixture(scope="module")
def data():
    """Uniform-family dataset: every marginal takes the batched path.

    The Uniform quantile transform is a single fused multiply-add, so
    this family isolates the Python-dispatch overhead the batched
    sampler eliminates (heavier families like truncated-Normal spend
    most of their time inside ``ndtri`` on both paths).
    """
    rng = np.random.default_rng(11)
    centers = rng.normal(0.0, 10.0, size=(N_OBJECTS, 2))
    widths = rng.uniform(0.2, 2.0, size=(N_OBJECTS, 2))
    return UncertainDataset(
        [
            UncertainObject.uniform_box(centers[i], widths[i], label=0)
            for i in range(N_OBJECTS)
        ]
    )


def _per_object_loop(dataset, n_samples, seed):
    """The replaced idiom: one Python-level sample call per object."""
    rng = ensure_rng(seed)
    out = np.empty((len(dataset), n_samples, dataset.dim))
    for idx, obj in enumerate(dataset):
        out[idx] = obj.sample(n_samples, rng)
    return out


def test_sample_tensor_batched(benchmark, data):
    benchmark.group = "off-line-sampling"
    benchmark(data.sample_tensor, N_SAMPLES, 0)


def test_sample_tensor_per_object(benchmark, data):
    benchmark.group = "off-line-sampling"
    benchmark(_per_object_loop, data, N_SAMPLES, 0)


def test_sample_tensor_speedup_floor(data):
    """Acceptance pin: batched sampling >= 5x the per-object loop."""
    # Warm both paths once so neither pays first-call import/alloc cost.
    data.sample_tensor(N_SAMPLES, 0)
    _per_object_loop(data, N_SAMPLES, 0)

    batched = _best_of(lambda: data.sample_tensor(N_SAMPLES, 0), repeats=3)
    looped = _best_of(lambda: _per_object_loop(data, N_SAMPLES, 0), repeats=3)
    speedup = looped / batched
    assert speedup >= 5.0, (
        f"sample_tensor speedup {speedup:.1f}x below the 5x floor "
        f"(batched {batched * 1e3:.1f} ms, per-object {looped * 1e3:.1f} ms)"
    )


@pytest.fixture(scope="module")
def small_data():
    return make_blobs_uncertain(
        n_objects=400, n_clusters=4, separation=4.0, seed=11
    )


def test_multi_restart_shared_cache(benchmark, small_data):
    benchmark.group = "multi-restart"
    runner = MultiRestartRunner(
        BasicUKMeans(4, n_samples=32), n_init=5, share_samples=True
    )
    benchmark(runner.run, small_data, 0)


def test_multi_restart_fresh_samples(benchmark, small_data):
    benchmark.group = "multi-restart"
    runner = MultiRestartRunner(
        BasicUKMeans(4, n_samples=32), n_init=5, share_samples=False
    )
    benchmark(runner.run, small_data, 0)


def test_multi_restart_pruned(benchmark, small_data):
    benchmark.group = "multi-restart"
    runner = MultiRestartRunner(
        MinMaxBB(4, n_samples=32), n_init=5, share_samples=True
    )
    benchmark(runner.run, small_data, 0)


# ----------------------------------------------------------------------
# Density clustering: ported FDBSCAN vs the pre-port implementation.
# ----------------------------------------------------------------------
DENSITY_N = 1000
DENSITY_S = 64
DENSITY_M = 16  # Letter-dataset dimensionality (Table 1-(a))


@pytest.fixture(scope="module")
def density_data():
    """Paper-shaped workload for the density port (n=1000, S=64, m=16)."""
    return make_blobs_uncertain(
        n_objects=DENSITY_N, n_clusters=5, n_attributes=DENSITY_M, seed=7
    )


def _legacy_fdbscan_fit(model, dataset, seed):
    """The pre-port FDBSCAN: per-object sampling + row-loop estimator."""
    rng = ensure_rng(seed)
    eps = model.eps if model.eps is not None else auto_eps(
        dataset, model.eps_quantile
    )
    samples = np.empty((len(dataset), model.n_samples, dataset.dim))
    for idx, obj in enumerate(dataset):
        samples[idx] = obj.sample(model.n_samples, rng)
    n = samples.shape[0]
    eps_sq = eps * eps
    probs = np.eye(n)
    for i in range(n - 1):
        diff = samples[i + 1 :] - samples[i]
        within = np.einsum("nsm,nsm->ns", diff, diff) <= eps_sq
        p = within.mean(axis=1)
        probs[i, i + 1 :] = p
        probs[i + 1 :, i] = p
    expected_neighbors = probs.sum(axis=1)
    is_core = expected_neighbors >= model.min_pts
    return FDBSCAN._expand(is_core, probs >= model.reach_prob)


def test_density_ported(benchmark, density_data):
    benchmark.group = "density-clustering"
    model = FDBSCAN(n_samples=DENSITY_S)
    benchmark(model.fit, density_data, 0)


def test_density_legacy(benchmark, density_data):
    benchmark.group = "density-clustering"
    model = FDBSCAN(n_samples=DENSITY_S)
    benchmark(_legacy_fdbscan_fit, model, density_data, 0)


# ----------------------------------------------------------------------
# Execution backends: threaded restarts at paper scale.
# ----------------------------------------------------------------------
BACKEND_N = 5000
BACKEND_M = 16
BACKEND_RESTARTS = 16
BACKEND_K = 8


@pytest.fixture(scope="module")
def backend_data():
    """Paper-scale moment workload (n=5000, m=16 — Letter-sized rows)."""
    return make_blobs_uncertain(
        n_objects=BACKEND_N,
        n_clusters=BACKEND_K,
        n_attributes=BACKEND_M,
        separation=3.0,
        seed=19,
    )


def _timed_restarts(clusterer_factory, data, backend, n_jobs, repeats=2):
    """Best-of-``repeats`` wall time of a 16-restart engine run."""
    best_time = float("inf")
    result = None
    for _ in range(repeats):
        runner = MultiRestartRunner(
            clusterer_factory(),
            n_init=BACKEND_RESTARTS,
            n_jobs=n_jobs,
            backend=backend,
        )
        start = time.perf_counter()
        result = runner.run(data, seed=3)
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="threads-vs-serial floor is only meaningful with >= 4 cores",
)
def test_threads_backend_speedup_floor(backend_data):
    """Acceptance pin: threads >= 2x serial for 16 moment-based restarts
    at n=5000, m=16 — NumPy's assignment/update kernels release the GIL,
    so the threaded restarts scale without serializing anything.  The
    results must also stay bit-identical (backend invariance)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        factory = lambda: UKMeans(BACKEND_K, max_iter=8)  # noqa: E731
        serial_time, serial_result = _timed_restarts(
            factory, backend_data, "serial", 1
        )
        threads_time, threads_result = _timed_restarts(
            factory, backend_data, "threads", os.cpu_count() or 4
        )
    np.testing.assert_array_equal(serial_result.labels, threads_result.labels)
    assert serial_result.objective == threads_result.objective
    speedup = serial_time / threads_time
    assert speedup >= 2.0, (
        f"threads backend speedup {speedup:.2f}x below the 2x floor "
        f"(serial {serial_time:.2f} s, threads {threads_time:.2f} s)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel-backend comparison is only meaningful with >= 4 cores",
)
def test_ucpc_threads_comparison_informational(backend_data):
    """16 UCPC restarts, threads vs serial, measured for the record.

    UCPC's relocation sweep is a sequential per-object Python loop over
    k-sized arrays — interpreter-bound, so the GIL caps the threads
    backend near 1x for it (that is *why* the backend matrix routes
    UCPC to processes).  No speedup floor is asserted; the run still
    pins backend invariance of the results at paper scale."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        factory = lambda: UCPC(BACKEND_K, max_iter=2)  # noqa: E731
        _, serial_result = _timed_restarts(
            factory, backend_data, "serial", 1, repeats=1
        )
        _, threads_result = _timed_restarts(
            factory, backend_data, "threads", os.cpu_count() or 4, repeats=1
        )
    np.testing.assert_array_equal(serial_result.labels, threads_result.labels)
    assert serial_result.objective == threads_result.objective


# ----------------------------------------------------------------------
# Pairwise-distance plane: shared ÊD matrix vs per-restart recompute.
# ----------------------------------------------------------------------
MEDOID_N = 2000
MEDOID_M = 32
MEDOID_K = 25
MEDOID_RESTARTS = 8
MEDOID_MAX_ITER = 2  # bounds the on-line PAM loop; off-line phase dominates


@pytest.fixture(scope="module")
def medoid_data():
    """Paper-scale UK-medoids workload (n=2000 — Yeast-sized rows)."""
    return make_blobs_uncertain(
        n_objects=MEDOID_N,
        n_clusters=MEDOID_K,
        n_attributes=MEDOID_M,
        separation=3.0,
        seed=23,
    )


def _medoid_run_with_plane(data):
    """One run-set on the shared plane: one ÊD build + n_init PAM loops.

    The matrix is built explicitly and pinned (rather than read from the
    dataset cache) so every repetition pays the one-time off-line cost —
    otherwise the dataset-level cache would hide it from the clock.
    """
    from repro.objects.distance import pairwise_squared_expected_distances

    model = UKMedoids(MEDOID_K, max_iter=MEDOID_MAX_ITER)
    model.pairwise_ed_cache = pairwise_squared_expected_distances(data)
    return MultiRestartRunner(
        model, n_init=MEDOID_RESTARTS, backend="serial"
    ).run(data, seed=5)


def _medoid_run_per_restart_recompute(data):
    """The pre-plane behavior: every restart rebuilds the ÊD matrix."""
    return MultiRestartRunner(
        UKMedoids(MEDOID_K, max_iter=MEDOID_MAX_ITER),
        n_init=MEDOID_RESTARTS,
        backend="serial",
        share_pairwise=False,
    ).run(data, seed=5)


def test_ukmedoids_plane_shared(benchmark, medoid_data):
    benchmark.group = "pairwise-plane"
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        benchmark(_medoid_run_with_plane, medoid_data)


def test_ukmedoids_plane_recompute(benchmark, medoid_data):
    benchmark.group = "pairwise-plane"
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        benchmark(_medoid_run_per_restart_recompute, medoid_data)


def test_pairwise_plane_speedup_floor(medoid_data):
    """Acceptance pin: the shared plane runs a UK-medoids multi-restart
    set (n=2000, n_init=8) >= 4x faster than per-restart recompute —
    with bit-identical results, since the matrix is deterministic."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        shared_result = _medoid_run_with_plane(medoid_data)  # warm
        recompute_result = _medoid_run_per_restart_recompute(medoid_data)
        shared = _best_of(
            lambda: _medoid_run_with_plane(medoid_data), repeats=2
        )
        recompute = _best_of(
            lambda: _medoid_run_per_restart_recompute(medoid_data), repeats=2
        )
    np.testing.assert_array_equal(shared_result.labels, recompute_result.labels)
    assert shared_result.objective == recompute_result.objective
    speedup = recompute / shared
    assert speedup >= 4.0, (
        f"pairwise-plane speedup {speedup:.1f}x below the 4x floor "
        f"(shared {shared * 1e3:.0f} ms, recompute {recompute * 1e3:.0f} ms)"
    )


# ----------------------------------------------------------------------
# Sweep orchestrator: shared dataset groups vs isolated per-cell runs.
# ----------------------------------------------------------------------
SWEEP_DATASETS = ("neuroblastoma", "leukaemia")
SWEEP_KS = (25, 30)
SWEEP_ALGORITHMS = ("UKmed", "UKM", "MMV")


def _sweep_config():
    from repro.experiments import ExperimentConfig

    # scale=0.05 puts both microarray stand-ins at paper-shaped size
    # (~1.1k genes); n_runs=1 keeps the grid's on-line fits small next
    # to the per-dataset off-line work the orchestrator amortizes.
    return ExperimentConfig(scale=0.05, n_runs=1, n_samples=8, seed=11)


def _orchestrated_grid():
    """One `repro sweep` schedule over the small grid (fresh store)."""
    import tempfile

    from repro.engine.sweep import SweepGrid, Table3Spec, run_sweep

    grid = SweepGrid(
        table3=Table3Spec(
            config=_sweep_config(),
            datasets=SWEEP_DATASETS,
            cluster_counts=SWEEP_KS,
            algorithms=SWEEP_ALGORITHMS,
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        return run_sweep(grid, os.path.join(tmp, "store")).table3.quality


def _isolated_cells():
    """The pre-orchestrator idiom: every cell is an isolated run.

    Each cell re-derives its own seed streams from scratch, regenerates
    the dataset (fresh moment matrices, fresh sampling plan) and
    rebuilds the scoring ``ÊD`` matrix — exactly what running each grid
    cell as its own `fit_runs` invocation costs.
    """
    from repro.experiments.table3 import (
        prepare_table3_group,
        run_table3_cell,
        skip_table3_cell,
    )
    from repro.objects.distance import pairwise_squared_expected_distances
    from repro.utils.rng import spawn_rngs

    config = _sweep_config()
    quality = {}
    for ds_idx, ds_name in enumerate(SWEEP_DATASETS):
        cell_pos = 0
        for k in SWEEP_KS:
            for alg in SWEEP_ALGORITHMS:
                ds_rng = spawn_rngs(config.seed, len(SWEEP_DATASETS))[ds_idx]
                dataset = prepare_table3_group(ds_name, ds_rng, config)
                for _ in range(cell_pos):
                    skip_table3_cell(ds_rng, config)
                distances = pairwise_squared_expected_distances(dataset)
                quality[(ds_name, k, alg)] = run_table3_cell(
                    alg, dataset, k, ds_rng, config, distances
                )
                cell_pos += 1
    return quality


def test_sweep_orchestrator_speedup_floor():
    """Acceptance pin: the orchestrated small grid (2 datasets x 3
    algorithms x 2 cluster counts, paper-shaped microarrays) runs
    >= 2x faster than the same cells as isolated per-cell runs — and
    every cell value is bit-identical, since the orchestrator executes
    the runners' own cell executors on the same seed streams."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        orchestrated_values = _orchestrated_grid()
        isolated_values = _isolated_cells()
        assert orchestrated_values == isolated_values
        orchestrated = _best_of(_orchestrated_grid, repeats=2)
        isolated = _best_of(_isolated_cells, repeats=2)
    speedup = isolated / orchestrated
    assert speedup >= 2.0, (
        f"sweep orchestrator speedup {speedup:.1f}x below the 2x floor "
        f"(orchestrated {orchestrated:.2f} s, isolated {isolated:.2f} s)"
    )


# ----------------------------------------------------------------------
# Multi-worker sweep: two claim-based workers vs one, same shared grid.
# ----------------------------------------------------------------------
WORKER_RUNS = 30  # high n_runs: cell compute must dwarf group prep


def _worker_grid():
    """A compute-dominated grid: per-cell fits dwarf the off-line prep.

    Worker rotation starts the two workers in different dataset groups
    when the owner-hash offsets differ, but the floor must also hold
    when they collide and walk the same order — so the duplicated
    off-line work (dataset + ``ÊD`` matrix, ~2% here) is kept
    negligible next to the ``n_runs`` restarts inside each cell.
    """
    from repro.engine.sweep import SweepGrid, Table3Spec
    from repro.experiments import ExperimentConfig

    return SweepGrid(
        table3=Table3Spec(
            config=ExperimentConfig(
                scale=0.05, n_runs=WORKER_RUNS, n_samples=8, seed=11
            ),
            datasets=SWEEP_DATASETS,
            cluster_counts=SWEEP_KS,
            algorithms=SWEEP_ALGORITHMS,
        )
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="2-worker-vs-1 floor is only meaningful with >= 2 cores",
)
def test_multi_worker_sweep_speedup_floor(tmp_path):
    """Acceptance pin: two claim-based worker processes on one shared
    store finish the compute-dominated small grid >= 1.6x faster than
    a single worker — and the final store is logically identical
    (same manifest, same cells, same payload bytes), because every
    cell is produced by the same executors on the same seed streams
    regardless of which worker claims it."""
    from repro.engine.store import diff_stores
    from repro.engine.sweep import run_sweep, run_sweep_workers

    single_path = tmp_path / "single"
    double_path = tmp_path / "double"
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        start = time.perf_counter()
        run_sweep(_worker_grid(), single_path)
        single = time.perf_counter() - start
        start = time.perf_counter()
        run_sweep_workers(
            _worker_grid(),
            double_path,
            workers=2,
            lease_ttl=10.0,
            poll_interval=0.1,
        )
        double = time.perf_counter() - start
    assert diff_stores(single_path, double_path) == []
    speedup = single / double
    assert speedup >= 1.6, (
        f"2-worker sweep speedup {speedup:.2f}x below the 1.6x floor "
        f"(single {single:.1f} s, two workers {double:.1f} s)"
    )


# ----------------------------------------------------------------------
# Result-store aggregation: SQLite columnar backend vs JSON full scan.
# ----------------------------------------------------------------------
STORE_CELLS = 10000


def test_store_aggregation_speedup_floor(tmp_path):
    """Acceptance pin: report aggregation over a ~10k-cell store runs
    >= 5x faster on the SQLite backend (one indexed SQL pass over the
    exploded ``cell_values`` plane) than on the JSON backend, which
    must open and parse every cell file — with identical result rows,
    since both run the same store-API contract."""
    from run_bench import aggregate_store, populate_synthetic_store

    from repro.engine.store import open_store

    json_store = open_store(tmp_path / "store")
    sqlite_store = open_store(tmp_path / "store.sqlite")
    try:
        populate_synthetic_store(json_store, STORE_CELLS)
        populate_synthetic_store(sqlite_store, STORE_CELLS)

        # Warm both substrates and pin conformance at scale: the exact
        # aggregates (best-of-group, rank-over-grid, summary counts and
        # extrema) must agree row-for-row; the mean is only
        # approximately comparable (SQL AVG sums in a different order).
        json_agg = aggregate_store(json_store)
        sqlite_agg = aggregate_store(sqlite_store)
        assert json_agg[1] == sqlite_agg[1]
        assert json_agg[2] == sqlite_agg[2]
        assert [row[:5] for row in json_agg[0]] == [
            row[:5] for row in sqlite_agg[0]
        ]

        json_time = _best_of(lambda: aggregate_store(json_store), repeats=2)
        sqlite_time = _best_of(
            lambda: aggregate_store(sqlite_store), repeats=2
        )
    finally:
        json_store.close()
        sqlite_store.close()
    speedup = json_time / sqlite_time
    assert speedup >= 5.0, (
        f"store aggregation speedup {speedup:.1f}x below the 5x floor "
        f"(sqlite {sqlite_time * 1e3:.0f} ms, json {json_time * 1e3:.0f} ms)"
    )


def test_density_speedup_floor(density_data):
    """Acceptance pin: ported FDBSCAN >= 3x the pre-port path at
    n=1000, S=64 — and still the exact same labels."""
    model = FDBSCAN(n_samples=DENSITY_S)
    ported = model.fit(density_data, seed=0)  # also warms both paths
    legacy_labels = _legacy_fdbscan_fit(model, density_data, 0)
    np.testing.assert_array_equal(ported.labels, legacy_labels)

    ported_time = _best_of(lambda: model.fit(density_data, seed=0), repeats=2)
    legacy_time = _best_of(
        lambda: _legacy_fdbscan_fit(model, density_data, 0), repeats=2
    )
    speedup = legacy_time / ported_time
    assert speedup >= 3.0, (
        f"density port speedup {speedup:.1f}x below the 3x floor "
        f"(ported {ported_time * 1e3:.0f} ms, legacy {legacy_time * 1e3:.0f} ms)"
    )


# ----------------------------------------------------------------------
# Million-object scale path: Elkan bounds vs the full Lloyd ED pass.
# ----------------------------------------------------------------------
SCALE_N = 100_000
SCALE_SMOKE_N = 20_000
SCALE_K = 20
SCALE_S = 32
SCALE_M = 8
SCALE_ITERS = 5  # enough post-warmup iterations for the bounds to pay


def _scale_dataset(n):
    return make_blobs_uncertain(
        n_objects=n,
        n_clusters=SCALE_K,
        n_attributes=SCALE_M,
        separation=3.0,
        seed=42,
    )


@pytest.fixture(scope="module")
def scale_smoke_data():
    return _scale_dataset(SCALE_SMOKE_N)


def test_bounded_ukmeans_smoke(benchmark, scale_smoke_data):
    from repro.clustering import BoundedUKMeans

    benchmark.group = "scale-path"
    model = BoundedUKMeans(SCALE_K, n_samples=SCALE_S, max_iter=SCALE_ITERS)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        benchmark(model.fit, scale_smoke_data, 0)


def test_basic_ukmeans_smoke(benchmark, scale_smoke_data):
    benchmark.group = "scale-path"
    model = BasicUKMeans(SCALE_K, n_samples=SCALE_S, max_iter=SCALE_ITERS)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        benchmark(model.fit, scale_smoke_data, 0)


def test_bounded_ukmeans_skip_counter_floor(scale_smoke_data):
    """Acceptance pin: at n=20_000 the Elkan bounds skip >= 50% of the
    assignment-row ED evaluations — counter-asserted, not inferred
    from wall clock — while the labels stay exactly Basic's."""
    from repro.clustering import BoundedUKMeans

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        bounded = BoundedUKMeans(
            SCALE_K, n_samples=SCALE_S, max_iter=SCALE_ITERS
        ).fit(scale_smoke_data, seed=0)
        basic = BasicUKMeans(
            SCALE_K, n_samples=SCALE_S, max_iter=SCALE_ITERS
        ).fit(scale_smoke_data, seed=0)
    np.testing.assert_array_equal(basic.labels, bounded.labels)
    extras = bounded.extras
    total = bounded.n_iterations * SCALE_SMOKE_N * SCALE_K
    assert extras["ed_evaluations"] + extras["ed_skipped"] == total
    assert extras["skip_rate"] >= 0.5, (
        f"skip rate {extras['skip_rate']:.3f} below the 0.5 floor "
        f"({extras['ed_evaluations']} of {total} EDs evaluated)"
    )


def test_bounded_ukmeans_scale_speedup_floor():
    """Acceptance pin: at n=100_000 (S=32, m=8, k=20) Elkan-bounded
    UK-means runs >= 2x faster than BasicUKMeans over the same
    iterations — with bit-identical labels, because every compared ED
    goes through the literal Basic kernel and all pruning tests are
    strict inequalities on exact mean-plane distances."""
    from repro.clustering import BoundedUKMeans

    data = _scale_dataset(SCALE_N)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        bounded = BoundedUKMeans(
            SCALE_K, n_samples=SCALE_S, max_iter=SCALE_ITERS
        ).fit(data, seed=0)
        basic = BasicUKMeans(
            SCALE_K, n_samples=SCALE_S, max_iter=SCALE_ITERS
        ).fit(data, seed=0)
    np.testing.assert_array_equal(basic.labels, bounded.labels)
    speedup = basic.runtime_seconds / bounded.runtime_seconds
    assert speedup >= 2.0, (
        f"bounded UK-means speedup {speedup:.2f}x below the 2x floor "
        f"(bounded {bounded.runtime_seconds:.1f} s, "
        f"basic {basic.runtime_seconds:.1f} s)"
    )
