"""Shared configuration for the benchmark harness.

Every paper table/figure has a bench module here; sizes default to
laptop scale (seconds per benchmark) and honour the ``REPRO_BENCH_SCALE``
environment variable for larger runs:

    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig


def bench_scale(default: float) -> float:
    """Dataset scale for benchmarks, overridable via REPRO_BENCH_SCALE."""
    value = os.environ.get("REPRO_BENCH_SCALE")
    if value is None:
        return default
    return float(value)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Shared experiment configuration for benchmark runs."""
    return ExperimentConfig(
        scale=bench_scale(0.05), n_runs=1, seed=2012, n_samples=16
    )
