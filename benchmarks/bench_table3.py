"""Benchmark harness for Table 3 (E2) — Q on microarray stand-ins.

Times one clustering + internal-criterion evaluation per roster
algorithm on the Neuroblastoma stand-in, and a reduced Table 3
regeneration.
"""

from __future__ import annotations

import pytest

from repro.datagen import make_microarray
from repro.evaluation import internal_scores
from repro.experiments import ACCURACY_ROSTER, build_algorithm, run_table3
from repro.experiments.config import ExperimentConfig
from repro.objects.distance import pairwise_squared_expected_distances


@pytest.fixture(scope="module")
def genes(bench_config):
    scale = min(max(bench_config.scale * 0.2, 0.005), 1.0)
    return make_microarray("neuroblastoma", scale=scale, seed=bench_config.seed)


@pytest.fixture(scope="module")
def distances(genes):
    return pairwise_squared_expected_distances(genes)


@pytest.mark.parametrize("algorithm_name", ACCURACY_ROSTER)
def test_cluster_and_score(
    benchmark, genes, distances, algorithm_name, bench_config
):
    """Clustering + Q evaluation per roster algorithm (Table 3's cell)."""
    algorithm = build_algorithm(
        algorithm_name, n_clusters=5, n_samples=bench_config.n_samples
    )

    def cell():
        result = algorithm.fit(genes, seed=11)
        return internal_scores(genes, result.labels, distances).quality

    benchmark.group = "table3-cell"
    quality = benchmark(cell)
    assert -1.0 <= quality <= 1.0


def test_table3_end_to_end(benchmark, bench_config):
    """Reduced Table 3 (1 dataset x 2 cluster counts x 2 algorithms)."""
    config = ExperimentConfig(
        scale=0.005, n_runs=1, seed=bench_config.seed, n_samples=8
    )
    benchmark.group = "table3-end-to-end"
    report = benchmark(
        run_table3,
        config,
        datasets=("neuroblastoma",),
        cluster_counts=(2, 5),
        algorithms=("UKM", "UCPC"),
    )
    assert len(report.quality) == 4
