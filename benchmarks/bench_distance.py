"""Micro-benchmarks of the distance substrate (S4).

Pins the costs the paper's complexity arguments rely on:

* the closed-form ``ED``/``ÊD`` of Eq. (8) / Lemma 3 vs their
  Monte-Carlo approximations (the basic-UK-means bottleneck);
* the vectorized dataset-level distance kernels used by every
  assignment step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import make_blobs_uncertain
from repro.objects.distance import (
    expected_distance_mc,
    expected_distance_to_point,
    expected_distances_to_points,
    pairwise_squared_expected_distances,
    squared_expected_distance,
)


@pytest.fixture(scope="module")
def data():
    return make_blobs_uncertain(n_objects=300, n_clusters=3, seed=7)


def test_ed_closed_form(benchmark, data):
    obj = data[0]
    point = np.zeros(data.dim)
    benchmark.group = "ED-object-to-point"
    benchmark(expected_distance_to_point, obj, point)


@pytest.mark.parametrize("n_samples", [64, 512])
def test_ed_monte_carlo(benchmark, data, n_samples):
    obj = data[0]
    point = np.zeros(data.dim)
    benchmark.group = "ED-object-to-point"
    benchmark(
        expected_distance_mc, obj, point, n_samples=n_samples, seed=0
    )


def test_ehat_closed_form(benchmark, data):
    benchmark.group = "ED-object-to-object"
    benchmark(squared_expected_distance, data[0], data[1])


def test_assignment_kernel(benchmark, data):
    centers = data.mu_matrix[:10]
    benchmark.group = "vectorized-kernels"
    benchmark(expected_distances_to_points, data, centers)


def test_pairwise_matrix(benchmark, data):
    benchmark.group = "vectorized-kernels"
    benchmark(pairwise_squared_expected_distances, data)
