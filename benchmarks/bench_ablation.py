"""Ablation benches (E8) — the design choices DESIGN.md calls out.

Three ablations:

1. **Objective ablation** — J (UCPC) vs the variance-only criterion the
   paper rejects in Section 4.2.1 vs plain J_UK (UK-means).  The bench
   times them and asserts the paper's qualitative claim: the
   variance-only criterion loses badly on positional structure.
2. **Optimizer ablation** — Algorithm 1's sequential relocation vs a
   Lloyd-style batch minimizer of the same J.
3. **Incremental-statistics ablation** — Corollary 1's O(m) updates vs
   recomputing Theorem 3's closed form from scratch (O(|C|·m)) per
   candidate relocation, the cost the paper's formulas eliminate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    UCPC,
    ClusterStats,
    UCPCLloyd,
    UKMeans,
    VarianceOnlyClustering,
    j_ucpc_closed_form,
)
from repro.datagen import make_blobs_uncertain
from repro.evaluation import f_measure


@pytest.fixture(scope="module")
def blobs():
    return make_blobs_uncertain(
        n_objects=240, n_clusters=4, separation=6.0, seed=99
    )


# ----------------------------------------------------------------------
# 1. Objective ablation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "algo_cls", [UCPC, UKMeans, VarianceOnlyClustering],
    ids=["J-UCPC", "J-UK", "variance-only"],
)
def test_objective_ablation(benchmark, blobs, algo_cls):
    algo = algo_cls(n_clusters=4)
    benchmark.group = "ablation-objective"
    result = benchmark(algo.fit, blobs, seed=1)
    benchmark.extra_info["f_measure"] = f_measure(result.labels, blobs.labels)


def test_variance_only_criterion_fails_positionally(benchmark, blobs):
    """Figure 2's claim, measured: the rejected criterion clusters far
    worse than J on positional structure.  The benchmarked callable runs
    the head-to-head comparison; the assertion checks the accuracy gap."""

    def head_to_head():
        ucpc_f = np.mean(
            [
                f_measure(UCPC(4).fit(blobs, seed=s).labels, blobs.labels)
                for s in range(3)
            ]
        )
        var_f = np.mean(
            [
                f_measure(
                    VarianceOnlyClustering(4).fit(blobs, seed=s).labels,
                    blobs.labels,
                )
                for s in range(3)
            ]
        )
        return ucpc_f, var_f

    benchmark.group = "ablation-objective"
    ucpc_f, var_f = benchmark.pedantic(head_to_head, rounds=1, iterations=1)
    assert ucpc_f > var_f + 0.2


# ----------------------------------------------------------------------
# 2. Optimizer ablation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "algo_cls", [UCPC, UCPCLloyd], ids=["relocation", "lloyd-batch"]
)
def test_optimizer_ablation(benchmark, blobs, algo_cls):
    algo = algo_cls(n_clusters=4)
    benchmark.group = "ablation-optimizer"
    result = benchmark(algo.fit, blobs, seed=2)
    benchmark.extra_info["objective"] = result.objective


# ----------------------------------------------------------------------
# 3. Incremental statistics (Corollary 1) vs recomputation
# ----------------------------------------------------------------------
def test_corollary1_incremental_update(benchmark, blobs):
    """O(m) hypothetical-insertion queries via Corollary 1."""
    stats = ClusterStats.from_objects(list(blobs)[:100])
    probe = blobs[100]
    benchmark.group = "ablation-cluster-stats"
    benchmark(stats.objective_with, probe)


def test_naive_recomputation(benchmark, blobs):
    """O(|C| m) from-scratch evaluation of Theorem 3's closed form."""
    members = list(blobs)[:100]
    probe = blobs[100]
    benchmark.group = "ablation-cluster-stats"
    benchmark(lambda: j_ucpc_closed_form(members + [probe]))
