"""Run the pinned engine benchmarks and emit a machine-readable JSON.

This is the perf-trajectory seed: every CI run executes the same fixed
measurement roster and uploads ``BENCH_engine.json`` as an artifact, so
regressions (and wins) in the engine layer are visible across commits
without digging through pytest-benchmark output.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full sizes
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --output out.json

The measurement roster mirrors ``benchmarks/bench_engine.py``:

* batched ``sample_tensor`` vs the per-object sampling loop;
* multi-restart engine with shared vs fresh sample tensors;
* ported FDBSCAN end-to-end fit;
* the execution backends (serial / threads / processes) driving the
  same moment-based restart workload;
* paper-scale UK-medoids multi-restarts on the shared pairwise-distance
  plane vs the per-restart ÊD recompute it replaced;
* UAHC's vectorized proximity agglomeration;
* report-shaped aggregation (metric summary + best-of-group +
  rank-over-grid) over a ~10k-cell synthetic result store, on the JSON
  directory backend vs the SQLite columnar backend;
* the multi-worker sweep: one compute-dominated small grid run by a
  single worker vs two claim-based worker processes leasing cells off
  one shared store (speedup only materializes on >= 2 cores; the
  single-core record documents the coordination overhead instead);
* the million-object scale path at n=20_000 (S=32, m=8, k=20):
  Elkan-bounded UK-means vs the full BasicUKMeans Lloyd pass (same
  seeds, bit-identical labels — the record carries the measured
  speedup and ED skip rate) plus the lossy mini-batch UK-means fit.

Timings are best-of-``repeats`` wall clock; the JSON also records the
machine shape (cores, python, numpy) so numbers are comparable only
within like-for-like runners.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.clustering import FDBSCAN, UAHC, UKMeans, BasicUKMeans, UKMedoids
from repro.datagen import make_blobs_uncertain
from repro.engine import MultiRestartRunner
from repro.engine.store import SWEEP_SCHEMA_VERSION, ResultStore, open_store
from repro.exceptions import ConvergenceWarning
from repro.objects import UncertainDataset, UncertainObject
from repro.utils.rng import ensure_rng

#: Bumped whenever a measurement's name or meaning changes.
SCHEMA_VERSION = 4

#: The fixed measurement roster.  ``run_benchmarks`` must emit exactly
#: these names; the overwrite guard in :func:`main` compares an existing
#: snapshot against them *before* running anything, so a snapshot from a
#: different roster (or schema) is never silently clobbered.
MEASUREMENT_NAMES = (
    "sample_tensor_batched",
    "sample_tensor_per_object",
    "multi_restart_shared_cache",
    "multi_restart_fresh_samples",
    "fdbscan_ported_fit",
    "backend_serial_ukmeans_restarts",
    "backend_threads_ukmeans_restarts",
    "backend_processes_ukmeans_restarts",
    "ukmedoids_plane_shared",
    "ukmedoids_plane_recompute",
    "uahc_jeffreys_fit",
    "store_aggregate_sqlite",
    "store_aggregate_json",
    "sweep_single_worker",
    "sweep_two_workers",
    "bounded_ukmeans_elkan",
    "bounded_ukmeans_basic_reference",
    "minibatch_ukmeans_fit",
)


def snapshot_conflict(path: Path) -> Optional[str]:
    """Why overwriting the snapshot at ``path`` would lose information.

    Returns ``None`` when the existing file is a like-for-like snapshot
    (same schema version, same measurement roster) — the normal CI
    refresh — and a human-readable reason otherwise: an unreadable
    file, a different schema version, or a different roster all mean
    the committed trajectory would silently change meaning.
    """
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as error:
        return f"existing file is not readable benchmark JSON ({error})"
    if not isinstance(payload, dict):
        return "existing file is not a benchmark snapshot object"
    if payload.get("schema") != SCHEMA_VERSION:
        return (
            f"existing schema version {payload.get('schema')!r} != "
            f"{SCHEMA_VERSION}"
        )
    existing = {
        entry.get("name")
        for entry in payload.get("benchmarks", [])
        if isinstance(entry, dict)
    }
    if existing != set(MEASUREMENT_NAMES):
        missing = sorted(set(MEASUREMENT_NAMES) - existing)
        extra = sorted(existing - set(MEASUREMENT_NAMES))
        return (
            "existing measurement roster differs "
            f"(missing: {missing or '-'}, extra: {extra or '-'})"
        )
    return None


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _uniform_dataset(n_objects: int, seed: int = 11) -> UncertainDataset:
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 10.0, size=(n_objects, 2))
    widths = rng.uniform(0.2, 2.0, size=(n_objects, 2))
    return UncertainDataset(
        [
            UncertainObject.uniform_box(centers[i], widths[i], label=0)
            for i in range(n_objects)
        ]
    )


def _per_object_loop(dataset, n_samples, seed):
    rng = ensure_rng(seed)
    out = np.empty((len(dataset), n_samples, dataset.dim))
    for idx, obj in enumerate(dataset):
        out[idx] = obj.sample(n_samples, rng)
    return out


def populate_synthetic_store(
    store: ResultStore, n_cells: int, seed: int = 29
) -> None:
    """Fill ``store`` with a sweep-shaped synthetic grid of ``n_cells``.

    Groups of 50 cells (10 datasets-worth of algorithm x k cells each)
    with a few numeric metrics per cell — the shape the report
    aggregation walks, at a scale where substrate cost dominates.
    """
    rng = np.random.default_rng(seed)
    store.prepare(
        {
            "schema": SWEEP_SCHEMA_VERSION,
            "surfaces": {"synthetic": {"cells": n_cells}},
        },
        resume=False,
    )
    written = 0
    group_idx = 0
    while written < n_cells:
        group = (f"dataset{group_idx:04d}",)
        for pos in range(min(50, n_cells - written)):
            store.write_cell(
                "synthetic",
                group,
                (f"alg{pos % 5}", f"k{10 + pos // 5}"),
                seed_state=f"{written:040x}",
                values={
                    "quality": float(rng.random()),
                    "runtime_ms": float(rng.uniform(1.0, 1e3)),
                    "iterations": int(rng.integers(1, 40)),
                },
            )
            written += 1
        group_idx += 1


def aggregate_store(store: ResultStore):
    """The report-shaped aggregation workload over one store.

    One full metric summary plus best-of-group and rank-over-grid on
    the headline metric — Python reference reads on the JSON backend,
    indexed SQL (GROUP BY + window functions) on SQLite.
    """
    return (
        store.metric_summary(),
        store.best_cells("quality", mode="max"),
        store.rank_over_grid("quality", mode="max"),
    )


def run_benchmarks(quick: bool = False) -> List[Dict[str, object]]:
    """Execute the fixed roster; returns one record per measurement."""
    repeats = 2 if quick else 3
    scale = 0.25 if quick else 1.0
    records: List[Dict[str, object]] = []

    def record(name: str, seconds: float, **meta) -> None:
        records.append({"name": name, "seconds": seconds, **meta})

    # --- off-line sampling -------------------------------------------
    n_sampling = int(2000 * scale)
    n_samples = 64
    sampling_data = _uniform_dataset(n_sampling)
    sampling_data.sample_tensor(n_samples, 0)  # warm the plan cache
    batched = _best_of(lambda: sampling_data.sample_tensor(n_samples, 0), repeats)
    looped = _best_of(
        lambda: _per_object_loop(sampling_data, n_samples, 0), repeats
    )
    record(
        "sample_tensor_batched",
        batched,
        n=n_sampling,
        S=n_samples,
        speedup=looped / batched,
    )
    record("sample_tensor_per_object", looped, n=n_sampling, S=n_samples)

    # --- multi-restart engine ----------------------------------------
    n_restart = int(400 * scale)
    restart_data = make_blobs_uncertain(
        n_objects=n_restart, n_clusters=4, separation=4.0, seed=11
    )
    shared = _best_of(
        lambda: MultiRestartRunner(
            BasicUKMeans(4, n_samples=32), n_init=5, share_samples=True
        ).run(restart_data, 0),
        repeats,
    )
    fresh = _best_of(
        lambda: MultiRestartRunner(
            BasicUKMeans(4, n_samples=32), n_init=5, share_samples=False
        ).run(restart_data, 0),
        repeats,
    )
    record("multi_restart_shared_cache", shared, n=n_restart, n_init=5)
    record("multi_restart_fresh_samples", fresh, n=n_restart, n_init=5)

    # --- density clustering ------------------------------------------
    n_density = int(1000 * scale)
    density_data = make_blobs_uncertain(
        n_objects=n_density, n_clusters=5, n_attributes=16, seed=7
    )
    model = FDBSCAN(n_samples=64)
    model.fit(density_data, seed=0)  # warm
    record(
        "fdbscan_ported_fit",
        _best_of(lambda: model.fit(density_data, seed=0), repeats),
        n=n_density,
        S=64,
        m=16,
    )

    # --- execution backends ------------------------------------------
    n_backend = int(2000 * scale)
    backend_data = make_blobs_uncertain(
        n_objects=n_backend, n_clusters=8, n_attributes=16, separation=3.0,
        seed=19,
    )
    jobs = min(4, os.cpu_count() or 1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        for backend, n_jobs in (
            ("serial", 1),
            ("threads", jobs),
            ("processes", jobs),
        ):
            seconds = _best_of(
                lambda: MultiRestartRunner(
                    UKMeans(8, max_iter=8),
                    n_init=8,
                    n_jobs=n_jobs,
                    backend=backend,
                ).run(backend_data, seed=3),
                repeats,
            )
            record(
                f"backend_{backend}_ukmeans_restarts",
                seconds,
                n=n_backend,
                m=16,
                n_init=8,
                n_jobs=n_jobs,
            )

    # --- pairwise-distance plane -------------------------------------
    from repro.objects.distance import pairwise_squared_expected_distances

    n_medoid = int(2000 * scale)
    medoid_k = 25
    medoid_restarts = 8
    medoid_data = make_blobs_uncertain(
        n_objects=n_medoid, n_clusters=medoid_k, n_attributes=32,
        separation=3.0, seed=23,
    )

    def _plane_shared():
        # Build + pin the matrix explicitly so each repeat pays the
        # one-time off-line cost (the dataset-level cache would hide it).
        model = UKMedoids(medoid_k, max_iter=2)
        model.pairwise_ed_cache = pairwise_squared_expected_distances(
            medoid_data
        )
        return MultiRestartRunner(
            model, n_init=medoid_restarts, backend="serial"
        ).run(medoid_data, seed=5)

    def _plane_recompute():
        return MultiRestartRunner(
            UKMedoids(medoid_k, max_iter=2),
            n_init=medoid_restarts,
            backend="serial",
            share_pairwise=False,
        ).run(medoid_data, seed=5)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        plane_shared = _best_of(_plane_shared, repeats)
        plane_recompute = _best_of(_plane_recompute, repeats)
    record(
        "ukmedoids_plane_shared",
        plane_shared,
        n=n_medoid,
        n_init=medoid_restarts,
        k=medoid_k,
        speedup=plane_recompute / plane_shared,
    )
    record(
        "ukmedoids_plane_recompute",
        plane_recompute,
        n=n_medoid,
        n_init=medoid_restarts,
        k=medoid_k,
    )

    # --- result-store aggregation ------------------------------------
    store_cells = int(10000 * scale)
    with tempfile.TemporaryDirectory() as tmp:
        json_store = open_store(Path(tmp) / "store")
        sqlite_store = open_store(Path(tmp) / "store.sqlite")
        try:
            populate_synthetic_store(json_store, store_cells)
            populate_synthetic_store(sqlite_store, store_cells)
            aggregate_store(json_store)  # warm page/inode caches
            aggregate_store(sqlite_store)
            agg_json = _best_of(lambda: aggregate_store(json_store), repeats)
            agg_sqlite = _best_of(
                lambda: aggregate_store(sqlite_store), repeats
            )
        finally:
            json_store.close()
            sqlite_store.close()
    record(
        "store_aggregate_sqlite",
        agg_sqlite,
        cells=store_cells,
        speedup=agg_json / agg_sqlite,
    )
    record("store_aggregate_json", agg_json, cells=store_cells)

    # --- multi-worker sweep ------------------------------------------
    from repro.engine.sweep import (
        SweepGrid,
        Table3Spec,
        run_sweep,
        run_sweep_workers,
    )
    from repro.experiments import ExperimentConfig

    sweep_runs = max(3, int(30 * scale))

    def _sweep_grid():
        # Compute-dominated: n_runs restarts per cell dwarf the
        # per-group off-line prep, so two workers can split the grid.
        return SweepGrid(
            table3=Table3Spec(
                config=ExperimentConfig(
                    scale=0.05, n_runs=sweep_runs, n_samples=8, seed=11
                ),
                datasets=("neuroblastoma", "leukaemia"),
                cluster_counts=(25, 30),
                algorithms=("UKmed", "UKM", "MMV"),
            )
        )

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            run_sweep(_sweep_grid(), os.path.join(tmp, "single"))
            sweep_single = time.perf_counter() - start
            start = time.perf_counter()
            run_sweep_workers(
                _sweep_grid(),
                os.path.join(tmp, "double"),
                workers=2,
                lease_ttl=10.0,
                poll_interval=0.1,
            )
            sweep_double = time.perf_counter() - start
    record(
        "sweep_single_worker",
        sweep_single,
        cells=12,
        n_runs=sweep_runs,
        workers=1,
    )
    record(
        "sweep_two_workers",
        sweep_double,
        cells=12,
        n_runs=sweep_runs,
        workers=2,
        speedup=sweep_single / sweep_double,
    )

    # --- million-object scale path -----------------------------------
    from repro.clustering import BoundedUKMeans, MiniBatchUKMeans

    n_bound = int(20000 * scale)
    bound_k = 20
    bound_s = 32
    bound_iters = 5
    bound_data = make_blobs_uncertain(
        n_objects=n_bound, n_clusters=bound_k, n_attributes=8,
        separation=3.0, seed=42,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        bounded_result = BoundedUKMeans(
            bound_k, n_samples=bound_s, max_iter=bound_iters
        ).fit(bound_data, seed=0)
        bounded = _best_of(
            lambda: BoundedUKMeans(
                bound_k, n_samples=bound_s, max_iter=bound_iters
            ).fit(bound_data, seed=0),
            repeats,
        )
        basic = _best_of(
            lambda: BasicUKMeans(
                bound_k, n_samples=bound_s, max_iter=bound_iters
            ).fit(bound_data, seed=0),
            repeats,
        )
        minibatch = _best_of(
            lambda: MiniBatchUKMeans(bound_k, batch_size=1024).fit(
                bound_data, seed=0
            ),
            repeats,
        )
    record(
        "bounded_ukmeans_elkan",
        bounded,
        n=n_bound,
        S=bound_s,
        m=8,
        k=bound_k,
        speedup=basic / bounded,
        skip_rate=bounded_result.extras["skip_rate"],
    )
    record(
        "bounded_ukmeans_basic_reference",
        basic,
        n=n_bound,
        S=bound_s,
        m=8,
        k=bound_k,
    )
    record(
        "minibatch_ukmeans_fit",
        minibatch,
        n=n_bound,
        S=bound_s,
        m=8,
        k=bound_k,
    )

    # --- hierarchical ------------------------------------------------
    n_uahc = int(300 * scale)
    uahc_data = make_blobs_uncertain(
        n_objects=max(n_uahc, 20), n_clusters=4, n_attributes=5, seed=3
    )
    record(
        "uahc_jeffreys_fit",
        _best_of(lambda: UAHC(4, linkage="jeffreys").fit(uahc_data), repeats),
        n=len(uahc_data),
        m=5,
    )
    emitted = {entry["name"] for entry in records}
    assert emitted == set(MEASUREMENT_NAMES), (
        "run_benchmarks drifted from MEASUREMENT_NAMES; update the "
        f"roster constant and bump SCHEMA_VERSION (diff: "
        f"{emitted ^ set(MEASUREMENT_NAMES)})"
    )
    return records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the pinned engine benchmarks, emit JSON."
    )
    parser.add_argument(
        "--output", default="BENCH_engine.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="quarter-size datasets, fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing snapshot even when its schema "
        "version or measurement roster differs from this script's",
    )
    args = parser.parse_args(argv)

    output = Path(args.output)
    if output.exists() and not args.force:
        conflict = snapshot_conflict(output)
        if conflict is not None:
            print(
                f"refusing to overwrite {output}: {conflict}\n"
                "(re-run with --force to overwrite anyway)",
                file=sys.stderr,
            )
            return 2

    records = run_benchmarks(quick=args.quick)
    payload = {
        "schema": SCHEMA_VERSION,
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "benchmarks": records,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for entry in records:
        extra = (
            f"  (speedup {entry['speedup']:.1f}x)" if "speedup" in entry else ""
        )
        print(f"{entry['name']:35s} {entry['seconds'] * 1e3:9.1f} ms{extra}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
