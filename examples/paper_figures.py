"""Numerical walkthrough of the paper's Figures 1-3 and key identities.

Run:  python examples/paper_figures.py

Demonstrates, with concrete numbers:

* Figure 1 — J_UK cannot distinguish clusters by how variance is
  distributed (Proposition 1's construction);
* Figure 2 — minimizing U-centroid variance alone prefers the *wrong*
  cluster (Theorem 2's caveat), while J prefers the right one;
* Figure 3 / Theorem 1 — realizations of a U-centroid are the means of
  member realizations;
* Propositions 2-3 — J_MM = J_UK/|C| and Ĵ = 2 J_UK on a random cluster.
"""

from __future__ import annotations

import numpy as np

from repro import UCentroid, UncertainObject
from repro.clustering import j_hat, j_mm, j_uk, j_ucpc, sum_of_variances


def uniform_cluster(centers, half_widths):
    return [
        UncertainObject.uniform_box([c], [h])
        for c, h in zip(centers, half_widths)
    ]


def figure1() -> None:
    print("=" * 70)
    print("Figure 1 / Proposition 1 — J_UK is blind to variance placement")
    print("=" * 70)
    h = 0.6
    h_prime = float(np.sqrt(h * h + 3.0))
    cluster_a = uniform_cluster([0.0, 2.0], [h, h])
    cluster_b = uniform_cluster([1.0, 1.0], [h_prime, h_prime])
    print(f"cluster A: means (0, 2), half-widths {h:.2f}")
    print(f"cluster B: means (1, 1), half-widths {h_prime:.2f}")
    print(f"  J_UK(A) = {j_uk(cluster_a):.4f}   J_UK(B) = {j_uk(cluster_b):.4f}  <- equal!")
    print(f"  sum of variances: A = {sum_of_variances(cluster_a):.4f}, "
          f"B = {sum_of_variances(cluster_b):.4f}  <- differ by 2")
    print(f"  J(A) = {j_ucpc(cluster_a):.4f}   J(B) = {j_ucpc(cluster_b):.4f}"
          "  <- UCPC's J separates them\n")


def figure2() -> None:
    print("=" * 70)
    print("Figure 2 / Theorem 2 — variance-only compactness picks wrong")
    print("=" * 70)
    far_low_var = uniform_cluster([-5.0, 5.0], [0.1, 0.1])
    close_high_var = uniform_cluster([0.0, 0.2], [1.0, 1.0])
    var_a = UCentroid(far_low_var).total_variance
    var_b = UCentroid(close_high_var).total_variance
    print("cluster (a): objects at -5 and +5, tiny variance")
    print("cluster (b): objects at 0 and 0.2, large variance")
    print(f"  sigma^2(U-centroid):  (a) = {var_a:.4f}  <  (b) = {var_b:.4f}")
    print("  -> the variance-only criterion prefers (a), the WRONG cluster")
    print(f"  J:  (a) = {j_ucpc(far_low_var):.4f}  >  (b) = {j_ucpc(close_high_var):.4f}")
    print("  -> J correctly prefers the co-located cluster (b)\n")


def figure3() -> None:
    print("=" * 70)
    print("Figure 3 / Theorem 1 — U-centroid realizations")
    print("=" * 70)
    cluster = [
        UncertainObject.uniform_box([0.0, 0.0], [1.0, 0.5]),
        UncertainObject.uniform_box([4.0, 1.0], [0.5, 1.0]),
        UncertainObject.uniform_box([2.0, 4.0], [1.0, 1.0]),
    ]
    centroid = UCentroid(cluster)
    print(f"three member regions -> centroid region {centroid.region}")
    rng_draws = [obj.sample(3, seed=9) for obj in cluster]
    means = np.mean(rng_draws, axis=0)
    print("three joint member realizations and the induced centroid points:")
    for t in range(3):
        pts = [np.round(draw[t], 2) for draw in rng_draws]
        print(f"  members {pts} -> centroid {np.round(means[t], 2)}")
    inside = all(centroid.region.contains(means[t]) for t in range(3))
    print(f"all induced centroid points inside the Theorem 1 region: {inside}\n")


def propositions() -> None:
    print("=" * 70)
    print("Propositions 2-3 — the prior objectives collapse into J_UK")
    print("=" * 70)
    rng = np.random.default_rng(0)
    cluster = [
        UncertainObject.uniform_box(
            rng.normal(0, 3, 2), rng.uniform(0.2, 1.5, 2)
        )
        for _ in range(6)
    ]
    juk = j_uk(cluster)
    print(f"random cluster of {len(cluster)} objects:")
    print(f"  J_UK          = {juk:.4f}")
    print(f"  J_MM          = {j_mm(cluster):.4f}  (= J_UK/|C| = {juk / 6:.4f})")
    print(f"  J-hat (mixed) = {j_hat(cluster):.4f}  (= 2 J_UK = {2 * juk:.4f})")
    print(f"  J (UCPC)      = {j_ucpc(cluster):.4f}  (= sum_var/|C| + J_UK = "
          f"{sum_of_variances(cluster) / 6 + juk:.4f})")


def main() -> None:
    figure1()
    figure2()
    figure3()
    propositions()


if __name__ == "__main__":
    main()
