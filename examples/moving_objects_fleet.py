"""Moving-objects scenario: clustering a fleet with stale positions.

Run:  python examples/moving_objects_fleet.py

The paper's introduction motivates uncertain data with moving objects
whose reported positions are inherently obsolete.  This example builds a
fleet whose position uncertainty grows with per-object staleness and
speed, standardizes it, clusters it with UCPC and UK-means, and checks
run-to-run stability — showing the heterogeneous-variance regime where
the U-centroid's variance term actually matters.
"""

from __future__ import annotations

import numpy as np

from repro import UCPC, UKMeans, f_measure
from repro.datagen import make_moving_objects
from repro.evaluation import clustering_stability
from repro.objects import UncertainStandardizer

SEED = 5
N_HUBS = 4


def main() -> None:
    fleet = make_moving_objects(
        n_objects=240,
        n_hubs=N_HUBS,
        hub_radius=6.0,
        max_speed=4.0,
        max_staleness=5.0,
        pdf="uniform",
        seed=SEED,
    )
    variances = fleet.total_variances
    print(
        f"fleet: {len(fleet)} objects around {N_HUBS} hubs; position "
        f"uncertainty spans {variances.min():.1f}..{variances.max():.1f} "
        "(staleness-dependent)"
    )

    standardized = UncertainStandardizer().fit_transform(fleet)

    print(f"\n{'algorithm':10s} {'F-measure':>10s} {'stability (ARI)':>16s}")
    for algo in (UCPC(N_HUBS), UKMeans(N_HUBS)):
        scores = [
            f_measure(algo.fit(standardized, seed=s).labels, fleet.labels)
            for s in range(5)
        ]
        stability = clustering_stability(
            algo, standardized, n_runs=5, seed=SEED
        )
        print(
            f"{algo.name:10s} {np.mean(scores):10.3f} "
            f"{stability.mean_agreement:16.3f}"
        )

    print(
        "\nStale objects have large reachability boxes; the U-centroid's "
        "variance term (Theorem 3) lets UCPC price that uncertainty into "
        "its assignments."
    )


if __name__ == "__main__":
    main()
