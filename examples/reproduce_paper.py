"""Regenerate every table and figure of the paper in one run.

Run:  python examples/reproduce_paper.py [--full]

Default mode runs laptop-scaled versions of Table 2, Table 3, Figure 4
and Figure 5 (a few minutes total); ``--full`` raises dataset scales and
run counts toward the paper's settings (hours).  The printed report is
the same material recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_table2,
    run_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale datasets and 50-run averaging (slow)",
    )
    args = parser.parse_args()

    if args.full:
        table2_cfg = ExperimentConfig(max_objects=None, n_runs=50)
        table3_cfg = ExperimentConfig(max_objects=None, n_runs=50)
        figure4_cfg = ExperimentConfig(max_objects=None, n_runs=50)
        figure5_cfg = ExperimentConfig(n_runs=50)
        figure5_base = 4_000_000
    else:
        table2_cfg = ExperimentConfig(n_runs=5)
        table3_cfg = ExperimentConfig(scale=0.02, n_runs=3)
        figure4_cfg = ExperimentConfig(scale=0.05, n_runs=3)
        figure5_cfg = ExperimentConfig(n_runs=3)
        figure5_base = 20_000

    start = time.time()
    print("running Table 2 (accuracy on benchmarks)...")
    table2 = run_table2(table2_cfg)
    print(table2.render("theta"))
    print()
    print(table2.render("quality"))

    print("\nrunning Table 3 (Q on microarray stand-ins)...")
    table3 = run_table3(table3_cfg)
    print(table3.render())

    print("\nrunning Figure 4 (efficiency)...")
    figure4 = run_figure4(figure4_cfg)
    print(figure4.render())

    print("\nrunning Figure 5 (scalability)...")
    figure5 = run_figure5(figure5_cfg, base_size=figure5_base)
    print(figure5.render())

    print(f"\ntotal wall time: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
