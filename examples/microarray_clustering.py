"""Microarray scenario: clustering genes with probe-level uncertainty.

Run:  python examples/microarray_clustering.py

Reproduces the paper's "real data" workflow (Table 3) on a synthetic
stand-in for the Neuroblastoma dataset: genes are uncertain objects with
per-value Normal pdfs whose std shrinks with expression level (the
multi-mgMOS signature).  Because no reference classification exists, the
clusterings are compared with the internal criterion Q only — exactly as
in the paper — across several cluster counts.
"""

from __future__ import annotations

from repro import UCPC, MMVar, UKMeans, internal_scores, make_microarray

SEED = 33
CLUSTER_COUNTS = (2, 5, 10)


def main() -> None:
    genes = make_microarray("neuroblastoma", scale=0.02, seed=SEED)
    print(
        f"synthetic Neuroblastoma stand-in: {len(genes)} genes x "
        f"{genes.dim} tissue samples"
    )
    print(
        "probe-level uncertainty: mean std "
        f"{(genes.sigma2_matrix ** 0.5).mean():.3f} (higher on "
        "low-expressed probes, as in multi-mgMOS)"
    )

    # The dataset-cached pairwise ÊD plane; Q reuses it per clustering
    # (and engine-run UK-medoids would read the same matrix).
    distances = genes.pairwise_ed()

    print(f"\n{'k':>3s}  {'UKM':>7s}  {'MMV':>7s}  {'UCPC':>7s}   (internal criterion Q)")
    for k in CLUSTER_COUNTS:
        row = []
        for algo in (UKMeans(k), MMVar(k), UCPC(k)):
            result = algo.fit(genes, seed=SEED)
            q = internal_scores(genes, result.labels, distances).quality
            row.append(q)
        print(f"{k:3d}  {row[0]:+7.3f}  {row[1]:+7.3f}  {row[2]:+7.3f}")

    print(
        "\nHigher Q = tighter co-expression modules, better separated; "
        "the paper's Table 3 reports the same comparison at full scale."
    )


if __name__ == "__main__":
    main()
