"""Quickstart: cluster uncertain objects with UCPC and compare criteria.

Run:  python examples/quickstart.py

Walks through the library's core loop:
1. build uncertain objects (truncated-Normal pdfs around noisy points);
2. cluster them with UCPC (the paper's algorithm) and UK-means;
3. inspect the U-centroid of a recovered cluster;
4. score both clusterings with the paper's external/internal criteria.
"""

from __future__ import annotations

import numpy as np

from repro import (
    UCPC,
    UCentroid,
    UKMeans,
    f_measure,
    internal_scores,
    make_blobs_uncertain,
)

SEED = 2012


def main() -> None:
    # 1. Three uncertain blobs: every object is a truncated-Normal pdf
    #    whose region holds 95% of its mass (the paper's Case-2 setup).
    data = make_blobs_uncertain(
        n_objects=150,
        n_clusters=3,
        n_attributes=2,
        separation=7.0,
        uncertainty_std=0.5,
        seed=SEED,
    )
    print(f"dataset: {len(data)} uncertain objects, dim={data.dim}")
    print(f"mean object variance: {data.total_variances.mean():.3f}")

    # 2. Cluster with UCPC and UK-means.
    ucpc_result = UCPC(n_clusters=3, init="kmeans++").fit(data, seed=SEED)
    ukm_result = UKMeans(n_clusters=3, init="kmeans++").fit(data, seed=SEED)
    print(f"\nUCPC: objective={ucpc_result.objective:.2f} "
          f"iterations={ucpc_result.n_iterations} "
          f"time={ucpc_result.runtime_seconds * 1e3:.1f} ms")
    print(f"UK-means: objective={ukm_result.objective:.2f} "
          f"iterations={ukm_result.n_iterations} "
          f"time={ukm_result.runtime_seconds * 1e3:.1f} ms")

    # 3. The U-centroid of UCPC's first cluster is itself an uncertain
    #    object (Theorem 1): it has a region, moments, and can be sampled.
    members = [data[i] for i in ucpc_result.clusters()[0]]
    centroid = UCentroid(members)
    print(f"\nU-centroid of cluster 0: {centroid}")
    print(f"  region: {centroid.region}")
    print(f"  variance (Theorem 2): {centroid.total_variance:.4f}")
    realizations = centroid.sample(5, seed=SEED)
    print(f"  five realizations of X_C:\n{np.round(realizations, 3)}")

    # 4. Score both clusterings.
    reference = data.labels
    print("\nscores (higher is better):")
    for name, result in (("UCPC", ucpc_result), ("UK-means", ukm_result)):
        f_score = f_measure(result.labels, reference)
        q = internal_scores(data, result.labels).quality
        print(f"  {name:9s} F-measure={f_score:.3f}  Q={q:+.3f}")


if __name__ == "__main__":
    main()
