"""Sensor-network scenario: clustering imprecise sensor readings.

Run:  python examples/sensor_network.py

The paper's introduction motivates uncertain data with sensor
measurements ("sensor measurements may be imprecise ... due to signal
noise, instrumental errors, wireless transmission").  This example
simulates a field of sensors reporting (temperature, humidity) readings
whose error profiles differ per sensor class:

* mains-powered stations: tight Normal error;
* battery nodes: wider Uniform quantization error;
* long-range radio nodes: asymmetric Exponential staleness drift.

It then contrasts Case-1 clustering (pretend the noisy reading is exact)
with Case-2 clustering (model the error as a pdf) — the paper's Theta
protocol — for UCPC and UK-means.
"""

from __future__ import annotations

import numpy as np

from repro import (
    UCPC,
    UKMeans,
    UncertainDataset,
    UncertainObject,
    f_measure,
)
from repro.uncertainty import (
    IndependentProduct,
    TruncatedExponentialDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)

SEED = 7
N_ZONES = 4
SENSORS_PER_ZONE = 40


def build_sensor_field(rng: np.random.Generator):
    """True zone climates + per-sensor noisy readings and error models."""
    zone_centers = rng.uniform([10.0, 20.0], [35.0, 90.0], size=(N_ZONES, 2))
    readings = []
    uncertain_objects = []
    labels = []
    for zone, center in enumerate(zone_centers):
        for _ in range(SENSORS_PER_ZONE):
            truth = rng.normal(center, [0.8, 2.5])
            sensor_kind = rng.integers(0, 3)
            if sensor_kind == 0:  # mains-powered: tight Normal error
                noise_scale = np.array([0.3, 1.0])
                reading = truth + rng.normal(0, noise_scale)
                marginals = [
                    TruncatedNormalDistribution.central_mass(
                        reading[j], noise_scale[j], 0.95
                    )
                    for j in range(2)
                ]
            elif sensor_kind == 1:  # battery node: Uniform quantization
                half = np.array([1.0, 4.0])
                reading = truth + rng.uniform(-half, half)
                marginals = [
                    UniformDistribution.centered(reading[j], half[j])
                    for j in range(2)
                ]
            else:  # long-range radio: Exponential staleness drift
                # The reading overstates the truth by a nonnegative drift:
                # reading = truth + Exp(rate).  The correct posterior for
                # the truth is an Exponential tail *below* the reading —
                # its mean de-biases the reading by 1/rate.  This is the
                # asymmetry that makes Case-2 modeling genuinely help.
                rates = np.array([1.2, 0.4])
                reading = truth + rng.exponential(1.0 / rates)
                cutoffs = -np.log(0.05) / rates  # 95%-mass truncation
                marginals = [
                    TruncatedExponentialDistribution(
                        reading[j], rates[j], cutoff=cutoffs[j], direction=-1
                    )
                    for j in range(2)
                ]
            readings.append(reading)
            uncertain_objects.append(
                UncertainObject(IndependentProduct(marginals), label=zone)
            )
            labels.append(zone)
    return (
        np.array(readings),
        np.array(labels),
        UncertainDataset(uncertain_objects),
    )


def main() -> None:
    rng = np.random.default_rng(SEED)
    readings, labels, uncertain = build_sensor_field(rng)
    deterministic = UncertainDataset.from_points(readings, labels)
    print(
        f"sensor field: {len(uncertain)} sensors in {N_ZONES} climate zones; "
        f"mean reading variance {uncertain.total_variances.mean():.2f}"
    )

    print(f"\n{'algorithm':12s} {'F (case 1)':>11s} {'F (case 2)':>11s} {'Theta':>7s}")
    for algo_cls, kwargs in ((UCPC, {"init": "kmeans++"}), (UKMeans, {"init": "kmeans++"})):
        algo = algo_cls(n_clusters=N_ZONES, **kwargs)
        case1 = algo.fit(deterministic, seed=SEED)
        case2 = algo.fit(uncertain, seed=SEED)
        f1 = f_measure(case1.labels, labels)
        f2 = f_measure(case2.labels, labels)
        print(f"{algo.name:12s} {f1:11.3f} {f2:11.3f} {f2 - f1:+7.3f}")

    print(
        "\nTheta > 0 means modeling the error profile recovered zone "
        "structure that the raw noisy readings had blurred."
    )


if __name__ == "__main__":
    main()
