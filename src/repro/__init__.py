"""repro — reproduction of "Uncertain Centroid based Partitional Clustering
of Uncertain Data" (Gullo & Tagarelli, PVLDB 5(7), 2012).

The library implements the paper's UCPC algorithm and its full
experimental ecosystem: the multivariate uncertainty model, the
U-centroid, every competitor algorithm the paper evaluates against
(UK-means fast/basic, MinMax-BB, VDBiP, MMVar, UK-medoids, FDBSCAN,
FOPTICS, U-AHC), the external/internal validity criteria, the
Case-1/Case-2 uncertainty-evaluation protocol, and synthetic dataset
generators matching the paper's benchmark shapes.

Quickstart
----------
>>> from repro import UCPC, make_blobs_uncertain
>>> data = make_blobs_uncertain(n_objects=90, n_clusters=3, seed=0)
>>> result = UCPC(n_clusters=3).fit(data, seed=0)
>>> sorted(set(result.labels.tolist()))
[0, 1, 2]
"""

from repro.centroids import MixtureModelCentroid, UCentroid, ukmeans_centroid
from repro.clustering import (
    FDBSCAN,
    FOPTICS,
    MMVar,
    UAHC,
    UCPC,
    BasicUKMeans,
    ClusteringResult,
    ClusterStats,
    KMeans,
    MinMaxBB,
    UKMeans,
    UKMedoids,
    UncertainClusterer,
    VDBiP,
)
from repro.datagen import (
    UncertaintyGenerator,
    make_benchmark,
    make_blobs_uncertain,
    make_classification_like,
    make_microarray,
)
from repro.evaluation import (
    evaluate_theta,
    evaluate_theta_multirun,
    f_measure,
    internal_scores,
    quality_score,
)
from repro.engine import EarlyStopping, MultiRestartRunner, RestartRecord
from repro.exceptions import ReproError
from repro.objects import (
    UncertainDataset,
    UncertainObject,
    expected_distance_to_point,
    pairwise_squared_expected_distances,
    squared_expected_distance,
    validate_pairwise_ed,
)
from repro.uncertainty import (
    BoxRegion,
    IndependentProduct,
    MixtureDistribution,
    TruncatedExponentialDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # centroids
    "MixtureModelCentroid",
    "UCentroid",
    "ukmeans_centroid",
    # clustering
    "FDBSCAN",
    "FOPTICS",
    "MMVar",
    "UAHC",
    "UCPC",
    "BasicUKMeans",
    "ClusteringResult",
    "ClusterStats",
    "KMeans",
    "MinMaxBB",
    "UKMeans",
    "UKMedoids",
    "UncertainClusterer",
    "VDBiP",
    # data generation
    "UncertaintyGenerator",
    "make_benchmark",
    "make_blobs_uncertain",
    "make_classification_like",
    "make_microarray",
    # evaluation
    "evaluate_theta",
    "evaluate_theta_multirun",
    "f_measure",
    "internal_scores",
    "quality_score",
    # engine
    "EarlyStopping",
    "MultiRestartRunner",
    "RestartRecord",
    # errors
    "ReproError",
    # objects
    "UncertainDataset",
    "UncertainObject",
    "expected_distance_to_point",
    "pairwise_squared_expected_distances",
    "validate_pairwise_ed",
    "squared_expected_distance",
    # uncertainty
    "BoxRegion",
    "IndependentProduct",
    "MixtureDistribution",
    "TruncatedExponentialDistribution",
    "TruncatedNormalDistribution",
    "UniformDistribution",
]
