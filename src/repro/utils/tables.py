"""Plain-text table rendering for experiment reports.

The experiment runners print the same rows the paper's tables report;
this module turns lists of rows into aligned monospace tables without
pulling in any formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, float, int, None]


def _render_cell(cell: Cell, float_fmt: str) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def format_table(
    rows: Iterable[Sequence[Cell]],
    headers: Optional[Sequence[str]] = None,
    float_fmt: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` as an aligned monospace table.

    Parameters
    ----------
    rows:
        Iterable of row sequences; cells may be strings, numbers or None.
    headers:
        Optional column headers.
    float_fmt:
        ``format()`` spec applied to float cells (default three decimals,
        matching the paper's tables).
    title:
        Optional title line printed above the table.
    """
    rendered: List[List[str]] = [
        [_render_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    if headers is not None:
        header_row = [str(h) for h in headers]
    else:
        header_row = []

    all_rows = ([header_row] if header_row else []) + rendered
    if not all_rows:
        return title or ""
    n_cols = max(len(row) for row in all_rows)
    widths = [0] * n_cols
    for row in all_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        padded = [cell.rjust(widths[idx]) for idx, cell in enumerate(row)]
        return "  ".join(padded)

    lines: List[str] = []
    if title:
        lines.append(title)
    if header_row:
        lines.append(fmt_row(header_row))
        lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
