"""Numerically careful scalar helpers used throughout the library.

The clustering objectives in this library are sums of many small
nonnegative terms (per-dimension moments over thousands of objects), so
we provide compensated summation and tolerant comparisons in one place
instead of sprinkling ad-hoc epsilons through the algorithms.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._typing import FloatArray

#: Default relative tolerance for "objective did not improve" tests.
DEFAULT_RTOL = 1e-9

#: Default absolute tolerance paired with :data:`DEFAULT_RTOL`.
DEFAULT_ATOL = 1e-12


def kahan_sum(values: Iterable[float]) -> float:
    """Compensated (Kahan) summation of a scalar iterable.

    Keeps a running compensation term so that accumulating many values of
    differing magnitude loses far less precision than a naive loop.
    """
    total = 0.0
    compensation = 0.0
    for value in values:
        y = float(value) - compensation
        t = total + y
        compensation = (t - total) - y
        total = t
    return total


def stable_norm_sq(vec: FloatArray) -> float:
    """Squared Euclidean norm computed via a dot product.

    ``float(vec @ vec)`` is both faster and more accurate than
    ``np.sum(vec ** 2)`` for the small dense vectors used here.
    """
    vec = np.asarray(vec, dtype=np.float64)
    return float(vec @ vec)


def safe_sqrt(value: float) -> float:
    """Square root that clips tiny negative round-off to zero.

    Corollary 1 of the paper updates the Υ term via
    ``(sqrt(Υ) ± μ)²``; accumulated round-off can push Υ a hair below
    zero, which must read as zero rather than NaN.
    """
    if value < 0.0:
        if value < -1e-8:
            raise ValueError(f"safe_sqrt of significantly negative value {value}")
        return 0.0
    return float(np.sqrt(value))


def relative_error(measured: float, reference: float) -> float:
    """|measured − reference| scaled by max(1, |reference|)."""
    return abs(measured - reference) / max(1.0, abs(reference))


def is_close(a: float, b: float, rtol: float = DEFAULT_RTOL, atol: float = DEFAULT_ATOL) -> bool:
    """Symmetric tolerant float comparison."""
    return bool(np.isclose(a, b, rtol=rtol, atol=atol))


def improved(new_value: float, old_value: float, rtol: float = DEFAULT_RTOL) -> bool:
    """Whether ``new_value`` is a *strict* improvement (decrease) on ``old_value``.

    Used by local-search loops to decide whether a candidate relocation
    lowers the objective by more than numerical noise.
    """
    return new_value < old_value - rtol * max(1.0, abs(old_value))
