"""Eager argument validation helpers.

The library validates inputs at its public boundaries and raises
:class:`~repro.exceptions.InvalidParameterError` /
:class:`~repro.exceptions.DimensionMismatchError` immediately, rather
than letting numpy broadcast errors surface from deep inside an
iteration loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import FloatArray, MatrixLike, VectorLike
from repro.exceptions import DimensionMismatchError, InvalidParameterError


def ensure_vector(
    values: VectorLike,
    name: str = "values",
    dim: Optional[int] = None,
    allow_infinite: bool = False,
) -> FloatArray:
    """Convert ``values`` to a contiguous 1-D float64 array.

    Parameters
    ----------
    values:
        Sequence or array convertible to a 1-D float vector.
    name:
        Argument name used in error messages.
    dim:
        When given, the required length of the vector.
    allow_infinite:
        Permit +-inf entries (used for unbounded region limits); NaN is
        always rejected.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise InvalidParameterError(
            f"{name} must be 1-dimensional, got shape {arr.shape}"
        )
    if dim is not None and arr.shape[0] != dim:
        raise DimensionMismatchError(
            f"{name} must have length {dim}, got {arr.shape[0]}"
        )
    if allow_infinite:
        if np.any(np.isnan(arr)):
            raise InvalidParameterError(f"{name} must not contain NaN")
    else:
        check_finite_array(arr, name)
    return np.ascontiguousarray(arr)


def ensure_matrix(
    values: MatrixLike,
    name: str = "values",
    cols: Optional[int] = None,
) -> FloatArray:
    """Convert ``values`` to a contiguous 2-D float64 array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise InvalidParameterError(
            f"{name} must be 2-dimensional, got shape {arr.shape}"
        )
    if cols is not None and arr.shape[1] != cols:
        raise DimensionMismatchError(
            f"{name} must have {cols} columns, got {arr.shape[1]}"
        )
    check_finite_array(arr, name)
    return np.ascontiguousarray(arr)


def check_finite_array(arr: np.ndarray, name: str = "values") -> None:
    """Raise if ``arr`` contains NaN or infinity."""
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} must contain only finite values")


def check_positive(value: float, name: str, strict: bool = True) -> float:
    """Validate a scalar is positive (or nonnegative when ``strict=False``)."""
    value = float(value)
    if not np.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise InvalidParameterError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate a scalar lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise InvalidParameterError(f"{name} must be in [0, 1], got {value}")
    return value


def check_int_range(
    value: int,
    name: str,
    low: Optional[int] = None,
    high: Optional[int] = None,
) -> int:
    """Validate an integer lies in ``[low, high]`` (either bound optional)."""
    if not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(
            f"{name} must be an integer, got {type(value).__name__}"
        )
    value = int(value)
    if low is not None and value < low:
        raise InvalidParameterError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise InvalidParameterError(f"{name} must be <= {high}, got {value}")
    return value
