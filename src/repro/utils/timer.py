"""Wall-clock timing helpers for the efficiency experiments.

The paper's Figures 4–5 report clustering runtimes; :class:`Stopwatch`
gives the experiment harness a tiny, dependency-free way to time code
sections with pause/resume semantics (needed to exclude "off-line"
phases exactly as the paper does).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating wall-clock stopwatch with pause/resume.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch.running():
    ...     _ = sum(range(1000))
    >>> watch.elapsed_seconds >= 0.0
    True
    """

    elapsed_seconds: float = 0.0
    _started_at: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> None:
        """Begin (or resume) timing; no-op if already running."""
        if not self._running:
            self._started_at = time.perf_counter()
            self._running = True

    def stop(self) -> float:
        """Pause timing and return total accumulated seconds."""
        if self._running:
            self.elapsed_seconds += time.perf_counter() - self._started_at
            self._running = False
        return self.elapsed_seconds

    def reset(self) -> None:
        """Zero the accumulator and stop the watch."""
        self.elapsed_seconds = 0.0
        self._running = False

    @contextmanager
    def running(self) -> Iterator["Stopwatch"]:
        """Context manager that times the enclosed block."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    @property
    def elapsed_ms(self) -> float:
        """Accumulated milliseconds (the unit used by the paper's plots)."""
        return self.elapsed_seconds * 1e3


def timed(func: Callable[..., T], *args: object, **kwargs: object) -> Tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
