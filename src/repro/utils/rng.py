"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument
that may be ``None`` (fresh entropy), an ``int`` (reproducible), or an
already-constructed :class:`numpy.random.Generator` (shared stream).
:func:`ensure_rng` normalizes all three into a ``Generator`` so that the
rest of the code never has to branch on seed type.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._typing import SeedLike
from repro.exceptions import InvalidParameterError


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or
        an existing ``Generator`` which is returned unchanged.

    Raises
    ------
    InvalidParameterError
        If ``seed`` is of an unsupported type.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise InvalidParameterError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    independent regardless of whether ``seed`` was an int or a generator.
    This is how multi-run experiments obtain per-run streams that do not
    overlap even when runs execute in arbitrary order.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seed material from the stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
