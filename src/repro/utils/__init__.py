"""Shared low-level utilities: RNG handling, validation, numerics, timing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.numeric import (
    kahan_sum,
    relative_error,
    safe_sqrt,
    stable_norm_sq,
)
from repro.utils.validation import (
    check_finite_array,
    check_positive,
    check_probability,
    ensure_matrix,
    ensure_vector,
)
from repro.utils.timer import Stopwatch, timed
from repro.utils.tables import format_table

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "kahan_sum",
    "relative_error",
    "safe_sqrt",
    "stable_norm_sq",
    "check_finite_array",
    "check_positive",
    "check_probability",
    "ensure_matrix",
    "ensure_vector",
    "Stopwatch",
    "timed",
    "format_table",
]
