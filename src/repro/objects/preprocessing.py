"""Preprocessing transforms for uncertain datasets.

Clustering objectives built on squared distances are scale-sensitive;
real attribute sets (the paper's benchmarks mix e.g. ring counts and
weights in Abalone) need standardization before any of the moments are
comparable across dimensions.  A deterministic z-score cannot be applied
to an uncertain object directly — the transform must act on the whole
distribution.  For the affine map ``x -> (x - shift) / scale`` the
moments transform exactly:

    mu'     = (mu - shift) / scale
    sigma'2 = sigma^2 / scale^2

and every supported marginal family is closed under the map, so the
standardized dataset is again a first-class uncertain dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._typing import FloatArray
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject
from repro.uncertainty.base import UnivariateDistribution
from repro.uncertainty.empirical import EmpiricalDistribution
from repro.uncertainty.exponential import TruncatedExponentialDistribution
from repro.uncertainty.normal import TruncatedNormalDistribution
from repro.uncertainty.point import MultivariatePointMass, PointMassDistribution
from repro.uncertainty.product import IndependentProduct
from repro.uncertainty.triangular import TriangularDistribution
from repro.uncertainty.uniform import UniformDistribution
from repro.utils.validation import ensure_vector


def _transform_marginal(
    marginal: UnivariateDistribution, shift: float, scale: float
) -> UnivariateDistribution:
    """Apply ``x -> (x - shift)/scale`` to one marginal, exactly."""
    if isinstance(marginal, PointMassDistribution):
        return PointMassDistribution((marginal.mean - shift) / scale)
    if isinstance(marginal, UniformDistribution):
        return UniformDistribution(
            (marginal.support_lower - shift) / scale,
            (marginal.support_upper - shift) / scale,
        )
    if isinstance(marginal, TriangularDistribution):
        return TriangularDistribution(
            (marginal.support_lower - shift) / scale,
            (marginal.mode - shift) / scale,
            (marginal.support_upper - shift) / scale,
        )
    if isinstance(marginal, TruncatedNormalDistribution):
        return TruncatedNormalDistribution(
            (marginal.loc - shift) / scale,
            marginal.scale / scale,
            (marginal.support_lower - shift) / scale,
            (marginal.support_upper - shift) / scale,
        )
    if isinstance(marginal, TruncatedExponentialDistribution):
        cutoff = marginal.support_upper - marginal.support_lower
        return TruncatedExponentialDistribution(
            (marginal.origin - shift) / scale,
            marginal.rate * scale,
            cutoff=cutoff / scale if np.isfinite(cutoff) else np.inf,
            direction=marginal.direction,
        )
    raise InvalidParameterError(
        f"cannot standardize marginal of type {type(marginal).__name__}"
    )


@dataclass
class StandardizationPlan:
    """The fitted affine parameters of a :class:`UncertainStandardizer`."""

    shift: FloatArray
    scale: FloatArray


class UncertainStandardizer:
    """Per-dimension z-scoring of an uncertain dataset.

    Fit computes each dimension's mean and standard deviation of the
    *expected values* (the natural location/scale of the dataset's
    central tendency); transform maps every object's distribution
    through the affine map exactly.

    Parameters
    ----------
    with_scale:
        When False, only centers the data (scale fixed at 1).

    Examples
    --------
    >>> from repro.datagen import make_blobs_uncertain
    >>> data = make_blobs_uncertain(n_objects=30, seed=0)
    >>> std = UncertainStandardizer().fit(data)
    >>> z = std.transform(data)
    >>> abs(float(z.mu_matrix.mean(axis=0)[0])) < 1e-9
    True
    """

    def __init__(self, with_scale: bool = True):
        self.with_scale = bool(with_scale)
        self._plan: Optional[StandardizationPlan] = None

    @property
    def plan(self) -> StandardizationPlan:
        """The fitted parameters (raises before :meth:`fit`)."""
        if self._plan is None:
            raise NotFittedError("call fit() before using the standardizer")
        return self._plan

    def fit(self, dataset: UncertainDataset) -> "UncertainStandardizer":
        """Learn shift/scale from the dataset's expected values."""
        mu = dataset.mu_matrix
        shift = mu.mean(axis=0)
        if self.with_scale:
            scale = mu.std(axis=0)
            scale = np.where(scale > 0, scale, 1.0)
        else:
            scale = np.ones(dataset.dim)
        self._plan = StandardizationPlan(shift=shift, scale=scale)
        return self

    def transform(self, dataset: UncertainDataset) -> UncertainDataset:
        """Return the standardized dataset (distributions transformed exactly)."""
        plan = self.plan
        objects: List[UncertainObject] = []
        for obj in dataset:
            objects.append(self._transform_object(obj, plan))
        return UncertainDataset(objects)

    def fit_transform(self, dataset: UncertainDataset) -> UncertainDataset:
        """``fit`` then ``transform`` in one call."""
        return self.fit(dataset).transform(dataset)

    def inverse_point(self, point) -> FloatArray:
        """Map a standardized point back to original coordinates."""
        plan = self.plan
        p = ensure_vector(point, "point", dim=plan.shift.shape[0])
        return p * plan.scale + plan.shift

    def _transform_object(
        self, obj: UncertainObject, plan: StandardizationPlan
    ) -> UncertainObject:
        dist = obj.distribution
        if isinstance(dist, MultivariatePointMass):
            return UncertainObject.from_point(
                (obj.mu - plan.shift) / plan.scale, label=obj.label
            )
        if isinstance(dist, IndependentProduct):
            marginals = [
                _transform_marginal(dist.marginal(j), plan.shift[j], plan.scale[j])
                for j in range(obj.dim)
            ]
            return UncertainObject(IndependentProduct(marginals), label=obj.label)
        if isinstance(dist, EmpiricalDistribution):
            samples = (dist.samples - plan.shift) / plan.scale
            return UncertainObject(
                EmpiricalDistribution(samples, dist.weights), label=obj.label
            )
        raise InvalidParameterError(
            f"cannot standardize distribution of type {type(dist).__name__}"
        )
