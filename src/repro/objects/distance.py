"""Expected-distance machinery (S4).

Three distances from the paper:

* ``ED_d(o, y)`` — expected distance between an uncertain object and a
  deterministic point under an arbitrary point metric ``d``; in general
  it has no closed form and must be Monte-Carlo approximated
  (:func:`expected_distance_mc`).  This is the bottleneck of the *basic*
  UK-means.
* ``ED(o, y)`` — the same with squared Euclidean ``d``, which *does*
  have a closed form (Eq. (8)):
  ``ED(o, y) = ED(o, mu(o)) + ||y - mu(o)||^2``
  where ``ED(o, mu(o)) = sigma^2(o)`` is the object's scalar variance.
* ``ÊD(o, o')`` — squared expected distance between two uncertain
  objects (Eq. (13)); Lemma 3 gives the closed form
  ``sum_j [mu2_j(o) - 2 mu_j(o) mu_j(o') + mu2_j(o')]``
  which equals ``sigma^2(o) + sigma^2(o') + ||mu(o) - mu(o')||^2``.

Vectorized dataset-level versions power the assignment steps of every
algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import FloatArray, PointMetric, SeedLike, VectorLike
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject
from repro.utils.rng import ensure_rng
from repro.utils.validation import ensure_matrix, ensure_vector


# ----------------------------------------------------------------------
# Object <-> point
# ----------------------------------------------------------------------
def expected_distance_to_point(obj: UncertainObject, point: VectorLike) -> float:
    """Closed-form ``ED(o, y)`` for the squared Euclidean metric (Eq. (8)).

    ``ED(o, y) = sigma^2(o) + ||mu(o) - y||^2`` — the first term is the
    run-constant part the fast UK-means of [14] precomputes off-line.
    """
    y = ensure_vector(point, "point", dim=obj.dim)
    diff = obj.mu - y
    return obj.total_variance + float(diff @ diff)


def expected_distance_mc(
    obj: UncertainObject,
    point: VectorLike,
    metric: Optional[PointMetric] = None,
    n_samples: int = 256,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo ``ED_d(o, y)`` for an arbitrary point metric.

    This is the expensive integral the basic UK-means evaluates at every
    assignment; with the default (squared Euclidean) metric it converges
    to :func:`expected_distance_to_point`.

    Parameters
    ----------
    metric:
        Callable ``d(x, y) -> float``; defaults to squared Euclidean.
    n_samples:
        Sample-set cardinality ``S`` in the paper's complexity analysis.
    """
    if n_samples <= 0:
        raise InvalidParameterError(f"n_samples must be > 0, got {n_samples}")
    y = ensure_vector(point, "point", dim=obj.dim)
    samples = obj.sample(n_samples, seed)
    if metric is None:
        diffs = samples - y
        return float(np.einsum("ij,ij->i", diffs, diffs).mean())
    total = 0.0
    for row in samples:
        total += float(metric(row, y))
    return total / n_samples


def expected_distances_to_points(
    dataset: UncertainDataset, points: np.ndarray
) -> FloatArray:
    """Matrix of ``ED(o_i, y_c)`` for all objects x all points.

    Returns shape ``(n, k)``; used by the vectorized UK-means assignment
    step.  Row ``i`` is ``sigma^2(o_i) + ||mu(o_i) - y_c||^2`` over ``c``.
    """
    centers = ensure_matrix(points, "points", cols=dataset.dim)
    mu = dataset.mu_matrix
    # ||mu_i - y_c||^2 expanded to avoid an (n, k, m) temporary.
    mu_sq = np.einsum("ij,ij->i", mu, mu)
    center_sq = np.einsum("cj,cj->c", centers, centers)
    cross = mu @ centers.T
    dist_sq = mu_sq[:, None] - 2.0 * cross + center_sq[None, :]
    np.maximum(dist_sq, 0.0, out=dist_sq)
    return dist_sq + dataset.total_variances[:, None]


# ----------------------------------------------------------------------
# Object <-> object (Lemma 3)
# ----------------------------------------------------------------------
def squared_expected_distance(a: UncertainObject, b: UncertainObject) -> float:
    """Closed-form ``ÊD(o, o')`` between two uncertain objects (Lemma 3)."""
    if a.dim != b.dim:
        raise InvalidParameterError(
            f"objects have different dimensionality: {a.dim} vs {b.dim}"
        )
    return float(np.sum(a.mu2 - 2.0 * a.mu * b.mu + b.mu2))


def squared_expected_distance_mc(
    a: UncertainObject,
    b: UncertainObject,
    n_samples: int = 4096,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of ``ÊD(o, o')`` from the double integral (Eq. (13)).

    Exists to validate Lemma 3 numerically; production code should use
    :func:`squared_expected_distance`.
    """
    rng = ensure_rng(seed)
    xs = a.sample(n_samples, rng)
    ys = b.sample(n_samples, rng)
    diffs = xs - ys
    return float(np.einsum("ij,ij->i", diffs, diffs).mean())


def pairwise_squared_expected_distances(dataset: UncertainDataset) -> FloatArray:
    """Full ``(n, n)`` matrix of ``ÊD(o_i, o_j)``.

    ``ÊD(o_i, o_j) = sigma^2_i + sigma^2_j + ||mu_i - mu_j||^2`` — note
    the diagonal is ``2 sigma^2_i``, not zero: the expected distance of an
    uncertain object to an independent copy of itself is twice its
    variance.  UK-medoids and the internal validity criteria consume this
    matrix.
    """
    mu = dataset.mu_matrix
    var = dataset.total_variances
    mu_sq = np.einsum("ij,ij->i", mu, mu)
    cross = mu @ mu.T
    dist_sq = mu_sq[:, None] - 2.0 * cross + mu_sq[None, :]
    np.maximum(dist_sq, 0.0, out=dist_sq)
    return dist_sq + var[:, None] + var[None, :]


def validate_pairwise_ed(
    matrix: np.ndarray,
    n: Optional[int] = None,
    name: str = "precomputed",
) -> FloatArray:
    """Validate an externally supplied ``ÊD`` matrix.

    An ``ÊD`` matrix is by construction square, symmetric, finite and
    non-negative (it is a sum of variances and a squared norm); a matrix
    violating any of these is not a pairwise expected-distance matrix at
    all — most commonly a transposed slice, an aggregation with NaNs, or
    a similarity matrix passed where a distance matrix belongs — and
    silently clustering it produces garbage, so each property is checked
    with a targeted :class:`InvalidParameterError`.

    The returned array **aliases the caller's array** whenever the input
    already is a C-ordered float64 ndarray (``np.asarray`` semantics):
    the matrix is O(n^2) by design and consumers like UK-medoids only
    read it.  Callers who mutate their array afterwards therefore mutate
    the clusterer's view too; pass a copy to opt out.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise InvalidParameterError(
            f"{name} matrix must be square (n, n), got shape {arr.shape}"
        )
    if n is not None and arr.shape != (n, n):
        raise InvalidParameterError(
            f"{name} matrix must be ({n}, {n}), got {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise InvalidParameterError(
            f"{name} matrix contains non-finite entries (NaN or inf)"
        )
    if arr.size and float(arr.min()) < 0.0:
        raise InvalidParameterError(
            f"{name} matrix contains negative entries; ÊD distances are "
            "non-negative"
        )
    if not np.allclose(arr, arr.T, rtol=1e-7, atol=1e-10):
        raise InvalidParameterError(
            f"{name} matrix must be symmetric (within tolerance); "
            "ÊD(o, o') == ÊD(o', o)"
        )
    return arr


def cross_squared_expected_distances(
    dataset: UncertainDataset, others: UncertainDataset
) -> FloatArray:
    """``(n, p)`` matrix of ``ÊD`` between two datasets' objects."""
    if dataset.dim != others.dim:
        raise InvalidParameterError("datasets must share dimensionality")
    mu_a = dataset.mu_matrix
    mu_b = others.mu_matrix
    sq_a = np.einsum("ij,ij->i", mu_a, mu_a)
    sq_b = np.einsum("ij,ij->i", mu_b, mu_b)
    dist_sq = sq_a[:, None] - 2.0 * (mu_a @ mu_b.T) + sq_b[None, :]
    np.maximum(dist_sq, 0.0, out=dist_sq)
    return dist_sq + dataset.total_variances[:, None] + others.total_variances[None, :]
