"""Uncertain objects, datasets, and expected-distance machinery (S3-S4)."""

from repro.objects.dataset import UncertainDataset
from repro.objects.distance import (
    cross_squared_expected_distances,
    expected_distance_mc,
    expected_distance_to_point,
    expected_distances_to_points,
    pairwise_squared_expected_distances,
    squared_expected_distance,
    squared_expected_distance_mc,
    validate_pairwise_ed,
)
from repro.objects.preprocessing import StandardizationPlan, UncertainStandardizer
from repro.objects.uncertain_object import UncertainObject, objects_dim

__all__ = [
    "StandardizationPlan",
    "UncertainStandardizer",
    "UncertainDataset",
    "UncertainObject",
    "objects_dim",
    "cross_squared_expected_distances",
    "expected_distance_mc",
    "expected_distance_to_point",
    "expected_distances_to_points",
    "pairwise_squared_expected_distances",
    "squared_expected_distance",
    "squared_expected_distance_mc",
    "validate_pairwise_ed",
]
