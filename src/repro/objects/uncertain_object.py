"""The uncertain object — the unit of data every algorithm clusters.

Definition 1 of the paper: an uncertain object is a pair ``(R, f)``.
:class:`UncertainObject` wraps a :class:`MultivariateDistribution`
(which carries both region and pdf), caches its moment vectors — the
quantities every partitional algorithm precomputes in its off-line phase
(Line 1 of Algorithm 1) — and carries an optional label/identifier used
by the evaluation protocol.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._typing import FloatArray, SeedLike, VectorLike
from repro.uncertainty.base import MultivariateDistribution
from repro.uncertainty.normal import TruncatedNormalDistribution
from repro.uncertainty.point import MultivariatePointMass
from repro.uncertainty.product import IndependentProduct
from repro.uncertainty.region import BoxRegion
from repro.uncertainty.uniform import UniformDistribution
from repro.utils.validation import ensure_vector


class UncertainObject:
    """An uncertain data object ``o = (R, f)`` with cached moments.

    Parameters
    ----------
    distribution:
        The multivariate distribution describing the object.
    label:
        Optional class label (used only by external validity criteria,
        never by the clustering algorithms themselves).
    object_id:
        Optional stable identifier; defaults to ``None``.

    Notes
    -----
    The moment vectors ``mu(o)``, ``mu2(o)``, ``sigma^2(o)`` (Eqs.
    (2)-(3)) are computed once at construction — mirroring the paper's
    off-line phase — and exposed as read-only arrays.
    """

    __slots__ = ("_dist", "_mu", "_mu2", "_sigma2", "label", "object_id")

    def __init__(
        self,
        distribution: MultivariateDistribution,
        label: Optional[int] = None,
        object_id: Optional[int] = None,
    ):
        self._dist = distribution
        self._mu = np.array(distribution.mean_vector, dtype=np.float64)
        self._mu2 = np.array(distribution.second_moment_vector, dtype=np.float64)
        self._sigma2 = np.maximum(self._mu2 - self._mu**2, 0.0)
        self._mu.setflags(write=False)
        self._mu2.setflags(write=False)
        self._sigma2.setflags(write=False)
        self.label = label
        self.object_id = object_id

    # ------------------------------------------------------------------
    # Model accessors
    # ------------------------------------------------------------------
    @property
    def distribution(self) -> MultivariateDistribution:
        """The underlying multivariate distribution ``f``."""
        return self._dist

    @property
    def region(self) -> BoxRegion:
        """The domain region ``R``."""
        return self._dist.region

    @property
    def dim(self) -> int:
        """Dimensionality m of the object."""
        return self._mu.shape[0]

    # ------------------------------------------------------------------
    # Moments (Eqs. (2)-(6))
    # ------------------------------------------------------------------
    @property
    def mu(self) -> FloatArray:
        """Expected-value vector ``mu(o)``."""
        return self._mu

    @property
    def mu2(self) -> FloatArray:
        """Raw second-order moment vector ``mu2(o)``."""
        return self._mu2

    @property
    def sigma2(self) -> FloatArray:
        """Variance vector ``sigma^2(o)``."""
        return self._sigma2

    @property
    def total_variance(self) -> float:
        """Scalar variance ``sigma^2(o) = ||sigma^2(o)||_1`` (Eq. (6))."""
        return float(self._sigma2.sum())

    # ------------------------------------------------------------------
    # Sampling / density passthrough
    # ------------------------------------------------------------------
    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        """Draw ``size`` realizations of the object, shape ``(size, m)``."""
        return self._dist.sample(size, seed)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Density of the object's pdf at the query points."""
        return self._dist.pdf(points)

    def __repr__(self) -> str:
        label_part = f", label={self.label}" if self.label is not None else ""
        return (
            f"UncertainObject(dim={self.dim}, mu={np.round(self._mu, 4)}"
            f"{label_part})"
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(point: VectorLike, label: Optional[int] = None) -> "UncertainObject":
        """Deterministic object (zero-variance point mass)."""
        return UncertainObject(MultivariatePointMass(point), label=label)

    @staticmethod
    def uniform_box(
        center: VectorLike,
        half_widths: VectorLike,
        label: Optional[int] = None,
    ) -> "UncertainObject":
        """Uniform object on a box centered at ``center``."""
        c = ensure_vector(center, "center")
        h = ensure_vector(half_widths, "half_widths", dim=c.shape[0])
        marginals = [
            UniformDistribution.centered(float(cj), float(hj))
            for cj, hj in zip(c, h)
        ]
        return UncertainObject(IndependentProduct(marginals), label=label)

    @staticmethod
    def gaussian(
        mean: VectorLike,
        std: VectorLike,
        mass: float = 0.95,
        label: Optional[int] = None,
    ) -> "UncertainObject":
        """Truncated-Normal object centered at ``mean``.

        Each marginal is a Normal truncated to its central ``mass``
        interval (the paper's Case-2 construction).
        """
        m = ensure_vector(mean, "mean")
        s = ensure_vector(std, "std", dim=m.shape[0])
        marginals = [
            TruncatedNormalDistribution.central_mass(float(mj), float(sj), mass)
            for mj, sj in zip(m, s)
        ]
        return UncertainObject(IndependentProduct(marginals), label=label)


def objects_dim(objects: Sequence[UncertainObject]) -> int:
    """Common dimensionality of a non-empty object sequence."""
    from repro.exceptions import DimensionMismatchError, EmptyDatasetError

    if not objects:
        raise EmptyDatasetError("object sequence is empty")
    dim = objects[0].dim
    for obj in objects:
        if obj.dim != dim:
            raise DimensionMismatchError(
                "all objects must share the same dimensionality"
            )
    return dim
