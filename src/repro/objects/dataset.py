"""Dataset container with vectorized moment views.

All partitional algorithms in the paper operate on per-object moment
vectors.  :class:`UncertainDataset` stacks the moments of its objects
into ``(n, m)`` matrices once, so that assignment steps run as numpy
matrix arithmetic instead of per-object Python loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, overload

import numpy as np

from repro._typing import FloatArray, IntArray
from repro.exceptions import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidParameterError,
)
from repro.objects.uncertain_object import UncertainObject


class UncertainDataset:
    """An immutable, indexable collection of :class:`UncertainObject`.

    Parameters
    ----------
    objects:
        The uncertain objects; all must share one dimensionality.

    Notes
    -----
    The stacked views (:attr:`mu_matrix`, :attr:`mu2_matrix`,
    :attr:`sigma2_matrix`, :attr:`total_variances`) are computed eagerly;
    they correspond to the off-line phase of Algorithm 1 (Line 1) and of
    UK-means/MMVar.
    """

    __slots__ = (
        "_objects",
        "_mu",
        "_mu2",
        "_sigma2",
        "_total_var",
        "_labels",
        "_sampling_plan",
        "_pairwise_ed",
    )

    def __init__(self, objects: Sequence[UncertainObject]):
        objs: List[UncertainObject] = list(objects)
        if not objs:
            raise EmptyDatasetError("a dataset needs at least one object")
        dim = objs[0].dim
        for obj in objs:
            if obj.dim != dim:
                raise DimensionMismatchError(
                    "all objects in a dataset must share dimensionality"
                )
        self._objects = tuple(objs)
        self._mu = np.vstack([obj.mu for obj in objs])
        self._mu2 = np.vstack([obj.mu2 for obj in objs])
        self._sigma2 = np.vstack([obj.sigma2 for obj in objs])
        self._total_var = self._sigma2.sum(axis=1)
        for arr in (self._mu, self._mu2, self._sigma2, self._total_var):
            arr.setflags(write=False)
        if all(obj.label is not None for obj in objs):
            self._labels = np.array([int(obj.label) for obj in objs])
            self._labels.setflags(write=False)
        else:
            self._labels = None
        self._sampling_plan = None
        self._pairwise_ed = None

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects)

    @overload
    def __getitem__(self, index: int) -> UncertainObject: ...

    @overload
    def __getitem__(self, index: slice) -> "UncertainDataset": ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return UncertainDataset(self._objects[index])
        return self._objects[index]

    def __repr__(self) -> str:
        return f"UncertainDataset(n={len(self)}, dim={self.dim})"

    # ------------------------------------------------------------------
    # Shape / moment views
    # ------------------------------------------------------------------
    @property
    def objects(self) -> tuple[UncertainObject, ...]:
        """The stored objects."""
        return self._objects

    @property
    def dim(self) -> int:
        """Dimensionality m shared by every object."""
        return self._mu.shape[1]

    @property
    def mu_matrix(self) -> FloatArray:
        """Stacked expected values, shape ``(n, m)``."""
        return self._mu

    @property
    def mu2_matrix(self) -> FloatArray:
        """Stacked raw second moments, shape ``(n, m)``."""
        return self._mu2

    @property
    def sigma2_matrix(self) -> FloatArray:
        """Stacked variance vectors, shape ``(n, m)``."""
        return self._sigma2

    @property
    def total_variances(self) -> FloatArray:
        """Per-object scalar variances (Eq. (6)), shape ``(n,)``."""
        return self._total_var

    @property
    def labels(self) -> Optional[IntArray]:
        """Reference class labels if every object carries one, else None."""
        return self._labels

    @property
    def n_classes(self) -> Optional[int]:
        """Number of distinct reference classes, if labels are present."""
        if self._labels is None:
            return None
        return int(np.unique(self._labels).size)

    # ------------------------------------------------------------------
    # Batched sampling
    # ------------------------------------------------------------------
    def sample_tensor(self, n_samples: int, seed=None) -> FloatArray:
        """One ``(n, S, m)`` realization tensor for the whole dataset.

        This is the vectorized off-line phase of the sample-based
        algorithms: marginal cells are grouped by distribution family
        and drawn with one quantile transform per family (see
        :mod:`repro.uncertainty.batch`) instead of ``n`` Python-level
        ``sample`` calls.  The grouping plan is compiled lazily on
        first use and cached (the dataset is immutable), so repeated
        draws — multi-restart runs, per-seed experiments — pay only the
        vectorized transforms.  Deterministic for a fixed ``seed``.
        """
        from repro.uncertainty.batch import build_sampling_plan

        if self._sampling_plan is None:
            self._sampling_plan = build_sampling_plan(
                [obj.distribution for obj in self._objects]
            )
        return self._sampling_plan.sample(n_samples, seed)

    # ------------------------------------------------------------------
    # Pairwise-distance plane
    # ------------------------------------------------------------------
    def pairwise_ed(self) -> FloatArray:
        """The ``(n, n)`` ``ÊD`` matrix, computed once and cached.

        This is the off-line phase of UK-medoids (Lemma 3) lifted to the
        dataset, mirroring the moment matrices and the sampling plan:
        the matrix is deterministic for an immutable dataset, so every
        consumer — engine restarts, the internal validity criteria, the
        Case-1/Case-2 protocol — reads one shared read-only copy instead
        of rebuilding the O(n^2 m) matrix per use.  Computed lazily on
        first call (it is O(n^2) memory, and the moment-based algorithms
        never need it).
        """
        from repro.objects.distance import pairwise_squared_expected_distances

        if self._pairwise_ed is None:
            matrix = pairwise_squared_expected_distances(self)
            matrix.setflags(write=False)
            self._pairwise_ed = matrix
        return self._pairwise_ed

    # ------------------------------------------------------------------
    # Shared-memory reconstruction (process execution backend)
    # ------------------------------------------------------------------
    def _moment_free_state(self):
        """The picklable state minus the stacked moment matrices.

        The process execution backend ships this small tuple to workers
        and publishes the ``(n, m)`` matrices through shared memory
        instead — see :meth:`_from_shared_moments`.
        """
        return self._objects, self._labels

    @classmethod
    def _from_shared_moments(
        cls, objects, labels, mu, mu2, sigma2
    ) -> "UncertainDataset":
        """Rebuild a dataset around externally provided moment views.

        Counterpart of :meth:`_moment_free_state`: the matrices are
        adopted as-is (typically read-only views over shared-memory
        blocks) instead of being restacked from the objects, so worker
        processes pay neither the pickling nor the recomputation cost.
        """
        dataset = object.__new__(cls)
        dataset._objects = tuple(objects)
        dataset._mu = mu
        dataset._mu2 = mu2
        dataset._sigma2 = sigma2
        total_var = sigma2.sum(axis=1)
        total_var.setflags(write=False)
        dataset._total_var = total_var
        if labels is not None:
            labels = np.asarray(labels)
            labels.setflags(write=False)
        dataset._labels = labels
        dataset._sampling_plan = None
        dataset._pairwise_ed = None
        return dataset

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------
    def subset(self, indices: Iterable[int]) -> "UncertainDataset":
        """Dataset restricted to the given object indices."""
        idx_list = list(indices)
        if not idx_list:
            raise EmptyDatasetError("subset needs at least one index")
        return UncertainDataset([self._objects[i] for i in idx_list])

    def sample_fraction(
        self,
        fraction: float,
        seed=None,
        stratified: bool = True,
    ) -> "UncertainDataset":
        """Random subset holding ``fraction`` of the objects.

        Used by the scalability study (Figure 5), which varies the
        dataset size from 5% to 100% while ensuring every class remains
        represented — hence ``stratified=True`` by default.
        """
        from repro.utils.rng import ensure_rng

        if not (0.0 < fraction <= 1.0):
            raise InvalidParameterError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        if fraction == 1.0:
            return self
        rng = ensure_rng(seed)
        n = len(self)
        if stratified and self._labels is not None:
            chosen: List[int] = []
            for cls in np.unique(self._labels):
                members = np.flatnonzero(self._labels == cls)
                take = max(1, int(round(fraction * members.size)))
                chosen.extend(
                    rng.choice(members, size=min(take, members.size), replace=False)
                )
            chosen.sort()
            return self.subset(chosen)
        take = max(1, int(round(fraction * n)))
        chosen = np.sort(rng.choice(n, size=take, replace=False))
        return self.subset(chosen.tolist())

    @staticmethod
    def from_points(
        points: np.ndarray, labels: Optional[Sequence[int]] = None
    ) -> "UncertainDataset":
        """Deterministic dataset: one zero-variance object per row."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise InvalidParameterError(
                f"points must be a 2-D matrix, got shape {pts.shape}"
            )
        if labels is not None and len(labels) != pts.shape[0]:
            raise InvalidParameterError("labels length must match points rows")
        objects = [
            UncertainObject.from_point(
                pts[i], label=None if labels is None else int(labels[i])
            )
            for i in range(pts.shape[0])
        ]
        return UncertainDataset(objects)
