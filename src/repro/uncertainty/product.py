"""Products of independent univariate marginals.

The paper's uncertainty generator assigns one pdf *per attribute*
(Section 5.1), so a multivariate uncertain object is the product of m
independent marginals.  Moments then decompose per dimension, which is
exactly the structure Eqs. (4)-(5) and Theorem 3 rely on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import FloatArray, SeedLike
from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution, UnivariateDistribution
from repro.uncertainty.region import BoxRegion
from repro.utils.rng import ensure_rng


class IndependentProduct(MultivariateDistribution):
    """Joint distribution of m statistically independent 1-D marginals.

    Parameters
    ----------
    marginals:
        One :class:`UnivariateDistribution` per dimension; the joint pdf
        is their product and the joint region is the box of their
        supports.
    """

    __slots__ = ("_marginals", "_region", "_mean", "_second")

    def __init__(self, marginals: Sequence[UnivariateDistribution]):
        if not marginals:
            raise InvalidParameterError("at least one marginal is required")
        self._marginals = tuple(marginals)
        self._region = BoxRegion(
            [m.support_lower for m in self._marginals],
            [m.support_upper for m in self._marginals],
        )
        self._mean = np.array([m.mean for m in self._marginals])
        self._second = np.array([m.second_moment for m in self._marginals])
        self._mean.setflags(write=False)
        self._second.setflags(write=False)

    @property
    def marginals(self) -> tuple[UnivariateDistribution, ...]:
        """The per-dimension marginal distributions."""
        return self._marginals

    @property
    def region(self) -> BoxRegion:
        return self._region

    @property
    def mean_vector(self) -> FloatArray:
        return self._mean

    @property
    def second_moment_vector(self) -> FloatArray:
        return self._second

    def pdf(self, points: np.ndarray) -> np.ndarray:
        pts = self._points_matrix(points)
        density = np.ones(pts.shape[0])
        for j, marginal in enumerate(self._marginals):
            density *= marginal.pdf(pts[:, j])
        return density

    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        rng = ensure_rng(seed)
        columns = [marginal.sample(size, rng) for marginal in self._marginals]
        return np.column_stack(columns)

    def marginal(self, j: int) -> UnivariateDistribution:
        """The j-th marginal (0-based)."""
        return self._marginals[j]
