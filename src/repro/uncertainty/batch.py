"""Family-grouped batch sampling — the off-line phase at dataset scale.

The sample-based algorithms (basic UK-means, MinMax-BB, VDBiP, the
density-based methods) all start by drawing an ``(n, S, m)`` realization
tensor.  Doing that object by object costs a Python-level ``ppf`` call
per *marginal* — ``n * m`` inverse-CDF evaluations of length ``S`` — and
dominates the off-line phase long before the on-line loop matters.

This module replaces the per-object loop with one vectorized draw per
*distribution family*.  Sampling is split into two phases:

* **plan building** (:func:`build_sampling_plan`) — every univariate
  marginal cell ``(object, dim)`` is grouped by its concrete family and
  the family's parameters are stacked into arrays once.  The plan
  depends only on the (immutable) distributions, so callers with a
  stable collection — :class:`~repro.objects.dataset.UncertainDataset`,
  the multi-restart engine — build it once and reuse it;
* **drawing** (:meth:`SamplingPlan.sample`) — one uniform matrix ``q``
  of shape ``(group, S)`` per family, mapped through the family's
  vectorized quantile transform in a single numpy call.  The transforms
  mirror each family's scalar ``ppf`` operation for operation, so
  batched and per-object sampling produce identical values for
  identical quantiles.

Beyond the univariate family registry, two multivariate families are
grouped natively so that *every* distribution in the library takes a
vectorized path: :class:`EmpiricalDistribution` (one inverse-CDF
``searchsorted`` over the stacked weight tables of the whole group) and
:class:`MixtureDistribution` (one uniform matrix selects components by
inverse CDF, then a recursive child plan over all components realizes
them in a single batched draw).  Only custom third-party multivariates
without a registered transform fall back to their own ``sample``
method, so the tensor sampler still accepts *any* collection of
:class:`~repro.uncertainty.base.MultivariateDistribution`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np
from scipy.special import ndtri

from repro._typing import FloatArray, SeedLike
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution, UnivariateDistribution
from repro.uncertainty.empirical import EmpiricalDistribution
from repro.uncertainty.exponential import TruncatedExponentialDistribution
from repro.uncertainty.mixture import MixtureDistribution
from repro.uncertainty.normal import TruncatedNormalDistribution
from repro.uncertainty.point import MultivariatePointMass, PointMassDistribution
from repro.uncertainty.product import IndependentProduct
from repro.uncertainty.triangular import TriangularDistribution
from repro.uncertainty.uniform import UniformDistribution
from repro.utils.rng import ensure_rng

#: Stacks same-family marginals into a tuple of parameter arrays, each
#: shaped ``(g, 1)`` for broadcasting against a ``(g, S)`` quantile
#: matrix.
StackFn = Callable[[Sequence[UnivariateDistribution]], Tuple[FloatArray, ...]]
#: Vectorized inverse CDF: ``apply(q, *params) -> values``, ``(g, S)``.
ApplyFn = Callable[..., FloatArray]

_FAMILIES: Dict[type, Tuple[StackFn, ApplyFn]] = {}


def register_batch_sampler(
    family: type,
) -> Callable[[Tuple[StackFn, ApplyFn]], Tuple[StackFn, ApplyFn]]:
    """Register a ``(stack, apply)`` batch-sampler pair for a family.

    ``stack`` extracts the family's parameters from same-family
    marginals once (plan-build time); ``apply`` maps a ``(g, S)``
    quantile matrix through the stacked parameters (draw time) and must
    reproduce the family's scalar ``ppf`` exactly.  Registration order
    fixes the RNG consumption order of :meth:`SamplingPlan.sample`, so
    third-party families should register at import time, not lazily.
    """

    def decorator(pair: Tuple[StackFn, ApplyFn]) -> Tuple[StackFn, ApplyFn]:
        _FAMILIES[family] = pair
        return pair

    return decorator


def batch_families() -> Tuple[type, ...]:
    """Marginal families with a registered batch sampler."""
    return tuple(_FAMILIES)


def is_batchable(dist: MultivariateDistribution) -> bool:
    """Whether ``dist`` is sampled by the grouped fast path.

    True for point masses, for independent products whose marginals all
    belong to registered families, for empirical distributions, and for
    mixtures whose components are (recursively) batchable; anything
    else takes the per-object ``sample`` fallback inside
    :meth:`SamplingPlan.sample`.
    """
    if isinstance(dist, MultivariatePointMass):
        return True
    if type(dist) is IndependentProduct:
        return all(type(m) in _FAMILIES for m in dist.marginals)
    if isinstance(dist, EmpiricalDistribution):
        return True
    if isinstance(dist, MixtureDistribution):
        return all(is_batchable(comp) for comp in dist.components)
    return False


# ----------------------------------------------------------------------
# Per-family stack/apply pairs.  Each ``apply`` mirrors the scalar
# ``ppf`` of its family operation for operation (same clips, same
# special functions), so identical quantiles give identical values.
# ----------------------------------------------------------------------
def _column(values: List[float]) -> FloatArray:
    return np.array(values, dtype=np.float64)[:, None]


def _uniform_stack(marginals: Sequence[UniformDistribution]):
    return (
        _column([m.support_lower for m in marginals]),
        _column([m.support_width for m in marginals]),
    )


def _uniform_apply(q: FloatArray, lower, width) -> FloatArray:
    return lower + q * width


register_batch_sampler(UniformDistribution)((_uniform_stack, _uniform_apply))


def _truncated_normal_stack(marginals: Sequence[TruncatedNormalDistribution]):
    return (
        _column([m.loc for m in marginals]),
        _column([m.scale for m in marginals]),
        _column([m.support_lower for m in marginals]),
        _column([m.support_upper for m in marginals]),
        _column([m._cdf_alpha for m in marginals]),
        _column([m._z_mass for m in marginals]),
    )


def _truncated_normal_apply(
    q: FloatArray, loc, scale, lower, upper, cdf_alpha, z_mass
) -> FloatArray:
    inner = cdf_alpha + np.clip(q, 0.0, 1.0) * z_mass
    inner = np.clip(inner, 1e-16, 1.0 - 1e-16)
    values = loc + scale * ndtri(inner)
    return np.clip(values, lower, upper)


register_batch_sampler(TruncatedNormalDistribution)(
    (_truncated_normal_stack, _truncated_normal_apply)
)


def _truncated_exponential_stack(
    marginals: Sequence[TruncatedExponentialDistribution],
):
    return (
        _column([m.origin for m in marginals]),
        _column([m.rate for m in marginals]),
        _column([float(m.direction) for m in marginals]),
        _column([m._cutoff for m in marginals]),
        _column([m._mass for m in marginals]),
    )


def _truncated_exponential_apply(
    q: FloatArray, origin, rate, direction, cutoff, mass
) -> FloatArray:
    q = np.clip(q, 0.0, 1.0)
    q_t = np.where(direction == 1.0, q, 1.0 - q)
    t = -np.log1p(-q_t * mass) / rate
    t = np.clip(t, 0.0, cutoff)
    return origin + direction * t


register_batch_sampler(TruncatedExponentialDistribution)(
    (_truncated_exponential_stack, _truncated_exponential_apply)
)


def _triangular_stack(marginals: Sequence[TriangularDistribution]):
    return (
        _column([m.support_lower for m in marginals]),
        _column([m.mode for m in marginals]),
        _column([m.support_upper for m in marginals]),
    )


def _triangular_apply(q: FloatArray, lower, mode, upper) -> FloatArray:
    q = np.clip(q, 0.0, 1.0)
    width = upper - lower
    rising = mode - lower
    falling = upper - mode
    pivot = np.divide(rising, width, out=np.zeros_like(width), where=width > 0)
    # Both branch expressions are nonnegative under the square root, and
    # degenerate sides (mode == lower / mode == upper) collapse to the
    # endpoint exactly as in the scalar ppf.
    low_values = lower + np.sqrt(q * width * rising)
    high_values = upper - np.sqrt((1.0 - q) * width * falling)
    return np.where(q <= pivot, low_values, high_values)


register_batch_sampler(TriangularDistribution)(
    (_triangular_stack, _triangular_apply)
)


def _point_mass_stack(marginals: Sequence[PointMassDistribution]):
    return (_column([m.mean for m in marginals]),)


def _point_mass_apply(q: FloatArray, values) -> FloatArray:
    return np.broadcast_to(values, q.shape).copy()


register_batch_sampler(PointMassDistribution)(
    (_point_mass_stack, _point_mass_apply)
)


# ----------------------------------------------------------------------
# Multivariate group samplers: empirical tables and finite mixtures.
# ----------------------------------------------------------------------
class _RowCdfTable:
    """Many per-row CDF tables, searchable in one vectorized lookup.

    Row ``r``'s values are shifted into ``(r, r + 1]`` (each CDF ends at
    exactly 1), so one global ``searchsorted(table, r + q, "right")``
    performs every row's inverse-CDF lookup at once.  The shift rounds
    (``fl(x + r)`` loses low bits as ``r`` grows), so the candidate
    indices are then *refined* against the unshifted per-row values —
    the final count of entries ``<= q`` is exactly the one the per-row
    ``searchsorted(cdf_r, q, "right")`` of the sequential samplers
    produces, keeping grouped and per-object draws identical value for
    value, ulp ties included.
    """

    __slots__ = ("shifted", "raw", "offsets", "last_index")

    def __init__(self, cdfs: Sequence[FloatArray]):
        sizes = np.array([cdf.shape[0] for cdf in cdfs], dtype=np.intp)
        self.offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        self.raw = np.concatenate(list(cdfs))
        self.shifted = np.concatenate(
            [cdf + r for r, cdf in enumerate(cdfs)]
        )
        self.last_index = self.offsets + sizes - 1

    def lookup(self, q: FloatArray) -> FloatArray:
        """Flat table index selected by each uniform in ``q`` (g, S)."""
        g = q.shape[0]
        shifted_q = q + np.arange(g)[:, None]
        flat = np.searchsorted(
            self.shifted, shifted_q.ravel(), side="right"
        ).reshape(q.shape)
        lower = self.offsets[:, None]
        upper = self.last_index[:, None] + 1  # exclusive row end
        flat = np.clip(flat, lower, upper)
        top = self.raw.shape[0] - 1
        while True:
            # Exact per-row correction: entry k is counted iff
            # raw[k] <= q.  "over"/"under" are mutually exclusive (the
            # CDF is non-decreasing), so each step moves monotonically
            # toward the exact count; outside ulp ties it runs once.
            over = (flat > lower) & (
                self.raw[np.clip(flat - 1, 0, top)] > q
            )
            under = (flat < upper) & (
                self.raw[np.clip(flat, 0, top)] <= q
            )
            if not (over.any() or under.any()):
                break
            flat = flat - over + under
        # Clamp the count to the last entry, as the sequential
        # samplers do (a no-op for q < 1 since each CDF ends at 1).
        return np.minimum(flat, self.last_index[:, None])


class _EmpiricalGroup:
    """All empirical objects of a collection, one searchsorted per draw."""

    __slots__ = ("rows", "values", "table")

    def __init__(self, rows: np.ndarray, members: Sequence[EmpiricalDistribution]):
        self.rows = rows
        self.values = np.concatenate([m.samples for m in members], axis=0)
        self.table = _RowCdfTable([m.weight_cdf for m in members])

    def sample(self, n_samples: int, rng: np.random.Generator, out: FloatArray) -> None:
        q = rng.random((self.rows.size, n_samples))
        out[self.rows] = self.values[self.table.lookup(q)]


class _MixtureGroup:
    """All (batchable) mixtures of a collection.

    One uniform matrix selects each draw's component via the stacked
    weight CDFs; a recursive child :class:`SamplingPlan` over the
    concatenation of every member's components realizes all components
    in one batched draw, and the selection gathers from it.  Mirrors
    :meth:`MixtureDistribution.sample` transform for transform, so a
    single-mixture collection reproduces the sequential draws exactly.
    """

    __slots__ = ("rows", "table", "child_plan")

    def __init__(self, rows: np.ndarray, members: Sequence[MixtureDistribution]):
        self.rows = rows
        self.table = _RowCdfTable([m.weight_cdf for m in members])
        components: List[MultivariateDistribution] = []
        for member in members:
            components.extend(member.components)
        self.child_plan = build_sampling_plan(components)

    def sample(self, n_samples: int, rng: np.random.Generator, out: FloatArray) -> None:
        q = rng.random((self.rows.size, n_samples))
        chosen = self.table.lookup(q)
        realizations = self.child_plan.sample(n_samples, rng)
        out[self.rows] = realizations[chosen, np.arange(n_samples)[None, :]]


# ----------------------------------------------------------------------
# The sampling plan and the dataset-level tensor sampler.
# ----------------------------------------------------------------------
class _FamilyGroup:
    """One family's stacked cells: where they live and their params."""

    __slots__ = ("apply", "rows", "dims", "params", "dense")

    def __init__(self, apply: ApplyFn, rows, dims, params, dense) -> None:
        self.apply = apply
        self.rows = rows
        self.dims = dims
        self.params = params
        # Cells are collected in (object, dim)-lexicographic order, so a
        # group holding every cell of the collection can skip the fancy
        # scatter and write through one reshape/transpose instead.
        self.dense = dense


class SamplingPlan:
    """Precompiled batch-sampling layout for a distribution collection.

    Built once per collection by :func:`build_sampling_plan`; every
    :meth:`sample` call then runs one uniform draw plus one vectorized
    quantile transform per family, with no per-object Python work.
    """

    __slots__ = ("n_objects", "dim", "_groups", "_point_rows",
                 "_point_values", "_empirical", "_mixture", "_fallback")

    def __init__(self, n_objects, dim, groups, point_rows, point_values,
                 empirical, mixture, fallback):
        self.n_objects = n_objects
        self.dim = dim
        self._groups = groups
        self._point_rows = point_rows
        self._point_values = point_values
        self._empirical = empirical
        self._mixture = mixture
        self._fallback = fallback

    @property
    def n_batched_cells(self) -> int:
        """Univariate marginal cells covered by the family fast path."""
        return sum(group.rows.size for group in self._groups)

    @property
    def n_empirical(self) -> int:
        """Objects drawn through the grouped empirical-table path."""
        return 0 if self._empirical is None else self._empirical.rows.size

    @property
    def n_mixture(self) -> int:
        """Objects drawn through the grouped mixture path."""
        return 0 if self._mixture is None else self._mixture.rows.size

    @property
    def n_fallback(self) -> int:
        """Objects sampled through their own ``sample`` method."""
        return len(self._fallback)

    def sample(self, n_samples: int, seed: SeedLike = None) -> FloatArray:
        """Draw the ``(n, S, m)`` tensor; deterministic for a fixed seed.

        RNG consumption order: registered family groups (registration
        order), then the empirical group, then the mixture group, then
        per-object fallbacks in collection order.  For a collection
        homogeneous in one path, this order coincides with the
        per-object loop's, so batched and sequential draws are
        identical value for value.
        """
        if n_samples < 1:
            raise InvalidParameterError(
                f"n_samples must be >= 1, got {n_samples}"
            )
        rng = ensure_rng(seed)
        out = np.empty((self.n_objects, n_samples, self.dim))
        if self._point_rows.size:
            out[self._point_rows] = self._point_values[:, None, :]
        for group in self._groups:
            q = rng.random((group.rows.size, n_samples))
            values = group.apply(q, *group.params)
            if group.dense:
                out[...] = values.reshape(
                    self.n_objects, self.dim, n_samples
                ).swapaxes(1, 2)
            else:
                out[group.rows, :, group.dims] = values
        if self._empirical is not None:
            self._empirical.sample(n_samples, rng, out)
        if self._mixture is not None:
            self._mixture.sample(n_samples, rng, out)
        for idx, dist in self._fallback:
            out[idx] = dist.sample(n_samples, rng)
        return out


def build_sampling_plan(
    distributions: Sequence[MultivariateDistribution],
) -> SamplingPlan:
    """Group a collection's cells and objects by family into a plan.

    Marginal cells of registered families are stacked per family
    (registration order), point masses are recorded for broadcast
    without randomness, empirical objects and batchable mixtures get
    their own grouped samplers, and anything else is kept as a
    per-object fallback, sampled in collection order after the grouped
    draws.
    """
    dists = list(distributions)
    if not dists:
        raise InvalidParameterError(
            "build_sampling_plan needs at least one distribution"
        )
    dim = dists[0].dim
    for dist in dists:
        if dist.dim != dim:
            raise DimensionMismatchError(
                "all distributions must share one dimensionality"
            )

    cells: Dict[type, List[Tuple[int, int, UnivariateDistribution]]] = {}
    point_rows: List[int] = []
    point_values: List[FloatArray] = []
    empirical_rows: List[int] = []
    empirical_members: List[EmpiricalDistribution] = []
    mixture_rows: List[int] = []
    mixture_members: List[MixtureDistribution] = []
    fallback: List[Tuple[int, MultivariateDistribution]] = []
    for idx, dist in enumerate(dists):
        if isinstance(dist, MultivariatePointMass):
            point_rows.append(idx)
            point_values.append(dist.mean_vector)
        elif isinstance(dist, EmpiricalDistribution):
            empirical_rows.append(idx)
            empirical_members.append(dist)
        elif isinstance(dist, MixtureDistribution) and is_batchable(dist):
            mixture_rows.append(idx)
            mixture_members.append(dist)
        elif is_batchable(dist):
            for j, marginal in enumerate(dist.marginals):
                cells.setdefault(type(marginal), []).append((idx, j, marginal))
        else:
            fallback.append((idx, dist))

    groups: List[_FamilyGroup] = []
    for family, (stack, apply) in _FAMILIES.items():
        members = cells.get(family)
        if not members:
            continue
        rows = np.fromiter((cell[0] for cell in members), dtype=np.intp)
        dims = np.fromiter((cell[1] for cell in members), dtype=np.intp)
        params = stack([cell[2] for cell in members])
        dense = rows.size == len(dists) * dim
        groups.append(_FamilyGroup(apply, rows, dims, params, dense))

    return SamplingPlan(
        n_objects=len(dists),
        dim=dim,
        groups=groups,
        point_rows=np.asarray(point_rows, dtype=np.intp),
        point_values=(
            np.vstack(point_values)
            if point_values
            else np.empty((0, dim))
        ),
        empirical=(
            _EmpiricalGroup(
                np.asarray(empirical_rows, dtype=np.intp), empirical_members
            )
            if empirical_rows
            else None
        ),
        mixture=(
            _MixtureGroup(
                np.asarray(mixture_rows, dtype=np.intp), mixture_members
            )
            if mixture_rows
            else None
        ),
        fallback=fallback,
    )


def sample_tensor(
    distributions: Sequence[MultivariateDistribution],
    n_samples: int,
    seed: SeedLike = None,
) -> FloatArray:
    """One i.i.d. realization tensor for a distribution collection.

    One-shot convenience over :func:`build_sampling_plan` +
    :meth:`SamplingPlan.sample`; callers drawing repeatedly from the
    same collection should build the plan once instead.

    Parameters
    ----------
    distributions:
        The per-object multivariate distributions; all must share one
        dimensionality ``m``.
    n_samples:
        Sample-set cardinality ``S`` per object.
    seed:
        ``None``, an int, or a shared :class:`numpy.random.Generator`.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, S, m)``; row ``i`` holds ``S`` draws of object ``i``.
    """
    return build_sampling_plan(distributions).sample(n_samples, seed)
