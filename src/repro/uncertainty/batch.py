"""Family-grouped batch sampling — the off-line phase at dataset scale.

The sample-based algorithms (basic UK-means, MinMax-BB, VDBiP, the
density-based methods) all start by drawing an ``(n, S, m)`` realization
tensor.  Doing that object by object costs a Python-level ``ppf`` call
per *marginal* — ``n * m`` inverse-CDF evaluations of length ``S`` — and
dominates the off-line phase long before the on-line loop matters.

This module replaces the per-object loop with one vectorized draw per
*distribution family*.  Sampling is split into two phases:

* **plan building** (:func:`build_sampling_plan`) — every univariate
  marginal cell ``(object, dim)`` is grouped by its concrete family and
  the family's parameters are stacked into arrays once.  The plan
  depends only on the (immutable) distributions, so callers with a
  stable collection — :class:`~repro.objects.dataset.UncertainDataset`,
  the multi-restart engine — build it once and reuse it;
* **drawing** (:meth:`SamplingPlan.sample`) — one uniform matrix ``q``
  of shape ``(group, S)`` per family, mapped through the family's
  vectorized quantile transform in a single numpy call.  The transforms
  mirror each family's scalar ``ppf`` operation for operation, so
  batched and per-object sampling produce identical values for
  identical quantiles.

Distributions without a registered family transform (empirical,
mixtures, custom multivariates) fall back to their own ``sample``
method, so the tensor sampler accepts *any* collection of
:class:`~repro.uncertainty.base.MultivariateDistribution`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np
from scipy.special import ndtri

from repro._typing import FloatArray, SeedLike
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution, UnivariateDistribution
from repro.uncertainty.exponential import TruncatedExponentialDistribution
from repro.uncertainty.normal import TruncatedNormalDistribution
from repro.uncertainty.point import MultivariatePointMass, PointMassDistribution
from repro.uncertainty.product import IndependentProduct
from repro.uncertainty.triangular import TriangularDistribution
from repro.uncertainty.uniform import UniformDistribution
from repro.utils.rng import ensure_rng

#: Stacks same-family marginals into a tuple of parameter arrays, each
#: shaped ``(g, 1)`` for broadcasting against a ``(g, S)`` quantile
#: matrix.
StackFn = Callable[[Sequence[UnivariateDistribution]], Tuple[FloatArray, ...]]
#: Vectorized inverse CDF: ``apply(q, *params) -> values``, ``(g, S)``.
ApplyFn = Callable[..., FloatArray]

_FAMILIES: Dict[type, Tuple[StackFn, ApplyFn]] = {}


def register_batch_sampler(
    family: type,
) -> Callable[[Tuple[StackFn, ApplyFn]], Tuple[StackFn, ApplyFn]]:
    """Register a ``(stack, apply)`` batch-sampler pair for a family.

    ``stack`` extracts the family's parameters from same-family
    marginals once (plan-build time); ``apply`` maps a ``(g, S)``
    quantile matrix through the stacked parameters (draw time) and must
    reproduce the family's scalar ``ppf`` exactly.  Registration order
    fixes the RNG consumption order of :meth:`SamplingPlan.sample`, so
    third-party families should register at import time, not lazily.
    """

    def decorator(pair: Tuple[StackFn, ApplyFn]) -> Tuple[StackFn, ApplyFn]:
        _FAMILIES[family] = pair
        return pair

    return decorator


def batch_families() -> Tuple[type, ...]:
    """Marginal families with a registered batch sampler."""
    return tuple(_FAMILIES)


def is_batchable(dist: MultivariateDistribution) -> bool:
    """Whether ``dist`` is sampled by the grouped fast path.

    True for point masses and for independent products whose marginals
    all belong to registered families; anything else takes the
    per-object ``sample`` fallback inside :meth:`SamplingPlan.sample`.
    """
    if isinstance(dist, MultivariatePointMass):
        return True
    if type(dist) is IndependentProduct:
        return all(type(m) in _FAMILIES for m in dist.marginals)
    return False


# ----------------------------------------------------------------------
# Per-family stack/apply pairs.  Each ``apply`` mirrors the scalar
# ``ppf`` of its family operation for operation (same clips, same
# special functions), so identical quantiles give identical values.
# ----------------------------------------------------------------------
def _column(values: List[float]) -> FloatArray:
    return np.array(values, dtype=np.float64)[:, None]


def _uniform_stack(marginals: Sequence[UniformDistribution]):
    return (
        _column([m.support_lower for m in marginals]),
        _column([m.support_width for m in marginals]),
    )


def _uniform_apply(q: FloatArray, lower, width) -> FloatArray:
    return lower + q * width


register_batch_sampler(UniformDistribution)((_uniform_stack, _uniform_apply))


def _truncated_normal_stack(marginals: Sequence[TruncatedNormalDistribution]):
    return (
        _column([m.loc for m in marginals]),
        _column([m.scale for m in marginals]),
        _column([m.support_lower for m in marginals]),
        _column([m.support_upper for m in marginals]),
        _column([m._cdf_alpha for m in marginals]),
        _column([m._z_mass for m in marginals]),
    )


def _truncated_normal_apply(
    q: FloatArray, loc, scale, lower, upper, cdf_alpha, z_mass
) -> FloatArray:
    inner = cdf_alpha + np.clip(q, 0.0, 1.0) * z_mass
    inner = np.clip(inner, 1e-16, 1.0 - 1e-16)
    values = loc + scale * ndtri(inner)
    return np.clip(values, lower, upper)


register_batch_sampler(TruncatedNormalDistribution)(
    (_truncated_normal_stack, _truncated_normal_apply)
)


def _truncated_exponential_stack(
    marginals: Sequence[TruncatedExponentialDistribution],
):
    return (
        _column([m.origin for m in marginals]),
        _column([m.rate for m in marginals]),
        _column([float(m.direction) for m in marginals]),
        _column([m._cutoff for m in marginals]),
        _column([m._mass for m in marginals]),
    )


def _truncated_exponential_apply(
    q: FloatArray, origin, rate, direction, cutoff, mass
) -> FloatArray:
    q = np.clip(q, 0.0, 1.0)
    q_t = np.where(direction == 1.0, q, 1.0 - q)
    t = -np.log1p(-q_t * mass) / rate
    t = np.clip(t, 0.0, cutoff)
    return origin + direction * t


register_batch_sampler(TruncatedExponentialDistribution)(
    (_truncated_exponential_stack, _truncated_exponential_apply)
)


def _triangular_stack(marginals: Sequence[TriangularDistribution]):
    return (
        _column([m.support_lower for m in marginals]),
        _column([m.mode for m in marginals]),
        _column([m.support_upper for m in marginals]),
    )


def _triangular_apply(q: FloatArray, lower, mode, upper) -> FloatArray:
    q = np.clip(q, 0.0, 1.0)
    width = upper - lower
    rising = mode - lower
    falling = upper - mode
    pivot = np.divide(rising, width, out=np.zeros_like(width), where=width > 0)
    # Both branch expressions are nonnegative under the square root, and
    # degenerate sides (mode == lower / mode == upper) collapse to the
    # endpoint exactly as in the scalar ppf.
    low_values = lower + np.sqrt(q * width * rising)
    high_values = upper - np.sqrt((1.0 - q) * width * falling)
    return np.where(q <= pivot, low_values, high_values)


register_batch_sampler(TriangularDistribution)(
    (_triangular_stack, _triangular_apply)
)


def _point_mass_stack(marginals: Sequence[PointMassDistribution]):
    return (_column([m.mean for m in marginals]),)


def _point_mass_apply(q: FloatArray, values) -> FloatArray:
    return np.broadcast_to(values, q.shape).copy()


register_batch_sampler(PointMassDistribution)(
    (_point_mass_stack, _point_mass_apply)
)


# ----------------------------------------------------------------------
# The sampling plan and the dataset-level tensor sampler.
# ----------------------------------------------------------------------
class _FamilyGroup:
    """One family's stacked cells: where they live and their params."""

    __slots__ = ("apply", "rows", "dims", "params", "dense")

    def __init__(self, apply: ApplyFn, rows, dims, params, dense) -> None:
        self.apply = apply
        self.rows = rows
        self.dims = dims
        self.params = params
        # Cells are collected in (object, dim)-lexicographic order, so a
        # group holding every cell of the collection can skip the fancy
        # scatter and write through one reshape/transpose instead.
        self.dense = dense


class SamplingPlan:
    """Precompiled batch-sampling layout for a distribution collection.

    Built once per collection by :func:`build_sampling_plan`; every
    :meth:`sample` call then runs one uniform draw plus one vectorized
    quantile transform per family, with no per-object Python work.
    """

    __slots__ = ("n_objects", "dim", "_groups", "_point_rows",
                 "_point_values", "_fallback")

    def __init__(self, n_objects, dim, groups, point_rows, point_values, fallback):
        self.n_objects = n_objects
        self.dim = dim
        self._groups = groups
        self._point_rows = point_rows
        self._point_values = point_values
        self._fallback = fallback

    @property
    def n_batched_cells(self) -> int:
        """Marginal cells covered by the grouped fast path."""
        return sum(group.rows.size for group in self._groups)

    @property
    def n_fallback(self) -> int:
        """Objects sampled through their own ``sample`` method."""
        return len(self._fallback)

    def sample(self, n_samples: int, seed: SeedLike = None) -> FloatArray:
        """Draw the ``(n, S, m)`` tensor; deterministic for a fixed seed."""
        if n_samples < 1:
            raise InvalidParameterError(
                f"n_samples must be >= 1, got {n_samples}"
            )
        rng = ensure_rng(seed)
        out = np.empty((self.n_objects, n_samples, self.dim))
        if self._point_rows.size:
            out[self._point_rows] = self._point_values[:, None, :]
        for group in self._groups:
            q = rng.random((group.rows.size, n_samples))
            values = group.apply(q, *group.params)
            if group.dense:
                out[...] = values.reshape(
                    self.n_objects, self.dim, n_samples
                ).swapaxes(1, 2)
            else:
                out[group.rows, :, group.dims] = values
        for idx, dist in self._fallback:
            out[idx] = dist.sample(n_samples, rng)
        return out


def build_sampling_plan(
    distributions: Sequence[MultivariateDistribution],
) -> SamplingPlan:
    """Group a collection's marginal cells by family into a plan.

    Marginal cells of registered families are stacked per family
    (registration order), point masses are recorded for broadcast
    without randomness, and anything else is kept as a per-object
    fallback, sampled in collection order after the grouped draws.
    """
    dists = list(distributions)
    if not dists:
        raise InvalidParameterError(
            "build_sampling_plan needs at least one distribution"
        )
    dim = dists[0].dim
    for dist in dists:
        if dist.dim != dim:
            raise DimensionMismatchError(
                "all distributions must share one dimensionality"
            )

    cells: Dict[type, List[Tuple[int, int, UnivariateDistribution]]] = {}
    point_rows: List[int] = []
    point_values: List[FloatArray] = []
    fallback: List[Tuple[int, MultivariateDistribution]] = []
    for idx, dist in enumerate(dists):
        if isinstance(dist, MultivariatePointMass):
            point_rows.append(idx)
            point_values.append(dist.mean_vector)
        elif is_batchable(dist):
            for j, marginal in enumerate(dist.marginals):
                cells.setdefault(type(marginal), []).append((idx, j, marginal))
        else:
            fallback.append((idx, dist))

    groups: List[_FamilyGroup] = []
    for family, (stack, apply) in _FAMILIES.items():
        members = cells.get(family)
        if not members:
            continue
        rows = np.fromiter((cell[0] for cell in members), dtype=np.intp)
        dims = np.fromiter((cell[1] for cell in members), dtype=np.intp)
        params = stack([cell[2] for cell in members])
        dense = rows.size == len(dists) * dim
        groups.append(_FamilyGroup(apply, rows, dims, params, dense))

    return SamplingPlan(
        n_objects=len(dists),
        dim=dim,
        groups=groups,
        point_rows=np.asarray(point_rows, dtype=np.intp),
        point_values=(
            np.vstack(point_values)
            if point_values
            else np.empty((0, dim))
        ),
        fallback=fallback,
    )


def sample_tensor(
    distributions: Sequence[MultivariateDistribution],
    n_samples: int,
    seed: SeedLike = None,
) -> FloatArray:
    """One i.i.d. realization tensor for a distribution collection.

    One-shot convenience over :func:`build_sampling_plan` +
    :meth:`SamplingPlan.sample`; callers drawing repeatedly from the
    same collection should build the plan once instead.

    Parameters
    ----------
    distributions:
        The per-object multivariate distributions; all must share one
        dimensionality ``m``.
    n_samples:
        Sample-set cardinality ``S`` per object.
    seed:
        ``None``, an int, or a shared :class:`numpy.random.Generator`.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, S, m)``; row ``i`` holds ``S`` draws of object ``i``.
    """
    return build_sampling_plan(distributions).sample(n_samples, seed)
