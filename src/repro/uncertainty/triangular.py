"""Triangular distribution — a common bounded uncertainty model.

Not one of the paper's three evaluation families, but ubiquitous in
uncertain-data management (it is the default "interval with a most
likely value" model) and cheap to support exactly: bounded support out
of the box, closed-form moments, and an analytic quantile function.
Provided as a library extension; the generators accept it anywhere a
family name is taken.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import UnivariateDistribution


class TriangularDistribution(UnivariateDistribution):
    """Triangular distribution on ``[lower, upper]`` with mode ``mode``.

    Closed-form moments::

        mean = (lower + mode + upper) / 3
        var  = (l^2 + m^2 + u^2 - l*m - l*u - m*u) / 18
    """

    __slots__ = ("_lower", "_mode", "_upper")

    def __init__(self, lower: float, mode: float, upper: float):
        lower = float(lower)
        mode = float(mode)
        upper = float(upper)
        for name, value in (("lower", lower), ("mode", mode), ("upper", upper)):
            if not np.isfinite(value):
                raise InvalidParameterError(f"{name} must be finite, got {value}")
        if not (lower <= mode <= upper):
            raise InvalidParameterError(
                f"need lower <= mode <= upper, got {lower}, {mode}, {upper}"
            )
        if lower == upper:
            raise InvalidParameterError(
                "degenerate triangular support; use PointMassDistribution"
            )
        self._lower = lower
        self._mode = mode
        self._upper = upper

    @staticmethod
    def symmetric(center: float, half_width: float) -> "TriangularDistribution":
        """Symmetric triangle with mean/mode exactly ``center``."""
        if half_width <= 0:
            raise InvalidParameterError(
                f"half_width must be > 0, got {half_width}"
            )
        return TriangularDistribution(
            center - half_width, center, center + half_width
        )

    # ------------------------------------------------------------------
    # Support and moments
    # ------------------------------------------------------------------
    @property
    def mode(self) -> float:
        """Location of the density peak."""
        return self._mode

    @property
    def support_lower(self) -> float:
        return self._lower

    @property
    def support_upper(self) -> float:
        return self._upper

    @property
    def mean(self) -> float:
        return (self._lower + self._mode + self._upper) / 3.0

    @property
    def variance(self) -> float:
        l, m, u = self._lower, self._mode, self._upper
        return (l * l + m * m + u * u - l * m - l * u - m * u) / 18.0

    @property
    def second_moment(self) -> float:
        return self.variance + self.mean**2

    # ------------------------------------------------------------------
    # Density / CDF / quantiles
    # ------------------------------------------------------------------
    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        l, m, u = self._lower, self._mode, self._upper
        width = u - l
        out = np.zeros_like(x)
        rising = (x >= l) & (x < m)
        if m > l:
            out[rising] = 2.0 * (x[rising] - l) / (width * (m - l))
        falling = (x > m) & (x <= u)
        if u > m:
            out[falling] = 2.0 * (u - x[falling]) / (width * (u - m))
        out[x == m] = 2.0 / width
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        l, m, u = self._lower, self._mode, self._upper
        width = u - l
        out = np.zeros_like(x)
        rising = (x > l) & (x <= m)
        if m > l:
            out[rising] = (x[rising] - l) ** 2 / (width * (m - l))
        falling = (x > m) & (x < u)
        if u > m:
            out[falling] = 1.0 - (u - x[falling]) ** 2 / (width * (u - m))
        out[x >= u] = 1.0
        return out

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.clip(np.asarray(q, dtype=np.float64), 0.0, 1.0)
        l, m, u = self._lower, self._mode, self._upper
        width = u - l
        pivot = (m - l) / width if width > 0 else 0.0
        out = np.empty_like(q)
        low = q <= pivot
        if m > l:
            out[low] = l + np.sqrt(q[low] * width * (m - l))
        else:
            out[low] = l
        high = ~low
        if u > m:
            out[high] = u - np.sqrt((1.0 - q[high]) * width * (u - m))
        else:
            out[high] = u
        return out
