"""Abstract interfaces for probability distributions over box regions.

Two layers:

* :class:`UnivariateDistribution` — a 1-D pdf supported on an interval,
  with *analytic* first and second moments.  The paper's uncertainty
  models (Uniform, Normal, Exponential, per Section 5.1) are all
  generated per attribute, so multivariate objects are products of
  independent marginals.
* :class:`MultivariateDistribution` — an m-dimensional pdf supported on
  a :class:`~repro.uncertainty.region.BoxRegion`, exposing the moment
  vectors of Eqs. (2)-(6) of the paper.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._typing import FloatArray, SeedLike, VectorLike
from repro.uncertainty.region import BoxRegion
from repro.utils.rng import ensure_rng
from repro.utils.validation import ensure_vector


class UnivariateDistribution(abc.ABC):
    """A 1-D probability density supported on ``[support_lower, support_upper]``."""

    # ------------------------------------------------------------------
    # Support
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def support_lower(self) -> float:
        """Lower endpoint of the support interval."""

    @property
    @abc.abstractmethod
    def support_upper(self) -> float:
        """Upper endpoint of the support interval."""

    @property
    def support_width(self) -> float:
        """Width of the support interval."""
        return self.support_upper - self.support_lower

    # ------------------------------------------------------------------
    # Moments (Eqs. (4)-(5) of the paper, one dimension)
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """First moment ``mu = E[X]``."""

    @property
    @abc.abstractmethod
    def second_moment(self) -> float:
        """Raw second moment ``mu2 = E[X^2]``."""

    @property
    def variance(self) -> float:
        """Central second moment ``sigma^2 = mu2 - mu^2`` (Eq. (5))."""
        var = self.second_moment - self.mean**2
        # Round-off can produce a tiny negative value for near-degenerate
        # supports; variance is nonnegative by definition.
        return max(var, 0.0)

    # ------------------------------------------------------------------
    # Density / sampling
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Vectorized density; zero outside the support (Eq. (1))."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Vectorized cumulative distribution function."""

    @abc.abstractmethod
    def ppf(self, q: np.ndarray) -> np.ndarray:
        """Vectorized quantile (inverse CDF) function on [0, 1]."""

    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        """Draw ``size`` i.i.d. samples via inverse-CDF transform."""
        rng = ensure_rng(seed)
        return np.asarray(self.ppf(rng.random(size)), dtype=np.float64)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(support=[{self.support_lower:g}, "
            f"{self.support_upper:g}], mean={self.mean:g}, var={self.variance:g})"
        )


class MultivariateDistribution(abc.ABC):
    """An m-dimensional pdf supported on a :class:`BoxRegion`.

    Subclasses expose the moment vectors of the paper:

    * :attr:`mean_vector` — ``mu(o)``, Eq. (2);
    * :attr:`second_moment_vector` — ``mu2(o)``, Eq. (2);
    * :attr:`variance_vector` — ``sigma^2(o)``, Eq. (3);
    * :attr:`total_variance` — ``sigma^2(o) = ||sigma^2(o)||_1``, Eq. (6).
    """

    @property
    @abc.abstractmethod
    def region(self) -> BoxRegion:
        """Domain region ``R`` of Definition 1."""

    @property
    def dim(self) -> int:
        """Dimensionality m."""
        return self.region.dim

    @property
    @abc.abstractmethod
    def mean_vector(self) -> FloatArray:
        """Expected-value vector ``mu(o)`` (Eq. (2))."""

    @property
    @abc.abstractmethod
    def second_moment_vector(self) -> FloatArray:
        """Raw second-order moment vector ``mu2(o)`` (Eq. (2))."""

    @property
    def variance_vector(self) -> FloatArray:
        """Variance vector ``sigma^2(o) = mu2(o) - mu(o)^2`` (Eq. (3))."""
        var = self.second_moment_vector - self.mean_vector**2
        return np.maximum(var, 0.0)

    @property
    def total_variance(self) -> float:
        """Scalar "global" variance, the 1-norm of Eq. (6)."""
        return float(np.sum(self.variance_vector))

    @abc.abstractmethod
    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Density at each row of ``points`` (shape ``(n, m)`` or ``(m,)``)."""

    @abc.abstractmethod
    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        """Draw ``size`` i.i.d. samples, shape ``(size, m)``."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _points_matrix(self, points: VectorLike) -> FloatArray:
        """Normalize pdf() input into an ``(n, m)`` matrix."""
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.shape[1] != self.dim:
            arr = ensure_vector(arr.ravel(), "points", dim=self.dim).reshape(1, -1)
        return arr

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dim={self.dim}, mean={self.mean_vector}, "
            f"total_variance={self.total_variance:g})"
        )
