"""Numerical moment estimation and cross-checks.

The library's distribution families expose *analytic* moments; this
module provides the independent numerical estimates (Monte Carlo and 1-D
quadrature) used by the test-suite to validate every closed form, and by
callers holding only a black-box pdf.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import integrate

from repro._typing import FloatArray, SeedLike
from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution, UnivariateDistribution
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MomentEstimate:
    """Monte-Carlo estimates of a distribution's moment vectors."""

    mean_vector: FloatArray
    second_moment_vector: FloatArray
    n_samples: int

    @property
    def variance_vector(self) -> FloatArray:
        """Estimated per-dimension variances."""
        return np.maximum(self.second_moment_vector - self.mean_vector**2, 0.0)

    @property
    def total_variance(self) -> float:
        """Estimated scalar variance (Eq. (6))."""
        return float(np.sum(self.variance_vector))


def monte_carlo_moments(
    dist: MultivariateDistribution,
    n_samples: int = 20000,
    seed: SeedLike = None,
) -> MomentEstimate:
    """Estimate mean / second-moment vectors from i.i.d. samples."""
    if n_samples <= 1:
        raise InvalidParameterError(f"n_samples must be > 1, got {n_samples}")
    rng = ensure_rng(seed)
    samples = dist.sample(n_samples, rng)
    return MomentEstimate(
        mean_vector=samples.mean(axis=0),
        second_moment_vector=(samples**2).mean(axis=0),
        n_samples=n_samples,
    )


def quadrature_mass(dist: UnivariateDistribution) -> float:
    """Total probability mass of a 1-D pdf via adaptive quadrature.

    Should be ~1 for every valid distribution; the test-suite asserts it.
    """
    lo = dist.support_lower
    hi = dist.support_upper
    if not (np.isfinite(lo) and np.isfinite(hi)):
        # Integrate the unbounded tails with scipy's infinite-limit support.
        mass, _ = integrate.quad(lambda x: float(dist.pdf(np.array([x]))[0]), lo, hi)
        return float(mass)
    if hi == lo:
        return 1.0  # point mass
    mass, _ = integrate.quad(
        lambda x: float(dist.pdf(np.array([x]))[0]), lo, hi, limit=200
    )
    return float(mass)


def quadrature_moments(dist: UnivariateDistribution) -> tuple[float, float]:
    """(mean, second moment) of a 1-D pdf via adaptive quadrature."""
    lo = dist.support_lower
    hi = dist.support_upper
    if hi == lo:
        return lo, lo * lo

    def integrand_mean(x: float) -> float:
        return x * float(dist.pdf(np.array([x]))[0])

    def integrand_second(x: float) -> float:
        return x * x * float(dist.pdf(np.array([x]))[0])

    mean, _ = integrate.quad(integrand_mean, lo, hi, limit=200)
    second, _ = integrate.quad(integrand_second, lo, hi, limit=200)
    return float(mean), float(second)
