"""Axis-aligned box domain regions.

Definition 1 of the paper models an uncertain object as a pair
``(R, f)`` where ``R`` is an m-dimensional region.  Theorem 1 (and all
prior art the paper compares against) assumes hyper-rectangular regions
``R = [l1, u1] x ... x [lm, um]``, which is what :class:`BoxRegion`
implements.  Boxes also supply the min/max distance bounds that the
MinMax-BB pruning algorithm requires.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro._typing import FloatArray, VectorLike
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.utils.validation import ensure_vector


class BoxRegion:
    """An axis-aligned hyper-rectangle ``[l1, u1] x ... x [lm, um]``.

    Parameters
    ----------
    lower, upper:
        Per-dimension bounds; must satisfy ``lower <= upper`` element-wise
        (degenerate zero-width dimensions are allowed, which is how a
        point-mass object is represented).
    """

    __slots__ = ("_lower", "_upper")

    def __init__(self, lower: VectorLike, upper: VectorLike):
        self._lower = ensure_vector(lower, "lower", allow_infinite=True)
        self._upper = ensure_vector(
            upper, "upper", dim=self._lower.shape[0], allow_infinite=True
        )
        if np.any(self._lower > self._upper):
            raise InvalidParameterError(
                "lower bounds must not exceed upper bounds"
            )
        self._lower.setflags(write=False)
        self._upper.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def lower(self) -> FloatArray:
        """Read-only vector of per-dimension lower bounds."""
        return self._lower

    @property
    def upper(self) -> FloatArray:
        """Read-only vector of per-dimension upper bounds."""
        return self._upper

    @property
    def dim(self) -> int:
        """Dimensionality m of the region."""
        return self._lower.shape[0]

    @property
    def widths(self) -> FloatArray:
        """Per-dimension widths ``upper - lower``."""
        return self._upper - self._lower

    @property
    def center(self) -> FloatArray:
        """Geometric center of the box."""
        return 0.5 * (self._lower + self._upper)

    @property
    def volume(self) -> float:
        """Lebesgue volume (product of widths)."""
        return float(np.prod(self.widths))

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        """Iterate per-dimension ``(lower, upper)`` interval pairs."""
        for lo, hi in zip(self._lower, self._upper):
            yield float(lo), float(hi)

    def __repr__(self) -> str:
        intervals = ", ".join(f"[{lo:g}, {hi:g}]" for lo, hi in self)
        return f"BoxRegion({intervals})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxRegion):
            return NotImplemented
        return bool(
            np.array_equal(self._lower, other._lower)
            and np.array_equal(self._upper, other._upper)
        )

    def __hash__(self) -> int:
        return hash((self._lower.tobytes(), self._upper.tobytes()))

    # ------------------------------------------------------------------
    # Geometric queries
    # ------------------------------------------------------------------
    def contains(self, point: VectorLike, atol: float = 1e-12) -> bool:
        """Whether ``point`` lies inside the box (with tolerance ``atol``)."""
        p = ensure_vector(point, "point", dim=self.dim)
        return bool(
            np.all(p >= self._lower - atol) and np.all(p <= self._upper + atol)
        )

    def clip(self, point: VectorLike) -> FloatArray:
        """Project ``point`` onto the box (component-wise clamp)."""
        p = ensure_vector(point, "point", dim=self.dim)
        return np.clip(p, self._lower, self._upper)

    def min_dist_sq(self, point: VectorLike) -> float:
        """Minimum squared Euclidean distance from ``point`` to the box.

        Zero when the point is inside.  This is the ``MinDist`` bound used
        by MinMax-BB pruning.
        """
        p = ensure_vector(point, "point", dim=self.dim)
        below = np.maximum(self._lower - p, 0.0)
        above = np.maximum(p - self._upper, 0.0)
        gap = below + above
        return float(gap @ gap)

    def max_dist_sq(self, point: VectorLike) -> float:
        """Maximum squared Euclidean distance from ``point`` to the box.

        Attained at the farthest corner.  This is the ``MaxDist`` bound
        used by MinMax-BB pruning.
        """
        p = ensure_vector(point, "point", dim=self.dim)
        far = np.maximum(np.abs(p - self._lower), np.abs(p - self._upper))
        return float(far @ far)

    def intersects(self, other: "BoxRegion") -> bool:
        """Whether this box and ``other`` overlap (closed boxes)."""
        self._check_same_dim(other)
        return bool(
            np.all(self._lower <= other._upper)
            and np.all(other._lower <= self._upper)
        )

    def union_box(self, other: "BoxRegion") -> "BoxRegion":
        """Smallest box containing both boxes (used by the MMVar centroid)."""
        self._check_same_dim(other)
        return BoxRegion(
            np.minimum(self._lower, other._lower),
            np.maximum(self._upper, other._upper),
        )

    def _check_same_dim(self, other: "BoxRegion") -> None:
        if other.dim != self.dim:
            raise DimensionMismatchError(
                f"regions have different dimensionality: {self.dim} vs {other.dim}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_intervals(intervals: Sequence[Tuple[float, float]]) -> "BoxRegion":
        """Build a region from a sequence of ``(lower, upper)`` pairs."""
        if not intervals:
            raise InvalidParameterError("at least one interval is required")
        lower = [pair[0] for pair in intervals]
        upper = [pair[1] for pair in intervals]
        return BoxRegion(lower, upper)

    @staticmethod
    def point(point: VectorLike) -> "BoxRegion":
        """Degenerate region for a deterministic point."""
        p = ensure_vector(point, "point")
        return BoxRegion(p, p)


def scaled_minkowski_sum(regions: Sequence[BoxRegion]) -> BoxRegion:
    """Region of the U-centroid of a cluster (second part of Theorem 1).

    Given member regions ``R_i``, the centroid's region is
    ``[ (1/n) sum l_i^(j), (1/n) sum u_i^(j) ]`` per dimension ``j`` —
    i.e. the Minkowski average of the member boxes.
    """
    if not regions:
        raise InvalidParameterError("at least one region is required")
    dim = regions[0].dim
    lower = np.zeros(dim)
    upper = np.zeros(dim)
    for region in regions:
        if region.dim != dim:
            raise DimensionMismatchError(
                "all regions must share the same dimensionality"
            )
        lower += region.lower
        upper += region.upper
    count = float(len(regions))
    return BoxRegion(lower / count, upper / count)
