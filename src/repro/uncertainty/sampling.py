"""Monte Carlo and Markov-Chain Monte Carlo samplers.

The paper perturbs deterministic datasets "according to the classic
Monte Carlo and Markov Chain Monte Carlo methods" using the SSJ library.
SSJ is a Java dependency we cannot (and need not) ship; this module is
the stand-in substrate:

* :class:`MonteCarloSampler` — i.i.d. draws, delegating to each
  distribution's inverse-CDF sampler;
* :class:`MetropolisHastingsSampler` — a random-walk MH chain targeting
  an arbitrary pdf restricted to a box region, for distributions whose
  quantile function is unavailable (e.g. a U-centroid's implicit pdf).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro._typing import FloatArray, SeedLike, VectorLike
from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution
from repro.uncertainty.batch import sample_tensor
from repro.uncertainty.region import BoxRegion
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, ensure_vector


class MonteCarloSampler:
    """Plain Monte Carlo: i.i.d. draws from a distribution.

    A thin, explicit façade kept so experiment code can declare *which*
    sampling regime it uses (matching the paper's terminology) rather
    than calling ``dist.sample`` anonymously.
    """

    def __init__(self, seed: SeedLike = None):
        self._rng = ensure_rng(seed)

    def draw(self, dist: MultivariateDistribution, size: int) -> FloatArray:
        """Draw ``size`` i.i.d. samples from ``dist``, shape ``(size, m)``."""
        if size <= 0:
            raise InvalidParameterError(f"size must be > 0, got {size}")
        return dist.sample(size, self._rng)

    def draw_one(self, dist: MultivariateDistribution) -> FloatArray:
        """Draw a single sample, shape ``(m,)``."""
        return self.draw(dist, 1)[0]

    def draw_many(
        self, dists: Sequence[MultivariateDistribution], size: int
    ) -> FloatArray:
        """Batched draws for a whole collection, shape ``(n, size, m)``.

        Delegates to the family-grouped tensor sampler
        (:func:`repro.uncertainty.batch.sample_tensor`) so the cost is a
        handful of vectorized quantile transforms rather than ``n``
        per-object sampling calls.
        """
        if size <= 0:
            raise InvalidParameterError(f"size must be > 0, got {size}")
        return sample_tensor(dists, size, self._rng)


@dataclass
class MCMCDiagnostics:
    """Acceptance statistics of one Metropolis-Hastings run."""

    proposed: int
    accepted: int

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted (0 when nothing proposed)."""
        if self.proposed == 0:
            return 0.0
        return self.accepted / self.proposed


class MetropolisHastingsSampler:
    """Random-walk Metropolis-Hastings over a box-constrained density.

    Parameters
    ----------
    step_scale:
        Proposal standard deviation as a fraction of each region width
        (dimension-wise).  0.25 is a robust default for box-supported
        unimodal targets.
    burn_in:
        Number of initial iterations discarded.
    thin:
        Keep every ``thin``-th post-burn-in state to reduce autocorrelation.
    """

    def __init__(
        self,
        step_scale: float = 0.25,
        burn_in: int = 100,
        thin: int = 2,
        seed: SeedLike = None,
    ):
        self._step_scale = check_positive(step_scale, "step_scale")
        if burn_in < 0:
            raise InvalidParameterError(f"burn_in must be >= 0, got {burn_in}")
        if thin < 1:
            raise InvalidParameterError(f"thin must be >= 1, got {thin}")
        self._burn_in = int(burn_in)
        self._thin = int(thin)
        self._rng = ensure_rng(seed)
        self.last_diagnostics: Optional[MCMCDiagnostics] = None

    def draw(
        self,
        pdf: Callable[[np.ndarray], np.ndarray],
        region: BoxRegion,
        size: int,
        initial: Optional[VectorLike] = None,
    ) -> FloatArray:
        """Sample ``size`` points from ``pdf`` restricted to ``region``.

        Parameters
        ----------
        pdf:
            Unnormalized target density accepting an ``(n, m)`` matrix.
        region:
            Box support; proposals outside are rejected outright.
        size:
            Number of retained samples.
        initial:
            Chain start; defaults to the region center.
        """
        if size <= 0:
            raise InvalidParameterError(f"size must be > 0, got {size}")
        widths = np.where(region.widths > 0, region.widths, 1.0)
        step = self._step_scale * widths

        if initial is None:
            state = region.center.copy()
        else:
            state = ensure_vector(initial, "initial", dim=region.dim).copy()
            if not region.contains(state):
                raise InvalidParameterError("initial state must lie in the region")
        state_density = float(np.atleast_1d(pdf(state.reshape(1, -1)))[0])
        if state_density <= 0.0:
            # Start from a point of positive density found by rejection.
            state, state_density = self._find_positive_start(pdf, region)

        total_iters = self._burn_in + size * self._thin
        samples = np.empty((size, region.dim))
        kept = 0
        accepted = 0
        for iteration in range(total_iters):
            proposal = state + self._rng.normal(0.0, step)
            if region.contains(proposal):
                prop_density = float(np.atleast_1d(pdf(proposal.reshape(1, -1)))[0])
                if prop_density > 0.0:
                    ratio = prop_density / state_density if state_density > 0 else 1.0
                    if ratio >= 1.0 or self._rng.random() < ratio:
                        state = proposal
                        state_density = prop_density
                        accepted += 1
            past_burn_in = iteration >= self._burn_in
            if past_burn_in and (iteration - self._burn_in) % self._thin == 0:
                if kept < size:
                    samples[kept] = state
                    kept += 1
        self.last_diagnostics = MCMCDiagnostics(
            proposed=total_iters, accepted=accepted
        )
        return samples

    def _find_positive_start(
        self,
        pdf: Callable[[np.ndarray], np.ndarray],
        region: BoxRegion,
        attempts: int = 1024,
    ) -> tuple[FloatArray, float]:
        """Rejection-sample a starting state with positive density."""
        for _ in range(attempts):
            candidate = region.lower + self._rng.random(region.dim) * region.widths
            density = float(np.atleast_1d(pdf(candidate.reshape(1, -1)))[0])
            if density > 0.0:
                return candidate, density
        raise InvalidParameterError(
            "could not find a positive-density starting point in the region"
        )
