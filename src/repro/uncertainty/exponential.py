"""Shifted, truncated Exponential distribution with analytic moments.

The paper's third pdf family.  To give an Exponential pdf an expected
value equal to the deterministic point it replaces (Section 5.1), the
generator shifts the origin and optionally mirrors the direction of
decay; Case-2 truncation to a 95%-mass region is supported analytically.

The underlying variable is ``X = origin + direction * T`` where
``T ~ Exp(rate)`` truncated to ``[0, cutoff]`` and ``direction`` is +1
(decaying to the right) or -1 (decaying to the left).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import UnivariateDistribution


def _truncated_exp_moments(rate: float, cutoff: float) -> tuple[float, float]:
    """(E[T], E[T^2]) for Exp(rate) truncated to [0, cutoff]."""
    if math.isinf(cutoff):
        mean = 1.0 / rate
        second = 2.0 / (rate * rate)
        return mean, second
    lam_c = rate * cutoff
    # exp(-lam_c) / (1 - exp(-lam_c)), computed stably via expm1.
    tail_ratio = math.exp(-lam_c) / (-math.expm1(-lam_c))
    mean = 1.0 / rate - cutoff * tail_ratio
    second = 2.0 / (rate * rate) - (cutoff * cutoff + 2.0 * cutoff / rate) * tail_ratio
    return mean, second


class TruncatedExponentialDistribution(UnivariateDistribution):
    """``X = origin + direction * T``, ``T ~ Exp(rate)`` truncated to ``[0, cutoff]``.

    Parameters
    ----------
    origin:
        Location of the density peak (where the exponential starts).
    rate:
        Rate parameter ``lambda > 0`` of the parent Exponential.
    cutoff:
        Truncation point of ``T`` (``inf`` for no truncation).
    direction:
        ``+1`` for a right tail, ``-1`` for a left tail.
    """

    __slots__ = (
        "_origin",
        "_rate",
        "_cutoff",
        "_direction",
        "_mass",
        "_mean",
        "_second",
    )

    def __init__(
        self,
        origin: float,
        rate: float,
        cutoff: float = np.inf,
        direction: int = 1,
    ):
        origin = float(origin)
        rate = float(rate)
        cutoff = float(cutoff)
        if not np.isfinite(origin):
            raise InvalidParameterError("origin must be finite")
        if not (np.isfinite(rate) and rate > 0):
            raise InvalidParameterError(f"rate must be > 0, got {rate}")
        if cutoff <= 0:
            raise InvalidParameterError(f"cutoff must be > 0, got {cutoff}")
        if direction not in (1, -1):
            raise InvalidParameterError(f"direction must be +1 or -1, got {direction}")
        self._origin = origin
        self._rate = rate
        self._cutoff = cutoff
        self._direction = int(direction)
        self._mass = (
            1.0 if math.isinf(cutoff) else float(-math.expm1(-rate * cutoff))
        )
        t_mean, t_second = _truncated_exp_moments(rate, cutoff)
        self._mean = origin + direction * t_mean
        # E[X^2] = E[(origin + d*T)^2] = origin^2 + 2*origin*d*E[T] + E[T^2]
        self._second = (
            origin * origin + 2.0 * origin * direction * t_mean + t_second
        )

    @staticmethod
    def with_mean(
        mean: float,
        rate: float,
        direction: int = 1,
        mass: float = 1.0,
    ) -> "TruncatedExponentialDistribution":
        """Exponential pdf whose *untruncated* mean equals ``mean``.

        The origin is placed at ``mean - direction/rate`` so that the
        parent distribution's expectation is exactly ``mean``; when
        ``mass < 1`` the pdf is then truncated to the region containing
        ``mass`` of the probability (Case-2 construction), which shifts
        the realized mean slightly — exactly as in the paper's setup.
        """
        if direction not in (1, -1):
            raise InvalidParameterError(f"direction must be +1 or -1, got {direction}")
        if not (0.0 < mass <= 1.0):
            raise InvalidParameterError(f"mass must be in (0, 1], got {mass}")
        origin = mean - direction / rate
        if mass == 1.0:
            cutoff = np.inf
        else:
            cutoff = -math.log(1.0 - mass) / rate
        return TruncatedExponentialDistribution(origin, rate, cutoff, direction)

    # ------------------------------------------------------------------
    # Support and moments
    # ------------------------------------------------------------------
    @property
    def origin(self) -> float:
        """Density peak location."""
        return self._origin

    @property
    def rate(self) -> float:
        """Rate parameter of the parent Exponential."""
        return self._rate

    @property
    def direction(self) -> int:
        """Decay direction: +1 right tail, -1 left tail."""
        return self._direction

    @property
    def support_lower(self) -> float:
        if self._direction == 1:
            return self._origin
        return self._origin - self._cutoff

    @property
    def support_upper(self) -> float:
        if self._direction == 1:
            return self._origin + self._cutoff
        return self._origin

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def second_moment(self) -> float:
        return self._second

    # ------------------------------------------------------------------
    # Density / CDF / quantiles
    # ------------------------------------------------------------------
    def _t_of(self, x: np.ndarray) -> np.ndarray:
        return self._direction * (np.asarray(x, dtype=np.float64) - self._origin)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        t = self._t_of(x)
        inside = (t >= 0.0) & (t <= self._cutoff)
        density = self._rate * np.exp(-self._rate * np.where(inside, t, 0.0))
        return np.where(inside, density / self._mass, 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        t = np.clip(self._t_of(x), 0.0, self._cutoff)
        cdf_t = -np.expm1(-self._rate * t) / self._mass
        cdf_t = np.clip(cdf_t, 0.0, 1.0)
        if self._direction == 1:
            return cdf_t
        return 1.0 - cdf_t

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.clip(np.asarray(q, dtype=np.float64), 0.0, 1.0)
        q_t = q if self._direction == 1 else 1.0 - q
        # Inverse of the truncated-Exp CDF: t = -log(1 - q*mass)/rate.
        t = -np.log1p(-q_t * self._mass) / self._rate
        t = np.clip(t, 0.0, self._cutoff)
        return self._origin + self._direction * t
