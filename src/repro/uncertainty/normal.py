"""Truncated Normal distribution with analytic moments.

The paper's Case-2 objects restrict each pdf to the region holding most
(e.g. 95%) of its mass, so the Normal family must be handled in its
*truncated* form: density renormalized on ``[lower, upper]`` and moments
computed with the standard truncated-normal formulas.  The untruncated
Normal is recovered with infinite bounds.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtr, ndtri

from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import UnivariateDistribution

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _phi(z: np.ndarray) -> np.ndarray:
    """Standard normal density."""
    return np.exp(-0.5 * np.square(z)) / _SQRT_2PI


class TruncatedNormalDistribution(UnivariateDistribution):
    """Normal(loc, scale) truncated (and renormalized) to ``[lower, upper]``.

    Parameters
    ----------
    loc, scale:
        Parameters of the parent Normal; ``scale`` must be positive.
    lower, upper:
        Truncation interval; may be ``-inf`` / ``+inf`` for one- or
        un-truncated variants.  The interval must capture nonzero mass.

    Notes
    -----
    With ``alpha = (lower-loc)/scale``, ``beta = (upper-loc)/scale`` and
    ``Z = Phi(beta) - Phi(alpha)``::

        mean = loc + scale * (phi(alpha) - phi(beta)) / Z
        var  = scale^2 * [1 + (alpha*phi(alpha) - beta*phi(beta))/Z
                            - ((phi(alpha) - phi(beta))/Z)^2]
    """

    __slots__ = (
        "_loc",
        "_scale",
        "_lower",
        "_upper",
        "_alpha",
        "_beta",
        "_z_mass",
        "_cdf_alpha",
        "_mean",
        "_variance",
    )

    def __init__(
        self,
        loc: float,
        scale: float,
        lower: float = -np.inf,
        upper: float = np.inf,
    ):
        loc = float(loc)
        scale = float(scale)
        lower = float(lower)
        upper = float(upper)
        if not np.isfinite(loc):
            raise InvalidParameterError("loc must be finite")
        if not (np.isfinite(scale) and scale > 0):
            raise InvalidParameterError(f"scale must be > 0, got {scale}")
        if lower >= upper:
            raise InvalidParameterError(
                f"lower ({lower}) must be strictly less than upper ({upper})"
            )
        self._loc = loc
        self._scale = scale
        self._lower = lower
        self._upper = upper

        self._alpha = (lower - loc) / scale
        self._beta = (upper - loc) / scale
        cdf_alpha = float(ndtr(self._alpha)) if np.isfinite(self._alpha) else 0.0
        cdf_beta = float(ndtr(self._beta)) if np.isfinite(self._beta) else 1.0
        z_mass = cdf_beta - cdf_alpha
        if z_mass <= 0.0:
            raise InvalidParameterError(
                "truncation interval captures zero probability mass"
            )
        self._z_mass = z_mass
        self._cdf_alpha = cdf_alpha

        phi_alpha = float(_phi(self._alpha)) if np.isfinite(self._alpha) else 0.0
        phi_beta = float(_phi(self._beta)) if np.isfinite(self._beta) else 0.0
        alpha_term = self._alpha * phi_alpha if phi_alpha > 0.0 else 0.0
        beta_term = self._beta * phi_beta if phi_beta > 0.0 else 0.0

        delta = (phi_alpha - phi_beta) / z_mass
        self._mean = loc + scale * delta
        self._variance = scale * scale * max(
            1.0 + (alpha_term - beta_term) / z_mass - delta * delta, 0.0
        )

    @staticmethod
    def central_mass(
        loc: float, scale: float, mass: float = 0.95
    ) -> "TruncatedNormalDistribution":
        """Normal truncated to its central ``mass`` interval.

        This mirrors the paper's Case-2 construction: "R was defined as
        the region containing most of the area (e.g. 95%) of f".  The
        interval is symmetric about ``loc`` so the truncated mean stays
        exactly ``loc``.
        """
        if not (0.0 < mass <= 1.0):
            raise InvalidParameterError(f"mass must be in (0, 1], got {mass}")
        if mass == 1.0:
            return TruncatedNormalDistribution(loc, scale)
        half = float(ndtri(0.5 + mass / 2.0)) * scale
        return TruncatedNormalDistribution(loc, scale, loc - half, loc + half)

    # ------------------------------------------------------------------
    # Support and moments
    # ------------------------------------------------------------------
    @property
    def loc(self) -> float:
        """Location parameter of the parent Normal."""
        return self._loc

    @property
    def scale(self) -> float:
        """Scale parameter of the parent Normal."""
        return self._scale

    @property
    def support_lower(self) -> float:
        return self._lower

    @property
    def support_upper(self) -> float:
        return self._upper

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    @property
    def second_moment(self) -> float:
        return self._variance + self._mean**2

    # ------------------------------------------------------------------
    # Density / CDF / quantiles
    # ------------------------------------------------------------------
    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        z = (x - self._loc) / self._scale
        density = _phi(z) / (self._scale * self._z_mass)
        inside = (x >= self._lower) & (x <= self._upper)
        return np.where(inside, density, 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        z = (x - self._loc) / self._scale
        raw = (ndtr(z) - self._cdf_alpha) / self._z_mass
        return np.clip(raw, 0.0, 1.0)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        inner = self._cdf_alpha + np.clip(q, 0.0, 1.0) * self._z_mass
        # Guard the endpoints: ndtri(0/1) is +-inf, but the support is
        # the truncation interval.
        inner = np.clip(inner, 1e-16, 1.0 - 1e-16)
        values = self._loc + self._scale * ndtri(inner)
        return np.clip(values, self._lower, self._upper)
