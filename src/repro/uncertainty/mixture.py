"""Finite mixtures of multivariate distributions.

The MMVar algorithm's cluster centroid (Eq. (10) of the paper) is the
*mixture model* of the cluster: region = union of member regions, pdf =
average of member pdfs.  :class:`MixtureDistribution` implements that
object with exact moments (Lemma 2: mixture moments are the weighted
averages of component moments).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._typing import FloatArray, SeedLike, VectorLike
from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution
from repro.uncertainty.region import BoxRegion
from repro.utils.rng import ensure_rng
from repro.utils.validation import ensure_vector


class MixtureDistribution(MultivariateDistribution):
    """Weighted finite mixture of multivariate components.

    Parameters
    ----------
    components:
        Component distributions, all of the same dimensionality.
    weights:
        Mixing proportions; default is uniform (the MMVar centroid uses
        weight ``1/|C|`` per member).  Must be nonnegative and sum to 1.
    """

    __slots__ = ("_components", "_weights", "_region", "_mean", "_second")

    def __init__(
        self,
        components: Sequence[MultivariateDistribution],
        weights: Optional[VectorLike] = None,
    ):
        if not components:
            raise InvalidParameterError("at least one component is required")
        self._components = tuple(components)
        dim = self._components[0].dim
        for comp in self._components:
            if comp.dim != dim:
                raise InvalidParameterError(
                    "all mixture components must share dimensionality"
                )
        n = len(self._components)
        if weights is None:
            self._weights = np.full(n, 1.0 / n)
        else:
            self._weights = ensure_vector(weights, "weights", dim=n)
            if np.any(self._weights < 0):
                raise InvalidParameterError("weights must be nonnegative")
            total = float(self._weights.sum())
            if not np.isclose(total, 1.0, rtol=1e-9, atol=1e-12):
                raise InvalidParameterError(
                    f"weights must sum to 1, got {total}"
                )
        self._weights.setflags(write=False)

        region = self._components[0].region
        for comp in self._components[1:]:
            region = region.union_box(comp.region)
        self._region = region

        # Lemma 2: moments of a mixture are the weighted component moments.
        self._mean = np.zeros(dim)
        self._second = np.zeros(dim)
        for weight, comp in zip(self._weights, self._components):
            self._mean += weight * comp.mean_vector
            self._second += weight * comp.second_moment_vector
        self._mean.setflags(write=False)
        self._second.setflags(write=False)

    @property
    def components(self) -> tuple[MultivariateDistribution, ...]:
        """The mixture components."""
        return self._components

    @property
    def weights(self) -> FloatArray:
        """The mixing proportions."""
        return self._weights

    @property
    def region(self) -> BoxRegion:
        return self._region

    @property
    def mean_vector(self) -> FloatArray:
        return self._mean

    @property
    def second_moment_vector(self) -> FloatArray:
        return self._second

    def pdf(self, points: np.ndarray) -> np.ndarray:
        pts = self._points_matrix(points)
        density = np.zeros(pts.shape[0])
        for weight, comp in zip(self._weights, self._components):
            if weight > 0.0:
                density += weight * comp.pdf(pts)
        return density

    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        rng = ensure_rng(seed)
        counts = rng.multinomial(size, self._weights)
        chunks = []
        for count, comp in zip(counts, self._components):
            if count > 0:
                chunks.append(comp.sample(int(count), rng))
        samples = np.vstack(chunks)
        rng.shuffle(samples, axis=0)
        return samples
