"""Finite mixtures of multivariate distributions.

The MMVar algorithm's cluster centroid (Eq. (10) of the paper) is the
*mixture model* of the cluster: region = union of member regions, pdf =
average of member pdfs.  :class:`MixtureDistribution` implements that
object with exact moments (Lemma 2: mixture moments are the weighted
averages of component moments).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._typing import FloatArray, SeedLike, VectorLike
from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution
from repro.uncertainty.region import BoxRegion
from repro.utils.rng import ensure_rng
from repro.utils.validation import ensure_vector


class MixtureDistribution(MultivariateDistribution):
    """Weighted finite mixture of multivariate components.

    Parameters
    ----------
    components:
        Component distributions, all of the same dimensionality.
    weights:
        Mixing proportions; default is uniform (the MMVar centroid uses
        weight ``1/|C|`` per member).  Must be nonnegative and sum to 1.
    """

    __slots__ = ("_components", "_weights", "_cdf", "_region", "_mean", "_second")

    def __init__(
        self,
        components: Sequence[MultivariateDistribution],
        weights: Optional[VectorLike] = None,
    ):
        if not components:
            raise InvalidParameterError("at least one component is required")
        self._components = tuple(components)
        dim = self._components[0].dim
        for comp in self._components:
            if comp.dim != dim:
                raise InvalidParameterError(
                    "all mixture components must share dimensionality"
                )
        n = len(self._components)
        if weights is None:
            self._weights = np.full(n, 1.0 / n)
        else:
            self._weights = ensure_vector(weights, "weights", dim=n)
            if np.any(self._weights < 0):
                raise InvalidParameterError("weights must be nonnegative")
            total = float(self._weights.sum())
            if not np.isclose(total, 1.0, rtol=1e-9, atol=1e-12):
                raise InvalidParameterError(
                    f"weights must sum to 1, got {total}"
                )
        self._weights.setflags(write=False)
        # Mixing-weight CDF for inverse-transform component selection;
        # the final entry is exactly 1 (x / x == 1.0 in IEEE).
        self._cdf = np.cumsum(self._weights)
        self._cdf /= self._cdf[-1]
        self._cdf.setflags(write=False)

        region = self._components[0].region
        for comp in self._components[1:]:
            region = region.union_box(comp.region)
        self._region = region

        # Lemma 2: moments of a mixture are the weighted component moments.
        self._mean = np.zeros(dim)
        self._second = np.zeros(dim)
        for weight, comp in zip(self._weights, self._components):
            self._mean += weight * comp.mean_vector
            self._second += weight * comp.second_moment_vector
        self._mean.setflags(write=False)
        self._second.setflags(write=False)

    @property
    def components(self) -> tuple[MultivariateDistribution, ...]:
        """The mixture components."""
        return self._components

    @property
    def weights(self) -> FloatArray:
        """The mixing proportions."""
        return self._weights

    @property
    def weight_cdf(self) -> FloatArray:
        """Cumulative mixing proportions, shape ``(c,)``; last entry 1."""
        return self._cdf

    @property
    def region(self) -> BoxRegion:
        return self._region

    @property
    def mean_vector(self) -> FloatArray:
        return self._mean

    @property
    def second_moment_vector(self) -> FloatArray:
        return self._second

    def pdf(self, points: np.ndarray) -> np.ndarray:
        pts = self._points_matrix(points)
        density = np.zeros(pts.shape[0])
        for weight, comp in zip(self._weights, self._components):
            if weight > 0.0:
                density += weight * comp.pdf(pts)
        return density

    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        """Draw ``size`` i.i.d. mixture samples.

        Canonical two-stage scheme threading one :class:`Generator`:

        1. one uniform per draw selects the component by inverse CDF of
           the mixing weights;
        2. one batched tensor draw over *all* components (via
           :func:`repro.uncertainty.batch.sample_tensor`, which shares
           this ``rng``) realizes every component at every sample slot,
           and the selection gathers from it.

        The earlier multinomial-count/shuffle formulation consumed the
        stream through per-component RNG state in a count-dependent
        order, so a grouped (batched) draw could never reproduce a
        sequential one.  With this scheme the batch sampler runs the
        identical transforms, and ``sample_tensor([mix], S, seed)``
        equals ``mix.sample(S, seed)`` draw for draw (regression-pinned
        in ``tests/test_batch_sampling.py``).

        Cost of that alignment: every component is realized at every
        slot, so a c-component mixture draws c times the samples it
        keeps (count-dependent draws would make the RNG layout
        data-dependent and unbatchable).  The library's mixtures are
        small (MMVar centroids use their *moments*, not draws), so the
        vectorization win dominates; for sampling-heavy use of mixtures
        with many expensive components, draw from the components
        directly instead.
        """
        from repro.uncertainty.batch import sample_tensor

        rng = ensure_rng(seed)
        chosen = np.searchsorted(self._cdf, rng.random(size), side="right")
        chosen = np.minimum(chosen, len(self._components) - 1)
        realizations = sample_tensor(self._components, size, rng)
        return realizations[chosen, np.arange(size)]
