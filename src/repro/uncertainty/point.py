"""Degenerate (point-mass) distributions.

Deterministic data is the zero-variance special case of the uncertainty
model: the Case-1 evaluation protocol clusters perturbed *deterministic*
datasets with the same algorithms, which these classes enable without
any special-casing in the clustering code.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatArray, SeedLike, VectorLike
from repro.uncertainty.base import MultivariateDistribution, UnivariateDistribution
from repro.uncertainty.region import BoxRegion
from repro.utils.validation import ensure_vector


class PointMassDistribution(UnivariateDistribution):
    """A 1-D distribution concentrated at a single value."""

    __slots__ = ("_value",)

    def __init__(self, value: float):
        self._value = float(value)

    @property
    def support_lower(self) -> float:
        return self._value

    @property
    def support_upper(self) -> float:
        return self._value

    @property
    def mean(self) -> float:
        return self._value

    @property
    def second_moment(self) -> float:
        return self._value**2

    @property
    def variance(self) -> float:
        return 0.0

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x == self._value, np.inf, 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x >= self._value, 1.0, 0.0)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        return np.full_like(q, self._value)


class MultivariatePointMass(MultivariateDistribution):
    """An m-dimensional distribution concentrated at a single point."""

    __slots__ = ("_point", "_region")

    def __init__(self, point: VectorLike):
        self._point = ensure_vector(point, "point")
        self._point.setflags(write=False)
        self._region = BoxRegion.point(self._point)

    @property
    def region(self) -> BoxRegion:
        return self._region

    @property
    def mean_vector(self) -> FloatArray:
        return self._point

    @property
    def second_moment_vector(self) -> FloatArray:
        return self._point**2

    @property
    def total_variance(self) -> float:
        return 0.0

    def pdf(self, points: np.ndarray) -> np.ndarray:
        pts = self._points_matrix(points)
        hits = np.all(pts == self._point, axis=1)
        return np.where(hits, np.inf, 0.0)

    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        return np.tile(self._point, (size, 1))
