"""Uncertainty-model substrate: regions, pdf families, samplers (S1-S2).

This subpackage implements Definition 1 of the paper — multivariate
uncertain representations ``(R, f)`` — together with the three pdf
families the evaluation uses (Uniform, Normal, Exponential), degenerate
and empirical variants, mixtures (the MMVar centroid), and the Monte
Carlo / MCMC samplers that replace the SSJ library.
"""

from repro.uncertainty.base import MultivariateDistribution, UnivariateDistribution
from repro.uncertainty.batch import (
    SamplingPlan,
    batch_families,
    build_sampling_plan,
    is_batchable,
    register_batch_sampler,
    sample_tensor,
)
from repro.uncertainty.empirical import EmpiricalDistribution
from repro.uncertainty.exponential import TruncatedExponentialDistribution
from repro.uncertainty.mixture import MixtureDistribution
from repro.uncertainty.moments import (
    MomentEstimate,
    monte_carlo_moments,
    quadrature_mass,
    quadrature_moments,
)
from repro.uncertainty.normal import TruncatedNormalDistribution
from repro.uncertainty.point import MultivariatePointMass, PointMassDistribution
from repro.uncertainty.product import IndependentProduct
from repro.uncertainty.region import BoxRegion, scaled_minkowski_sum
from repro.uncertainty.sampling import (
    MCMCDiagnostics,
    MetropolisHastingsSampler,
    MonteCarloSampler,
)
from repro.uncertainty.triangular import TriangularDistribution
from repro.uncertainty.uniform import UniformDistribution

__all__ = [
    "MultivariateDistribution",
    "UnivariateDistribution",
    "SamplingPlan",
    "batch_families",
    "build_sampling_plan",
    "is_batchable",
    "register_batch_sampler",
    "sample_tensor",
    "EmpiricalDistribution",
    "TruncatedExponentialDistribution",
    "MixtureDistribution",
    "MomentEstimate",
    "monte_carlo_moments",
    "quadrature_mass",
    "quadrature_moments",
    "TruncatedNormalDistribution",
    "MultivariatePointMass",
    "PointMassDistribution",
    "IndependentProduct",
    "BoxRegion",
    "scaled_minkowski_sum",
    "MCMCDiagnostics",
    "MetropolisHastingsSampler",
    "MonteCarloSampler",
    "TriangularDistribution",
    "UniformDistribution",
]
