"""Empirical (sample-based) multivariate distributions.

Some pipelines produce uncertainty only as a cloud of samples (e.g. the
MCMC perturbation draws of Section 5.1, or posterior samples from a
probe-level microarray model).  :class:`EmpiricalDistribution` wraps a
weighted sample set as a first-class distribution: moments are the
weighted sample moments and the region is the sample bounding box, so
every clustering algorithm in the library works on it unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import FloatArray, MatrixLike, SeedLike, VectorLike
from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import MultivariateDistribution
from repro.uncertainty.region import BoxRegion
from repro.utils.rng import ensure_rng
from repro.utils.validation import ensure_matrix, ensure_vector


class EmpiricalDistribution(MultivariateDistribution):
    """A discrete distribution over observed sample points.

    Parameters
    ----------
    samples:
        Matrix of shape ``(s, m)``: ``s`` observed realizations.
    weights:
        Optional nonnegative weights, normalized internally; default
        uniform.
    """

    __slots__ = ("_samples", "_weights", "_cdf", "_region", "_mean", "_second")

    def __init__(self, samples: MatrixLike, weights: Optional[VectorLike] = None):
        self._samples = ensure_matrix(samples, "samples")
        if self._samples.shape[0] == 0:
            raise InvalidParameterError("at least one sample is required")
        count = self._samples.shape[0]
        if weights is None:
            self._weights = np.full(count, 1.0 / count)
        else:
            raw = ensure_vector(weights, "weights", dim=count)
            if np.any(raw < 0):
                raise InvalidParameterError("weights must be nonnegative")
            total = float(raw.sum())
            if total <= 0:
                raise InvalidParameterError("weights must not all be zero")
            self._weights = raw / total
        self._samples.setflags(write=False)
        self._weights.setflags(write=False)
        # Weight CDF for inverse-transform sampling; the final entry is
        # exactly 1 (x / x == 1.0 in IEEE), so a uniform draw in [0, 1)
        # always lands inside the table.
        self._cdf = self._weights.cumsum()
        self._cdf /= self._cdf[-1]
        self._cdf.setflags(write=False)

        self._region = BoxRegion(
            self._samples.min(axis=0), self._samples.max(axis=0)
        )
        self._mean = self._weights @ self._samples
        self._second = self._weights @ (self._samples**2)
        self._mean.setflags(write=False)
        self._second.setflags(write=False)

    @property
    def samples(self) -> FloatArray:
        """The underlying sample matrix, shape ``(s, m)``."""
        return self._samples

    @property
    def weights(self) -> FloatArray:
        """Normalized sample weights, shape ``(s,)``."""
        return self._weights

    @property
    def n_samples(self) -> int:
        """Number of stored samples."""
        return self._samples.shape[0]

    @property
    def weight_cdf(self) -> FloatArray:
        """Cumulative normalized weights, shape ``(s,)``; last entry 1."""
        return self._cdf

    @property
    def region(self) -> BoxRegion:
        return self._region

    @property
    def mean_vector(self) -> FloatArray:
        return self._mean

    @property
    def second_moment_vector(self) -> FloatArray:
        return self._second

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Probability *mass* of exact sample matches.

        An empirical distribution has no density; we return the summed
        weight of samples exactly equal to each query point, which is the
        natural discrete analogue and is sufficient for the algorithms
        that only need sampling and moments.
        """
        pts = self._points_matrix(points)
        out = np.zeros(pts.shape[0])
        for idx in range(pts.shape[0]):
            hits = np.all(self._samples == pts[idx], axis=1)
            out[idx] = float(self._weights[hits].sum())
        return out

    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        """Bootstrap resample of the stored points.

        Implemented as an explicit inverse-CDF transform over one
        uniform per draw — the same operation ``Generator.choice``
        performs internally (stream-identical), spelled out so the
        grouped batch sampler (:mod:`repro.uncertainty.batch`) can run
        the identical transform for many empirical objects at once.
        """
        rng = ensure_rng(seed)
        indices = np.searchsorted(self._cdf, rng.random(size), side="right")
        return self._samples[np.minimum(indices, self.n_samples - 1)]
