"""Uniform distribution on an interval — one of the paper's three pdf families."""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.uncertainty.base import UnivariateDistribution


class UniformDistribution(UnivariateDistribution):
    """Continuous uniform distribution on ``[lower, upper]``.

    Used by the paper's uncertainty generator: each deterministic point
    gets a Uniform pdf centered on it with a randomly chosen width, so
    the expected value equals the original point (Section 5.1).

    Analytic moments::

        mean = (lower + upper) / 2
        E[X^2] = (lower^2 + lower*upper + upper^2) / 3
    """

    __slots__ = ("_lower", "_upper")

    def __init__(self, lower: float, upper: float):
        lower = float(lower)
        upper = float(upper)
        if not (np.isfinite(lower) and np.isfinite(upper)):
            raise InvalidParameterError("uniform bounds must be finite")
        if lower > upper:
            raise InvalidParameterError(
                f"lower ({lower}) must not exceed upper ({upper})"
            )
        self._lower = lower
        self._upper = upper

    @staticmethod
    def centered(center: float, half_width: float) -> "UniformDistribution":
        """Uniform pdf with mean exactly ``center`` and width ``2*half_width``."""
        if half_width < 0:
            raise InvalidParameterError(f"half_width must be >= 0, got {half_width}")
        return UniformDistribution(center - half_width, center + half_width)

    # ------------------------------------------------------------------
    # Support and moments
    # ------------------------------------------------------------------
    @property
    def support_lower(self) -> float:
        return self._lower

    @property
    def support_upper(self) -> float:
        return self._upper

    @property
    def mean(self) -> float:
        return 0.5 * (self._lower + self._upper)

    @property
    def second_moment(self) -> float:
        a = self._lower
        b = self._upper
        return (a * a + a * b + b * b) / 3.0

    # ------------------------------------------------------------------
    # Density / CDF / quantiles
    # ------------------------------------------------------------------
    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        width = self.support_width
        if width == 0.0:
            # Degenerate interval: represent the density as infinite at the
            # point; callers treating it as a point mass should use
            # PointMassDistribution instead.
            return np.where(x == self._lower, np.inf, 0.0)
        inside = (x >= self._lower) & (x <= self._upper)
        return np.where(inside, 1.0 / width, 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        width = self.support_width
        if width == 0.0:
            return np.where(x >= self._lower, 1.0, 0.0)
        return np.clip((x - self._lower) / width, 0.0, 1.0)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        return self._lower + q * self.support_width
