"""Shared type aliases used across the :mod:`repro` library."""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np
import numpy.typing as npt

#: A dense float vector (1-D numpy array).
FloatArray = npt.NDArray[np.float64]

#: An integer label vector (1-D numpy array).
IntArray = npt.NDArray[np.int64]

#: Anything convertible to a 1-D float vector.
VectorLike = Union[Sequence[float], npt.NDArray[np.floating]]

#: Anything convertible to a 2-D float matrix.
MatrixLike = Union[Sequence[Sequence[float]], npt.NDArray[np.floating]]

#: A random seed accepted by :func:`repro.utils.rng.ensure_rng`.
SeedLike = Union[None, int, np.random.Generator]

#: A metric on two m-dimensional points returning a nonnegative float.
PointMetric = Callable[[FloatArray, FloatArray], float]
