"""The MMVar mixture-model centroid (Eq. (10) and Lemma 2 of the paper)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import FloatArray
from repro.exceptions import EmptyClusterError
from repro.objects.uncertain_object import UncertainObject
from repro.uncertainty.mixture import MixtureDistribution


class MixtureModelCentroid:
    """Centroid of a cluster as the mixture of its members' pdfs.

    ``C_MM = (R_MM, f_MM)`` with ``R_MM`` the union of member regions and
    ``f_MM`` the average of member pdfs (Eq. (10)).  Lemma 2 gives its
    moments directly from member moments, so the heavyweight
    :class:`MixtureDistribution` is only materialized on demand
    (:meth:`as_distribution`) — the MMVar algorithm itself needs moments
    only.
    """

    __slots__ = ("_members", "_mu", "_mu2")

    def __init__(self, members: Sequence[UncertainObject]):
        if len(members) == 0:
            raise EmptyClusterError("cannot build a centroid of an empty cluster")
        self._members = tuple(members)
        dim = members[0].dim
        mu = np.zeros(dim)
        mu2 = np.zeros(dim)
        for obj in self._members:
            mu += obj.mu
            mu2 += obj.mu2
        count = float(len(self._members))
        self._mu = mu / count
        self._mu2 = mu2 / count
        self._mu.setflags(write=False)
        self._mu2.setflags(write=False)

    @property
    def mu(self) -> FloatArray:
        """``mu(C_MM) = (1/|C|) sum_o mu(o)`` (Lemma 2)."""
        return self._mu

    @property
    def mu2(self) -> FloatArray:
        """``mu2(C_MM) = (1/|C|) sum_o mu2(o)`` (Lemma 2)."""
        return self._mu2

    @property
    def variance_vector(self) -> FloatArray:
        """Per-dimension variance ``mu2 - mu^2`` of the mixture."""
        return np.maximum(self._mu2 - self._mu**2, 0.0)

    @property
    def total_variance(self) -> float:
        """Scalar variance ``sigma^2(C_MM)`` — MMVar's compactness (Eq. (11))."""
        return float(self.variance_vector.sum())

    def as_distribution(self) -> MixtureDistribution:
        """Materialize the full mixture distribution (region, pdf, sampling)."""
        return MixtureDistribution([obj.distribution for obj in self._members])

    def as_uncertain_object(self) -> UncertainObject:
        """Wrap the mixture as an :class:`UncertainObject`."""
        return UncertainObject(self.as_distribution())
