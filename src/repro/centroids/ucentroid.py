"""The U-centroid — the paper's novel uncertain cluster centroid (Section 4.1).

Theorem 1 defines the U-centroid of a cluster ``C = {o_1, ..., o_n}`` as
the uncertain object ``(R, f)`` of the random variable

    X_C = (1/n) * (X_1 + ... + X_n),

the mean of one independent realization per member — each realization of
the centroid is the point minimizing the summed squared Euclidean
distance to one joint realization of the members (Figure 3).

The pdf ``f`` is an n-fold convolution integral with no closed form in
general, but:

* the **region** is the Minkowski average of member regions (Theorem 1,
  second statement) — :attr:`UCentroid.region`;
* the **moments** have closed forms (Lemma 5) — :attr:`mu`, :attr:`mu2`;
* the **variance** is ``|C|^-2 sum_i sigma^2(o_i)`` (Theorem 2) —
  :attr:`total_variance`;
* the pdf can be **sampled exactly** (draw one realization per member
  and average) and **evaluated numerically** by Monte-Carlo integration
  of the indicator form — :meth:`sample`, :meth:`pdf_estimate`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import FloatArray, SeedLike
from repro.exceptions import EmptyClusterError, InvalidParameterError
from repro.objects.uncertain_object import UncertainObject
from repro.uncertainty.empirical import EmpiricalDistribution
from repro.uncertainty.region import BoxRegion, scaled_minkowski_sum
from repro.utils.rng import ensure_rng


class UCentroid:
    """The uncertain centroid ``C̄ = (R, f)`` of Theorem 1.

    Parameters
    ----------
    members:
        The cluster's uncertain objects (at least one).
    """

    __slots__ = ("_members", "_region", "_mu", "_mu2")

    def __init__(self, members: Sequence[UncertainObject]):
        if len(members) == 0:
            raise EmptyClusterError("cannot build a U-centroid of an empty cluster")
        self._members = tuple(members)
        self._region = scaled_minkowski_sum([obj.region for obj in self._members])

        # Lemma 5: mu(C̄) = (1/n) sum_i mu(o_i);
        # mu2(C̄) = (1/n^2) [ sum_i mu2(o_i) + 2 sum_{i<i'} mu(o_i) mu(o_i') ].
        # The member moments are stacked once and reduced along the
        # leading axis — ufunc reduction over the outer axis accumulates
        # row by row, so the sums are bit-identical to the per-member
        # loop they replace (pinned in ``tests/test_centroids.py``).
        count = len(self._members)
        mu_stack = np.stack([obj.mu for obj in self._members])
        mu2_stack = np.stack([obj.mu2 for obj in self._members])
        mu_sum = mu_stack.sum(axis=0)
        mu2_sum = mu2_stack.sum(axis=0)
        mu_sq_sum = (mu_stack**2).sum(axis=0)
        # 2 sum_{i<i'} mu_i mu_i' = (sum_i mu_i)^2 - sum_i mu_i^2
        cross = mu_sum**2 - mu_sq_sum
        self._mu = mu_sum / count
        self._mu2 = (mu2_sum + cross) / (count * count)
        self._mu.setflags(write=False)
        self._mu2.setflags(write=False)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def members(self) -> tuple[UncertainObject, ...]:
        """The cluster members the centroid summarizes."""
        return self._members

    @property
    def size(self) -> int:
        """Cluster cardinality ``|C|``."""
        return len(self._members)

    @property
    def dim(self) -> int:
        """Dimensionality m."""
        return self._mu.shape[0]

    @property
    def region(self) -> BoxRegion:
        """Domain region of Theorem 1: the Minkowski average of member boxes."""
        return self._region

    # ------------------------------------------------------------------
    # Moments (Lemma 5 / Theorem 2)
    # ------------------------------------------------------------------
    @property
    def mu(self) -> FloatArray:
        """Expected value ``mu(C̄)`` — equals the UK-means centroid."""
        return self._mu

    @property
    def mu2(self) -> FloatArray:
        """Raw second moment ``mu2(C̄)`` (Lemma 5)."""
        return self._mu2

    @property
    def variance_vector(self) -> FloatArray:
        """Per-dimension variance of the centroid."""
        return np.maximum(self._mu2 - self._mu**2, 0.0)

    @property
    def total_variance(self) -> float:
        """``sigma^2(C̄) = |C|^-2 sum_i sigma^2(o_i)`` (Theorem 2).

        Theorem 2 proves this quantity is *not* a sound compactness
        criterion on its own — it ignores inter-object distances — which
        is why the UCPC objective uses ``J`` of Theorem 3 instead.
        """
        return float(self.variance_vector.sum())

    # ------------------------------------------------------------------
    # Realizations of X_C
    # ------------------------------------------------------------------
    def sample(self, size: int, seed: SeedLike = None) -> FloatArray:
        """Draw exact realizations of ``X_C``.

        Each sample draws one independent realization from every member
        and returns their mean — precisely the generative definition of
        the U-centroid (Figure 3 of the paper).
        """
        if size <= 0:
            raise InvalidParameterError(f"size must be > 0, got {size}")
        rng = ensure_rng(seed)
        total = np.zeros((size, self.dim))
        for obj in self._members:
            total += obj.sample(size, rng)
        return total / self.size

    def pdf_estimate(
        self,
        points: np.ndarray,
        n_samples: int = 20000,
        bandwidth: float = 0.05,
        seed: SeedLike = None,
    ) -> FloatArray:
        """Kernel estimate of the analytically-intractable pdf ``f``.

        Theorem 1's ``f`` involves an n-fold indicator integral with no
        closed form; we approximate it by Gaussian-kernel density
        estimation over exact samples of ``X_C``.  Exposed for analysis
        and plotting — the clustering objective never needs it (the whole
        point of Theorem 3).

        Parameters
        ----------
        bandwidth:
            Kernel width as a fraction of each region width.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.shape[1] != self.dim:
            raise InvalidParameterError(
                f"points must have {self.dim} columns, got {pts.shape[1]}"
            )
        samples = self.sample(n_samples, seed)
        widths = np.where(self._region.widths > 0, self._region.widths, 1.0)
        h = bandwidth * widths
        norm = float(np.prod(h)) * (2.0 * np.pi) ** (self.dim / 2.0)
        out = np.empty(pts.shape[0])
        for idx in range(pts.shape[0]):
            z = (samples - pts[idx]) / h
            sq = np.einsum("ij,ij->i", z, z)
            out[idx] = float(np.exp(-0.5 * sq).mean()) / norm
        return out

    def as_uncertain_object(
        self, n_samples: int = 2048, seed: SeedLike = None
    ) -> UncertainObject:
        """Empirical uncertain-object view of the centroid.

        Useful when downstream code (e.g. hierarchical merging, plotting)
        needs the centroid as a regular dataset object.
        """
        return UncertainObject(EmpiricalDistribution(self.sample(n_samples, seed)))

    def __repr__(self) -> str:
        return (
            f"UCentroid(size={self.size}, dim={self.dim}, "
            f"mu={np.round(self._mu, 4)}, var={self.total_variance:g})"
        )
