"""Cluster centroid notions (S5): deterministic, mixture-model, U-centroid."""

from repro.centroids.deterministic import (
    ukmeans_centroid,
    ukmeans_centroids_from_assignment,
)
from repro.centroids.mixture_model import MixtureModelCentroid
from repro.centroids.ucentroid import UCentroid

__all__ = [
    "ukmeans_centroid",
    "ukmeans_centroids_from_assignment",
    "MixtureModelCentroid",
    "UCentroid",
]
