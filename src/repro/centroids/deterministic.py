"""The deterministic UK-means centroid (Eq. (7) of the paper)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import FloatArray
from repro.exceptions import EmptyClusterError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject


def ukmeans_centroid(objects: Sequence[UncertainObject]) -> FloatArray:
    """Deterministic centroid ``C_UK = (1/|C|) sum_o mu(o)`` (Eq. (7)).

    This is the notion of centroid whose variance-blindness motivates
    the paper (Proposition 1 / Figure 1): it is a plain point that
    discards every object's individual variance.
    """
    if len(objects) == 0:
        raise EmptyClusterError("cannot compute a centroid of an empty cluster")
    total = np.zeros(objects[0].dim)
    for obj in objects:
        total += obj.mu
    return total / len(objects)


def ukmeans_centroids_from_assignment(
    dataset: UncertainDataset, assignment: np.ndarray, n_clusters: int
) -> FloatArray:
    """Vectorized centroids for every cluster of an assignment vector.

    Empty clusters get a row of NaN; callers decide a repair policy
    (UK-means reseeds them, see :mod:`repro.clustering.ukmeans`).
    """
    assignment = np.asarray(assignment)
    centers = np.full((n_clusters, dataset.dim), np.nan)
    for c in range(n_clusters):
        members = assignment == c
        count = int(members.sum())
        if count > 0:
            centers[c] = dataset.mu_matrix[members].mean(axis=0)
    return centers
