"""Pairwise-distance plane: one shared ``ÊD`` matrix per run-set.

The paper accounts UK-medoids' pairwise ``ÊD`` matrix as a one-time
*off-line* phase (Lemma 3 / S12), like UK-means' moment precomputation
and the sample-based algorithms' tensor draw.  The engine mirrors that
accounting for multi-restart execution: algorithms declaring
``wants_pairwise_ed = True`` expose a ``pairwise_ed_cache`` attribute,
and the runner computes :meth:`UncertainDataset.pairwise_ed` **once**
per run-set and pins it there — restarts then skip the O(n^2 m) matrix
build entirely.  Under the process backend the matrix is published
through :mod:`multiprocessing.shared_memory` (attach-by-name, never
pickled), exactly like the moment matrices and the sample tensor.

This module holds the small protocol helpers shared by the runner, the
backends and the evaluation protocol; the matrix itself is cached on the
(immutable) dataset so every consumer in a process reads one copy.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from repro.clustering.base import UncertainClusterer
from repro.objects.dataset import UncertainDataset


def needs_pairwise_ed(clusterer: UncertainClusterer) -> bool:
    """Whether the engine must inject a shared ``ÊD`` matrix.

    False when the algorithm does not consume the matrix, when a matrix
    is already pinned in ``pairwise_ed_cache``, or when the caller fixed
    one at construction time (``precomputed`` — e.g. a custom externally
    computed matrix the engine must not shadow).
    """
    return (
        getattr(clusterer, "wants_pairwise_ed", False)
        and getattr(clusterer, "pairwise_ed_cache", None) is None
        and getattr(clusterer, "precomputed", None) is None
    )


def resolve_pairwise_ed(
    clusterer: UncertainClusterer,
    dataset: UncertainDataset,
    matrix: Optional[np.ndarray] = None,
) -> Optional[np.ndarray]:
    """The matrix to inject for one run-set, or None when not needed.

    An explicitly provided ``matrix`` (e.g. the evaluation protocol's
    scoring matrix) wins; otherwise the dataset's cached
    :meth:`~repro.objects.dataset.UncertainDataset.pairwise_ed` is used,
    so repeated run-sets over one dataset still compute it once.
    """
    if not needs_pairwise_ed(clusterer):
        return None
    if matrix is not None:
        return np.asarray(matrix, dtype=np.float64)
    return dataset.pairwise_ed()


@contextmanager
def pinned_pairwise_ed(
    clusterer: UncertainClusterer, matrix: Optional[np.ndarray]
) -> Iterator[None]:
    """Temporarily pin ``matrix`` as the clusterer's shared ``ÊD`` plane.

    No-op when ``matrix`` is None (from :func:`resolve_pairwise_ed`'s
    "not needed" answer); otherwise the previous cache value is restored
    on exit even if a fit raises.
    """
    if matrix is None:
        yield
        return
    previous = getattr(clusterer, "pairwise_ed_cache", None)
    clusterer.pairwise_ed_cache = matrix
    try:
        yield
    finally:
        clusterer.pairwise_ed_cache = previous
