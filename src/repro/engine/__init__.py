"""Batch execution engine: orchestration above the single algorithms.

The clustering modules implement one run of one algorithm; this
subpackage implements how production workloads actually invoke them —
many random restarts over shared precomputed moment/sample/pairwise-ÊD
caches, keeping the best result by objective.  Execution is pluggable
(:mod:`repro.engine.backends`): serial, thread pool (GIL-releasing
NumPy kernels, zero serialization), process pool (moment matrices,
sample tensor and ÊD matrix published once via shared memory) or auto
(per-algorithm-family dispatch), all bit-identical for fixed seeds,
with optional engine-level early stopping across restarts and
in-worker restart batching.  Sweep results persist through the
pluggable result-store layer (:mod:`repro.engine.store`): a JSON
directory or a single-file SQLite database with SQL-side aggregation,
migratable in either direction.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    AutoBackend,
    EarlyStopping,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SharedBlockRegistry,
    ThreadBackend,
    get_backend,
    shared_block_registry,
    validate_batch_size,
)
from repro.engine.distances import (
    needs_pairwise_ed,
    pinned_pairwise_ed,
    resolve_pairwise_ed,
)
from repro.engine.runner import MultiRestartRunner, RestartRecord, fit_runs
from repro.engine.store import (
    STORE_BACKENDS,
    JsonStore,
    ResultStore,
    SqliteStore,
    migrate_store,
    open_store,
)

__all__ = [
    "AutoBackend",
    "BACKEND_NAMES",
    "EarlyStopping",
    "ExecutionBackend",
    "JsonStore",
    "MultiRestartRunner",
    "ProcessBackend",
    "RestartRecord",
    "ResultStore",
    "STORE_BACKENDS",
    "SerialBackend",
    "SharedBlockRegistry",
    "SqliteStore",
    "ThreadBackend",
    "fit_runs",
    "get_backend",
    "migrate_store",
    "needs_pairwise_ed",
    "open_store",
    "pinned_pairwise_ed",
    "resolve_pairwise_ed",
    "shared_block_registry",
    "validate_batch_size",
]
