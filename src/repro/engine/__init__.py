"""Batch execution engine: orchestration above the single algorithms.

The clustering modules implement one run of one algorithm; this
subpackage implements how production workloads actually invoke them —
many random restarts over a shared precomputed moment/sample cache,
keeping the best result by objective.  Execution is pluggable
(:mod:`repro.engine.backends`): serial, thread pool (GIL-releasing
NumPy kernels, zero serialization) or process pool (moment matrices
and the sample tensor published once via shared memory), all
bit-identical for fixed seeds, with optional engine-level early
stopping across restarts.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    EarlyStopping,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.engine.runner import MultiRestartRunner, RestartRecord, fit_runs

__all__ = [
    "BACKEND_NAMES",
    "EarlyStopping",
    "ExecutionBackend",
    "MultiRestartRunner",
    "ProcessBackend",
    "RestartRecord",
    "SerialBackend",
    "ThreadBackend",
    "fit_runs",
    "get_backend",
]
