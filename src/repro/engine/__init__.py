"""Batch execution engine: orchestration above the single algorithms.

The clustering modules implement one run of one algorithm; this
subpackage implements how production workloads actually invoke them —
many random restarts over shared precomputed moment/sample/pairwise-ÊD
caches, keeping the best result by objective.  Execution is pluggable
(:mod:`repro.engine.backends`): serial, thread pool (GIL-releasing
NumPy kernels, zero serialization), process pool (moment matrices,
sample tensor and ÊD matrix published once via shared memory) or auto
(per-algorithm-family dispatch), all bit-identical for fixed seeds,
with optional engine-level early stopping across restarts and
in-worker restart batching.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    AutoBackend,
    EarlyStopping,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SharedBlockRegistry,
    ThreadBackend,
    get_backend,
    shared_block_registry,
    validate_batch_size,
)
from repro.engine.distances import (
    needs_pairwise_ed,
    pinned_pairwise_ed,
    resolve_pairwise_ed,
)
from repro.engine.runner import MultiRestartRunner, RestartRecord, fit_runs

__all__ = [
    "AutoBackend",
    "BACKEND_NAMES",
    "EarlyStopping",
    "ExecutionBackend",
    "MultiRestartRunner",
    "ProcessBackend",
    "RestartRecord",
    "SerialBackend",
    "SharedBlockRegistry",
    "ThreadBackend",
    "fit_runs",
    "get_backend",
    "needs_pairwise_ed",
    "pinned_pairwise_ed",
    "resolve_pairwise_ed",
    "shared_block_registry",
    "validate_batch_size",
]
