"""Batch execution engine: orchestration above the single algorithms.

The clustering modules implement one run of one algorithm; this
subpackage implements how production workloads actually invoke them —
many random restarts over a shared precomputed moment/sample cache,
sequentially or process-parallel, keeping the best result by objective.
"""

from repro.engine.runner import MultiRestartRunner, RestartRecord, fit_runs

__all__ = ["MultiRestartRunner", "RestartRecord", "fit_runs"]
