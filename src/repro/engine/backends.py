"""Pluggable execution backends for the multi-restart engine.

The engine's restarts are embarrassingly parallel, but *how* they should
execute depends on the algorithm family:

* **serial** — one restart after another in the calling process.  The
  right choice for quick fits and the reference semantics every other
  backend must reproduce bit-for-bit.
* **threads** — a ``ThreadPoolExecutor`` sharing the process address
  space.  NumPy's kernels release the GIL, so moment-based fits
  (UK-means, MMVar, UCPC) scale across cores *without serializing a
  single byte*: every restart reads the same moment matrices and sample
  tensor in place.
* **processes** — a ``ProcessPoolExecutor`` for fits whose Python-level
  bookkeeping would serialize on the GIL.  The dataset's stacked moment
  matrices and the engine's batched ``(n, S, m)`` sample tensor are
  published **once** through :mod:`multiprocessing.shared_memory`;
  workers attach to the blocks by name instead of receiving pickled
  copies, so the per-restart (and per-worker) pickling cost no longer
  grows with ``n·S·m``.

Determinism contract
--------------------
``ExecutionBackend.run`` consumes completed restarts strictly in
*submission order* (seed order), and the optional early-stopping rule is
evaluated on that ordered stream.  Out-of-order completion in a pool can
therefore never change which restarts are kept: for a fixed seed list,
every backend returns the identical result prefix, and the engine's
best-of selection is bit-identical across ``serial``/``threads``/
``processes`` — the backend-invariance tests pin this.
"""

from __future__ import annotations

import abc
import pickle
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.clustering.base import ClusteringResult, UncertainClusterer
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset

#: Names accepted by :func:`get_backend` (and the ``backend=`` knobs of
#: the runner, the experiment configs and the CLI).
BACKEND_NAMES = ("serial", "threads", "processes")


@dataclass(frozen=True)
class EarlyStopping:
    """Engine-level early stopping across restarts.

    Stop *scheduling* new restarts once the best objective seen so far
    has not improved for ``patience`` consecutive completed restarts,
    evaluated in submission (seed) order.  Restarts beyond the stopping
    point are never part of the result, even if a parallel backend had
    already started them — so the selected best run is identical for
    every backend.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving restarts tolerated before
        the engine stops scheduling further ones.
    min_improvement:
        Absolute objective decrease below which a restart counts as
        non-improving (0.0 = any strict decrease resets the counter).
    """

    patience: int
    min_improvement: float = 0.0

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise InvalidParameterError(
                f"patience must be >= 1, got {self.patience}"
            )
        if self.min_improvement < 0.0:
            raise InvalidParameterError(
                f"min_improvement must be >= 0, got {self.min_improvement}"
            )


class _StopClock:
    """Applies an :class:`EarlyStopping` rule to a submission-order stream."""

    def __init__(self, rule: Optional[EarlyStopping]):
        self.rule = rule
        self.best = float("inf")
        self.stale = 0

    def should_stop(self, objective: float) -> bool:
        """Record one completed restart; True = stop scheduling more.

        NaN objectives (objective-less algorithms) never improve, so
        with early stopping enabled they exhaust ``patience`` quickly —
        the runner already warns that such restarts cannot be ranked.
        """
        if self.rule is None:
            return False
        objective = float(objective)
        if not np.isnan(objective) and (
            objective < self.best - self.rule.min_improvement
        ):
            self.best = objective
            self.stale = 0
        else:
            self.stale += 1
        return self.stale >= self.rule.patience


class ExecutionBackend(abc.ABC):
    """How the engine maps restart seeds to :class:`ClusteringResult`.

    Implementations must preserve the determinism contract documented in
    the module docstring: results come back in seed order, truncated at
    the point the early-stopping rule fires on the ordered stream.
    """

    #: Identifier recorded in the winning result's ``extras``.
    name: str = "backend"

    @abc.abstractmethod
    def run(
        self,
        clusterer: UncertainClusterer,
        dataset: UncertainDataset,
        seeds: Sequence[int],
        early_stopping: Optional[EarlyStopping] = None,
    ) -> List[ClusteringResult]:
        """Fit one restart per seed; return results in seed order."""


def _run_serially(
    clusterer: UncertainClusterer,
    dataset: UncertainDataset,
    seeds: Sequence[int],
    early_stopping: Optional[EarlyStopping],
) -> List[ClusteringResult]:
    clock = _StopClock(early_stopping)
    results: List[ClusteringResult] = []
    for seed in seeds:
        result = clusterer.fit(dataset, seed=seed)
        results.append(result)
        if clock.should_stop(result.objective):
            break
    return results


def _drive_pool(
    submit: Callable[[int], Future],
    seeds: Sequence[int],
    early_stopping: Optional[EarlyStopping],
    window: int,
) -> List[ClusteringResult]:
    """Bounded-window pool driver with submission-order consumption.

    At most ``window`` restarts are in flight; completions are consumed
    strictly in submission order so the early-stopping decision — and
    hence the returned prefix — cannot depend on pool scheduling.  Once
    the rule fires, queued-but-unstarted restarts are cancelled and
    anything already running is discarded.

    Callers pass ``window=len(seeds)`` when no early stopping is active
    (everything is submitted upfront and the executor keeps all workers
    busy); the narrow ``window=workers`` is only worth its head-of-line
    submission gap when it bounds the work wasted past a stop decision.
    """
    seeds = list(seeds)
    clock = _StopClock(early_stopping)
    results: List[ClusteringResult] = []
    in_flight: deque[Future] = deque()
    next_idx = 0
    while next_idx < len(seeds) and len(in_flight) < window:
        in_flight.append(submit(seeds[next_idx]))
        next_idx += 1
    while in_flight:
        result = in_flight.popleft().result()
        results.append(result)
        if clock.should_stop(result.objective):
            for future in in_flight:
                future.cancel()
            break
        if next_idx < len(seeds):
            in_flight.append(submit(seeds[next_idx]))
            next_idx += 1
    return results


class SerialBackend(ExecutionBackend):
    """Sequential in-process execution — the reference semantics."""

    name = "serial"

    def run(self, clusterer, dataset, seeds, early_stopping=None):
        return _run_serially(clusterer, dataset, seeds, early_stopping)


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution over the shared address space.

    Nothing is serialized: every worker thread calls
    ``clusterer.fit(dataset, seed)`` on the *same* objects, reading the
    shared moment matrices and (for sample-based algorithms) the pinned
    sample tensor in place.  Fits are instance-state-free, and NumPy
    releases the GIL inside its kernels, so moment-based algorithms
    scale with cores while Python-loop-heavy fits degrade gracefully to
    roughly serial speed.
    """

    name = "threads"

    def __init__(self, n_jobs: int):
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)

    def run(self, clusterer, dataset, seeds, early_stopping=None):
        if self.n_jobs == 1 or len(seeds) == 1:
            return _run_serially(clusterer, dataset, seeds, early_stopping)
        workers = min(self.n_jobs, len(seeds))
        window = workers if early_stopping is not None else len(seeds)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return _drive_pool(
                lambda s: pool.submit(clusterer.fit, dataset, seed=s),
                seeds,
                early_stopping,
                window=window,
            )


# ----------------------------------------------------------------------
# Shared-memory plumbing for the process backend
# ----------------------------------------------------------------------
#: (shm name, shape, dtype string) — everything a worker needs to attach.
_ShmSpec = Tuple[str, Tuple[int, ...], str]


class _SharedNDArray:
    """An ndarray published once in a :class:`SharedMemory` block."""

    def __init__(self, array: np.ndarray):
        array = np.ascontiguousarray(array)
        self.shape = array.shape
        self.dtype = array.dtype.str
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self.shm.buf)
        view[...] = array

    @property
    def spec(self) -> _ShmSpec:
        return (self.shm.name, self.shape, self.dtype)

    def destroy(self) -> None:
        """Close and unlink the block (idempotent)."""
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # already unlinked
            pass


def _attach_shared(spec: _ShmSpec) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Worker-side attach: a read-only ndarray view over the named block.

    The parent owns the block's lifecycle (``_SharedNDArray.destroy``),
    so on Python >= 3.13 the attach opts out of resource tracking.  On
    older versions pool workers share the parent's tracker process and
    its name registry is a set, so the attach-side registration dedupes
    against the parent's own and the parent's ``unlink`` retires the
    name exactly once — workers must *not* unregister manually, which
    would strip the parent's entry instead.
    """
    name, shape, dtype = spec
    try:  # Python >= 3.13
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    array.setflags(write=False)
    return shm, array


#: Per-worker-process state installed by :func:`_init_shared_worker`.
_WORKER_STATE: Dict[str, object] = {}


def _init_shared_worker(payload: Dict[str, object]) -> None:
    """Pool initializer: rebuild the dataset/clusterer around shared blocks.

    Runs once per worker process.  The pickled parts are the light ones
    (hyperparameters, distribution objects); every large array — moment
    matrices and the sample tensor — arrives as a shared-memory spec and
    is attached, not copied.
    """
    shms = []
    views = {}
    for key, spec in payload["moments"].items():
        shm, view = _attach_shared(spec)
        shms.append(shm)
        views[key] = view
    objects, labels = pickle.loads(payload["dataset"])
    dataset = UncertainDataset._from_shared_moments(
        objects, labels, views["mu"], views["mu2"], views["sigma2"]
    )
    clusterer = pickle.loads(payload["clusterer"])
    if payload["sample"] is not None:
        shm, tensor = _attach_shared(payload["sample"])
        shms.append(shm)
        clusterer.sample_cache = tensor
    # Keep the SharedMemory handles referenced for the process lifetime;
    # dropping them would invalidate the array views' buffers.
    _WORKER_STATE["shms"] = shms
    _WORKER_STATE["clusterer"] = clusterer
    _WORKER_STATE["dataset"] = dataset


def _fit_shared(seed: int) -> ClusteringResult:
    return _WORKER_STATE["clusterer"].fit(_WORKER_STATE["dataset"], seed=seed)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution over shared-memory tensors.

    Publication happens once per ``run``: the dataset's ``(n, m)``
    moment matrices and — when the engine pinned one — the ``(n, S, m)``
    sample tensor go into shared-memory blocks; workers attach by name.
    The clusterer is pickled with its ``sample_cache`` stripped, so the
    big tensor is never serialized (the backend tests assert this with
    a pickle spy).  All blocks are unlinked when the run finishes,
    including when a worker crashes.
    """

    name = "processes"

    def __init__(self, n_jobs: int):
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        #: Specs of the most recent run's blocks — exposed so tests can
        #: verify they were unlinked.
        self.last_shared_specs: List[_ShmSpec] = []

    def run(self, clusterer, dataset, seeds, early_stopping=None):
        if self.n_jobs == 1 or len(seeds) == 1:
            return _run_serially(clusterer, dataset, seeds, early_stopping)
        workers = min(self.n_jobs, len(seeds))
        blocks: List[_SharedNDArray] = []
        try:
            moments = {
                "mu": _SharedNDArray(dataset.mu_matrix),
                "mu2": _SharedNDArray(dataset.mu2_matrix),
                "sigma2": _SharedNDArray(dataset.sigma2_matrix),
            }
            blocks.extend(moments.values())
            tensor = getattr(clusterer, "sample_cache", None)
            sample_block = None
            if tensor is not None:
                sample_block = _SharedNDArray(np.asarray(tensor))
                blocks.append(sample_block)
            payload = {
                "clusterer": self._pickle_without_cache(clusterer),
                "dataset": pickle.dumps(dataset._moment_free_state()),
                "moments": {key: blk.spec for key, blk in moments.items()},
                "sample": None if sample_block is None else sample_block.spec,
            }
            self.last_shared_specs = [blk.spec for blk in blocks]
            window = workers if early_stopping is not None else len(seeds)
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_shared_worker,
                initargs=(payload,),
            ) as pool:
                return _drive_pool(
                    lambda s: pool.submit(_fit_shared, s),
                    seeds,
                    early_stopping,
                    window=window,
                )
        finally:
            for block in blocks:
                block.destroy()

    @staticmethod
    def _pickle_without_cache(clusterer: UncertainClusterer) -> bytes:
        """Pickle the clusterer with its sample tensor detached."""
        cache = getattr(clusterer, "sample_cache", None)
        if cache is None:
            return pickle.dumps(clusterer)
        clusterer.sample_cache = None
        try:
            return pickle.dumps(clusterer)
        finally:
            clusterer.sample_cache = cache


#: A backend argument: a name, an instance, or None (= legacy mapping).
BackendLike = Union[str, ExecutionBackend, None]


def get_backend(backend: BackendLike, n_jobs: int = 1) -> ExecutionBackend:
    """Resolve a backend spec to an :class:`ExecutionBackend` instance.

    ``None`` keeps the runner's historical behavior: serial for
    ``n_jobs == 1``, the process pool otherwise.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "serial" if n_jobs == 1 else "processes"
    if backend == "serial":
        return SerialBackend()
    if backend == "threads":
        return ThreadBackend(n_jobs)
    if backend == "processes":
        return ProcessBackend(n_jobs)
    raise InvalidParameterError(
        f"unknown backend {backend!r}; known: {BACKEND_NAMES}"
    )
