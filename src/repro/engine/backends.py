"""Pluggable execution backends for the multi-restart engine.

The engine's restarts are embarrassingly parallel, but *how* they should
execute depends on the algorithm family:

* **serial** — one restart after another in the calling process.  The
  right choice for quick fits and the reference semantics every other
  backend must reproduce bit-for-bit.
* **threads** — a ``ThreadPoolExecutor`` sharing the process address
  space.  NumPy's kernels release the GIL, so moment-based fits
  (UK-means, MMVar, UCPC) scale across cores *without serializing a
  single byte*: every restart reads the same moment matrices and sample
  tensor in place.
* **processes** — a ``ProcessPoolExecutor`` for fits whose Python-level
  bookkeeping would serialize on the GIL.  The dataset's stacked moment
  matrices, the engine's batched ``(n, S, m)`` sample tensor and the
  shared pairwise ``ÊD`` matrix (for ``wants_pairwise_ed`` algorithms)
  are published **once** through :mod:`multiprocessing.shared_memory`;
  workers attach to the blocks by name instead of receiving pickled
  copies, so the per-restart (and per-worker) pickling cost no longer
  grows with ``n·S·m`` or ``n^2``.
* **auto** — per-algorithm-family dispatch: serial when only one worker
  or restart is requested (or the fit is sub-ms small), otherwise the
  clusterer's declared ``preferred_backend`` family — threads for
  GIL-releasing moment/tensor kernels, processes for interpreter-bound
  relocation/merge loops.

All pool backends optionally submit restarts in **in-worker batches**
(``batch_size`` seeds per task): a worker fits a whole chunk in one
task, amortizing per-task pool overhead for sub-ms fits.  Completions
are still consumed in submission order restart-by-restart, so batching
never changes the result (see below).  ``batch_size="auto"`` sizes the
chunks adaptively: the first completed task with a measurable per-fit
latency sets the chunk length so one task runs for about
:data:`ADAPTIVE_TARGET_SECONDS` — sub-ms fits get large chunks, slow
fits degrade to ``batch_size=1`` — while tasks finishing below the
timer resolution only double the chunk length (geometric growth toward
:data:`ADAPTIVE_MAX_BATCH`, never a blind jump to it).  Because
consumption stays submission-ordered either way, the adaptive policy
is bit-identical to any fixed chunking.

Determinism contract
--------------------
``ExecutionBackend.run`` consumes completed restarts strictly in
*submission order* (seed order), and the optional early-stopping rule is
evaluated on that ordered stream.  Out-of-order completion in a pool can
therefore never change which restarts are kept: for a fixed seed list,
every backend returns the identical result prefix, and the engine's
best-of selection is bit-identical across ``serial``/``threads``/
``processes`` — the backend-invariance tests pin this.
"""

from __future__ import annotations

import abc
import pickle
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.clustering.base import ClusteringResult, UncertainClusterer
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset

#: Names accepted by :func:`get_backend` (and the ``backend=`` knobs of
#: the runner, the experiment configs and the CLI).
BACKEND_NAMES = ("serial", "threads", "processes", "auto")

#: Per-fit element floor below which the auto backend prefers serial:
#: fits touching this little data are sub-millisecond, so pool spin-up
#: and task dispatch would dominate any parallel win.  The count is
#: ``n * m`` scaled by the algorithm's Monte-Carlo ``n_samples`` when it
#: is sample-based — an (n, S, m) tensor sweep is not sub-ms just
#: because the dataset is small.
AUTO_SERIAL_ELEMENTS = 4096

#: Wall-clock seconds one pool task should run for under
#: ``batch_size="auto"``: long enough that per-task dispatch overhead
#: (~100 us thread, ~1 ms process) is noise, short enough that the
#: submission-order consumer never waits long on a head-of-line chunk.
ADAPTIVE_TARGET_SECONDS = 0.05

#: Upper bound on an adaptively sized chunk — keeps the work discarded
#: past an early-stopping decision (and the latency-estimate error for
#: very fast fits) bounded.
ADAPTIVE_MAX_BATCH = 64

#: A batch-size argument: a fixed chunk length or ``"auto"`` (adaptive).
BatchSizeLike = Union[int, str]


def validate_batch_size(batch_size: BatchSizeLike) -> BatchSizeLike:
    """Normalize/validate a ``batch_size`` knob (``int >= 1`` or ``"auto"``)."""
    if batch_size == "auto":
        return "auto"
    if isinstance(batch_size, bool) or not isinstance(
        batch_size, (int, np.integer)
    ):
        raise InvalidParameterError(
            f"batch_size must be an int >= 1 or 'auto', got {batch_size!r}"
        )
    if batch_size < 1:
        raise InvalidParameterError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    return int(batch_size)


@dataclass(frozen=True)
class EarlyStopping:
    """Engine-level early stopping across restarts.

    Stop *scheduling* new restarts once the best objective seen so far
    has not improved for ``patience`` consecutive completed restarts,
    evaluated in submission (seed) order.  Restarts beyond the stopping
    point are never part of the result, even if a parallel backend had
    already started them — so the selected best run is identical for
    every backend.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving restarts tolerated before
        the engine stops scheduling further ones.
    min_improvement:
        Absolute objective decrease below which a restart counts as
        non-improving (0.0 = any strict decrease resets the counter).
    """

    patience: int
    min_improvement: float = 0.0

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise InvalidParameterError(
                f"patience must be >= 1, got {self.patience}"
            )
        if self.min_improvement < 0.0:
            raise InvalidParameterError(
                f"min_improvement must be >= 0, got {self.min_improvement}"
            )


class _StopClock:
    """Applies an :class:`EarlyStopping` rule to a submission-order stream."""

    def __init__(self, rule: Optional[EarlyStopping]):
        self.rule = rule
        self.best = float("inf")
        self.stale = 0

    def should_stop(self, objective: float) -> bool:
        """Record one completed restart; True = stop scheduling more.

        NaN objectives (objective-less algorithms) never improve, so
        with early stopping enabled they exhaust ``patience`` quickly —
        the runner already warns that such restarts cannot be ranked.
        """
        if self.rule is None:
            return False
        objective = float(objective)
        if not np.isnan(objective) and (
            objective < self.best - self.rule.min_improvement
        ):
            self.best = objective
            self.stale = 0
        else:
            self.stale += 1
        return self.stale >= self.rule.patience


class ExecutionBackend(abc.ABC):
    """How the engine maps restart seeds to :class:`ClusteringResult`.

    Implementations must preserve the determinism contract documented in
    the module docstring: results come back in seed order, truncated at
    the point the early-stopping rule fires on the ordered stream.
    """

    #: Identifier recorded in the winning result's ``extras``.
    name: str = "backend"

    @abc.abstractmethod
    def run(
        self,
        clusterer: UncertainClusterer,
        dataset: UncertainDataset,
        seeds: Sequence[int],
        early_stopping: Optional[EarlyStopping] = None,
    ) -> List[ClusteringResult]:
        """Fit one restart per seed; return results in seed order."""


def _run_serially(
    clusterer: UncertainClusterer,
    dataset: UncertainDataset,
    seeds: Sequence[int],
    early_stopping: Optional[EarlyStopping],
) -> List[ClusteringResult]:
    clock = _StopClock(early_stopping)
    results: List[ClusteringResult] = []
    for seed in seeds:
        result = clusterer.fit(dataset, seed=seed)
        results.append(result)
        if clock.should_stop(result.objective):
            break
    return results


def _fit_chunk(
    clusterer: UncertainClusterer,
    dataset: UncertainDataset,
    seeds: Sequence[int],
) -> List[ClusteringResult]:
    """One pool task: fit a whole chunk of restarts in seed order."""
    return [clusterer.fit(dataset, seed=s) for s in seeds]


def _adaptive_chunk_size(
    results: Sequence[ClusteringResult], current: int = 1
) -> int:
    """Chunk length targeting ``ADAPTIVE_TARGET_SECONDS`` per pool task.

    The estimate comes from the measured on-line runtime of the latest
    completed chunk's fits — the latency the batching exists to
    amortize.  Zero/degenerate measurements (clock granularity) carry
    no magnitude information at all, so they *double* the chunk length
    rather than jumping to :data:`ADAPTIVE_MAX_BATCH`: a max-size chunk
    committed on a timer artifact over-schedules up to 64 restarts past
    an early-stopping decision, while geometric growth reaches the cap
    within ``log2(ADAPTIVE_MAX_BATCH)`` chunks on genuinely sub-
    resolution fits and keeps the over-commitment bounded by one
    doubling.
    """
    per_fit = sum(r.runtime_seconds for r in results) / max(1, len(results))
    if per_fit <= 0.0:
        return min(ADAPTIVE_MAX_BATCH, max(1, int(current)) * 2)
    return max(1, min(ADAPTIVE_MAX_BATCH, int(ADAPTIVE_TARGET_SECONDS / per_fit)))


def _pool_shape(
    n_jobs: int,
    n_seeds: int,
    batch_size: BatchSizeLike,
    early_stopping: Optional[EarlyStopping],
) -> Tuple[int, int]:
    """(workers, window) for one pool run.

    ``window`` counts chunks in flight.  Without early stopping every
    fixed-size chunk is submitted upfront (the executor keeps all
    workers busy); with early stopping — or with adaptive batching,
    whose chunk length is unknown until the first completion — the
    window narrows to ``workers`` so the work scheduled past a stop
    decision (or sized off the initial probe guess) stays bounded.
    """
    if batch_size == "auto":
        workers = min(n_jobs, n_seeds)
        return workers, workers
    n_chunks = (n_seeds + batch_size - 1) // batch_size
    workers = min(n_jobs, n_chunks)
    window = workers if early_stopping is not None else n_chunks
    return workers, window


def _drive_pool(
    submit: Callable[[List[int]], Future],
    seeds: Sequence[int],
    early_stopping: Optional[EarlyStopping],
    window: int,
    batch_size: BatchSizeLike = 1,
) -> List[ClusteringResult]:
    """Bounded-window pool driver with submission-order consumption.

    Seeds are submitted in chunks of ``batch_size`` (one pool task fits
    a whole chunk, amortizing per-task overhead for sub-ms fits).  At
    most ``window`` chunks are in flight; completions are consumed
    strictly in submission order, restart by restart, so the
    early-stopping decision — and hence the returned prefix — cannot
    depend on pool scheduling *or* on the chunking.  Once the rule
    fires, the result list is truncated at the firing restart (a chunk's
    surplus restarts are discarded), queued-but-unstarted chunks are
    cancelled and anything already running is discarded — identical to
    the unbatched prefix.

    ``batch_size="auto"`` starts with single-seed probe chunks; the
    first completed chunk with a *measurable* per-fit latency sizes
    every chunk submitted afterwards via :func:`_adaptive_chunk_size`,
    while sub-timer-resolution completions merely double the length
    (bounding the restarts over-committed past an early-stopping
    decision).  Chunk boundaries are invisible to the submission-order
    consumer, so the adaptive policy returns the exact ``batch_size=1``
    prefix.

    Callers pass ``window=n_chunks`` when no early stopping is active
    (everything is submitted upfront and the executor keeps all workers
    busy); the narrow ``window=workers`` is only worth its head-of-line
    submission gap when it bounds the work wasted past a stop decision
    or scheduled before the adaptive chunk length settles.
    """
    seeds = list(seeds)
    adaptive = batch_size == "auto"
    chunk_len = 1 if adaptive else int(batch_size)
    clock = _StopClock(early_stopping)
    results: List[ClusteringResult] = []
    in_flight: deque[Future] = deque()
    next_pos = 0

    def refill() -> None:
        nonlocal next_pos
        while next_pos < len(seeds) and len(in_flight) < window:
            chunk = seeds[next_pos : next_pos + chunk_len]
            next_pos += len(chunk)
            in_flight.append(submit(chunk))

    refill()
    while in_flight:
        chunk_results = in_flight.popleft().result()
        if adaptive:
            # A measurable completion (in submission order) fixes the
            # chunk length for every seed not yet submitted; sub-timer-
            # resolution chunks keep the policy live, growing the length
            # geometrically until a positive latency lands or the cap
            # is reached.
            measured = sum(r.runtime_seconds for r in chunk_results) > 0.0
            chunk_len = max(
                chunk_len, _adaptive_chunk_size(chunk_results, chunk_len)
            )
            adaptive = not measured and chunk_len < ADAPTIVE_MAX_BATCH
        stopped = False
        for result in chunk_results:
            results.append(result)
            if clock.should_stop(result.objective):
                stopped = True
                break
        if stopped:
            for future in in_flight:
                future.cancel()
            break
        refill()
    return results


class SerialBackend(ExecutionBackend):
    """Sequential in-process execution — the reference semantics."""

    name = "serial"

    def run(self, clusterer, dataset, seeds, early_stopping=None):
        return _run_serially(clusterer, dataset, seeds, early_stopping)


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution over the shared address space.

    Nothing is serialized: every worker thread calls
    ``clusterer.fit(dataset, seed)`` on the *same* objects, reading the
    shared moment matrices and (for sample-based algorithms) the pinned
    sample tensor in place.  Fits are instance-state-free, and NumPy
    releases the GIL inside its kernels, so moment-based algorithms
    scale with cores while Python-loop-heavy fits degrade gracefully to
    roughly serial speed.
    """

    name = "threads"

    def __init__(self, n_jobs: int, batch_size: BatchSizeLike = 1):
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self.batch_size = validate_batch_size(batch_size)

    def run(self, clusterer, dataset, seeds, early_stopping=None):
        if self.n_jobs == 1 or len(seeds) == 1:
            return _run_serially(clusterer, dataset, seeds, early_stopping)
        workers, window = _pool_shape(
            self.n_jobs, len(seeds), self.batch_size, early_stopping
        )
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return _drive_pool(
                lambda chunk: pool.submit(_fit_chunk, clusterer, dataset, chunk),
                seeds,
                early_stopping,
                window=window,
                batch_size=self.batch_size,
            )


# ----------------------------------------------------------------------
# Shared-memory plumbing for the process backend
# ----------------------------------------------------------------------
#: (shm name, shape, dtype string) — everything a worker needs to attach.
_ShmSpec = Tuple[str, Tuple[int, ...], str]


class _SharedNDArray:
    """An ndarray published once in a :class:`SharedMemory` block."""

    def __init__(self, array: np.ndarray):
        array = np.ascontiguousarray(array)
        self.shape = array.shape
        self.dtype = array.dtype.str
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self.shm.buf)
        view[...] = array

    @property
    def spec(self) -> _ShmSpec:
        return (self.shm.name, self.shape, self.dtype)

    def destroy(self) -> None:
        """Close and unlink the block (idempotent)."""
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # already unlinked
            pass


def _attach_shared(spec: _ShmSpec) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Worker-side attach: a read-only ndarray view over the named block.

    The parent owns the block's lifecycle (``_SharedNDArray.destroy``),
    so on Python >= 3.13 the attach opts out of resource tracking.  On
    older versions pool workers share the parent's tracker process and
    its name registry is a set, so the attach-side registration dedupes
    against the parent's own and the parent's ``unlink`` retires the
    name exactly once — workers must *not* unregister manually, which
    would strip the parent's entry instead.
    """
    name, shape, dtype = spec
    try:  # Python >= 3.13
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    array.setflags(write=False)
    return shm, array


#: Per-worker-process state installed by :func:`_init_shared_worker`.
_WORKER_STATE: Dict[str, object] = {}


def _init_shared_worker(payload: Dict[str, object]) -> None:
    """Pool initializer: rebuild the dataset/clusterer around shared blocks.

    Runs once per worker process.  The pickled parts are the light ones
    (hyperparameters, distribution objects); every large array — moment
    matrices and the sample tensor — arrives as a shared-memory spec and
    is attached, not copied.
    """
    shms = []
    views = {}
    for key, spec in payload["moments"].items():
        shm, view = _attach_shared(spec)
        shms.append(shm)
        views[key] = view
    objects, labels = pickle.loads(payload["dataset"])
    dataset = UncertainDataset._from_shared_moments(
        objects, labels, views["mu"], views["mu2"], views["sigma2"]
    )
    clusterer = pickle.loads(payload["clusterer"])
    if payload["sample"] is not None:
        shm, tensor = _attach_shared(payload["sample"])
        shms.append(shm)
        clusterer.sample_cache = tensor
    if payload.get("pairwise") is not None:
        shm, matrix = _attach_shared(payload["pairwise"])
        shms.append(shm)
        clusterer.pairwise_ed_cache = matrix
    # Keep the SharedMemory handles referenced for the process lifetime;
    # dropping them would invalidate the array views' buffers.
    _WORKER_STATE["shms"] = shms
    _WORKER_STATE["clusterer"] = clusterer
    _WORKER_STATE["dataset"] = dataset


def _fit_shared_chunk(seeds: Sequence[int]) -> List[ClusteringResult]:
    return _fit_chunk(
        _WORKER_STATE["clusterer"], _WORKER_STATE["dataset"], seeds
    )


class SharedBlockRegistry:
    """Interns shared-memory blocks for arrays reused across run-sets.

    One engine run-set publishes its big arrays and unlinks them when it
    finishes.  A *sweep* over many run-sets on one dataset would pay
    that publication once per cell; this registry, activated with
    :func:`shared_block_registry`, lets the process backend reuse a
    block for the *same ndarray object* across runs — the dataset's
    moment matrices and the cached ``ÊD`` matrix are stable read-only
    objects, so identity is the correct cache key.  Per-cell arrays
    (sample tensors) are never interned: retaining every cell's tensor
    until the registry closes would grow without bound.

    All interned blocks are unlinked when the context exits, including
    on error; runs inside the context must therefore never outlive it.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[np.ndarray, _SharedNDArray]] = {}

    def intern(self, array: np.ndarray) -> _SharedNDArray:
        """The block publishing ``array``, created on first sight."""
        key = id(array)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is array:
            return entry[1]
        block = _SharedNDArray(array)
        self._entries[key] = (array, block)
        return block

    def destroy_all(self) -> None:
        entries = list(self._entries.values())
        self._entries.clear()
        for _, block in entries:
            block.destroy()


#: The registry runs inside ``shared_block_registry()`` consult, if any.
_ACTIVE_BLOCK_REGISTRY: Optional[SharedBlockRegistry] = None


@contextmanager
def shared_block_registry() -> "Iterator[SharedBlockRegistry]":
    """Scope within which process-backend runs share stable blocks.

    Used by the sweep orchestrator around each dataset group: every
    ``processes`` (or ``auto``-dispatched) run-set inside the scope
    publishes the group's moment matrices and ``ÊD`` matrix to shared
    memory **once**, instead of once per cell.  Nesting is not
    supported — the sweep's group loop is strictly sequential.
    """
    global _ACTIVE_BLOCK_REGISTRY
    if _ACTIVE_BLOCK_REGISTRY is not None:
        raise InvalidParameterError(
            "shared_block_registry scopes cannot be nested"
        )
    registry = SharedBlockRegistry()
    _ACTIVE_BLOCK_REGISTRY = registry
    try:
        yield registry
    finally:
        _ACTIVE_BLOCK_REGISTRY = None
        registry.destroy_all()


class ProcessBackend(ExecutionBackend):
    """Process-pool execution over shared-memory tensors.

    Publication happens once per ``run``: the dataset's ``(n, m)``
    moment matrices, the engine-pinned ``(n, S, m)`` sample tensor and
    the ``(n, n)`` pairwise ``ÊD`` matrix (for ``wants_pairwise_ed``
    algorithms, whether engine-injected or fixed at construction) go
    into shared-memory blocks; workers attach by name.  The clusterer is
    pickled with every big array stripped, so neither the tensor nor the
    matrix is ever serialized (the backend tests assert this with pickle
    spies).  All blocks are unlinked when the run finishes, including
    when a worker crashes.
    """

    name = "processes"

    def __init__(self, n_jobs: int, batch_size: BatchSizeLike = 1):
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self.batch_size = validate_batch_size(batch_size)
        #: Specs of the most recent run's blocks — exposed so tests can
        #: verify they were unlinked.
        self.last_shared_specs: List[_ShmSpec] = []

    def run(self, clusterer, dataset, seeds, early_stopping=None):
        if self.n_jobs == 1 or len(seeds) == 1:
            return _run_serially(clusterer, dataset, seeds, early_stopping)
        registry = _ACTIVE_BLOCK_REGISTRY
        #: Blocks this run created and must unlink itself; registry
        #: blocks outlive the run and are unlinked by the registry scope.
        owned: List[_SharedNDArray] = []
        specs: List[_ShmSpec] = []

        def publish(array: np.ndarray, stable: bool) -> _SharedNDArray:
            """Publish ``array``; intern only stable per-dataset arrays."""
            if stable and registry is not None:
                block = registry.intern(array)
            else:
                block = _SharedNDArray(array)
                owned.append(block)
            specs.append(block.spec)
            return block

        try:
            moments = {
                "mu": publish(dataset.mu_matrix, stable=True),
                "mu2": publish(dataset.mu2_matrix, stable=True),
                "sigma2": publish(dataset.sigma2_matrix, stable=True),
            }
            tensor = getattr(clusterer, "sample_cache", None)
            sample_block = None
            if tensor is not None:
                # Per-cell tensors: never interned (fresh draw per run-set).
                sample_block = publish(np.asarray(tensor), stable=False)
            # The pairwise ÊD plane: engine-injected cache or the
            # clusterer's own constructor matrix — published by name,
            # and stripped below so it is never pickled.
            strip = ["sample_cache"]
            pairwise_block = None
            if getattr(clusterer, "wants_pairwise_ed", False):
                matrix = getattr(clusterer, "pairwise_ed_cache", None)
                if matrix is None:
                    matrix = getattr(clusterer, "precomputed", None)
                if matrix is not None:
                    # Intern on the matrix object itself (not an
                    # ``asarray`` view, whose identity would differ per
                    # run and defeat the registry).
                    pairwise_block = publish(matrix, stable=True)
                    strip += ["pairwise_ed_cache", "precomputed"]
            payload = {
                "clusterer": self._pickle_without(clusterer, strip),
                "dataset": pickle.dumps(dataset._moment_free_state()),
                "moments": {key: blk.spec for key, blk in moments.items()},
                "sample": None if sample_block is None else sample_block.spec,
                "pairwise": (
                    None if pairwise_block is None else pairwise_block.spec
                ),
            }
            self.last_shared_specs = specs
            workers, window = _pool_shape(
                self.n_jobs, len(seeds), self.batch_size, early_stopping
            )
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_shared_worker,
                initargs=(payload,),
            ) as pool:
                return _drive_pool(
                    lambda chunk: pool.submit(_fit_shared_chunk, chunk),
                    seeds,
                    early_stopping,
                    window=window,
                    batch_size=self.batch_size,
                )
        finally:
            for block in owned:
                block.destroy()

    @staticmethod
    def _pickle_without(
        clusterer: UncertainClusterer, attrs: Sequence[str]
    ) -> bytes:
        """Pickle the clusterer with the named big arrays detached."""
        stripped = {}
        for attr in attrs:
            value = getattr(clusterer, attr, None)
            if value is not None:
                stripped[attr] = value
                setattr(clusterer, attr, None)
        try:
            return pickle.dumps(clusterer)
        finally:
            for attr, value in stripped.items():
                setattr(clusterer, attr, value)


class AutoBackend(ExecutionBackend):
    """Per-algorithm-family backend dispatch, resolved per ``run``.

    The right execution backend depends on the algorithm family, not the
    engine call site: moment/tensor kernels scale on threads (NumPy
    releases the GIL), interpreter-bound relocation loops need the
    process pool, and sub-ms fits are fastest serial.  ``auto`` encodes
    that routing table so callers can stop choosing:

    * ``n_jobs == 1`` or a single restart → **serial** (nothing to
      parallelize);
    * ``n * m <= AUTO_SERIAL_ELEMENTS`` → **serial** (pool overhead
      dominates sub-ms fits);
    * otherwise the clusterer's declared ``preferred_backend`` family —
      ``threads`` (the default) or ``processes`` (UCPC, UK-medoids,
      UAHC).

    Every candidate backend is result-identical for fixed seeds, so the
    dispatch only ever changes wall-clock time; the backend-invariance
    tests cover ``auto`` alongside the fixed choices.
    """

    name = "auto"

    def __init__(self, n_jobs: int, batch_size: BatchSizeLike = 1):
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self.batch_size = validate_batch_size(batch_size)
        #: Name of the backend the most recent ``run`` dispatched to.
        self.last_resolved: Optional[str] = None

    def resolve(
        self,
        clusterer: UncertainClusterer,
        dataset: UncertainDataset,
        n_restarts: int,
    ) -> ExecutionBackend:
        """The concrete backend one run-set dispatches to."""
        n_samples = getattr(clusterer, "n_samples", None)
        per_fit_elements = (
            len(dataset) * dataset.dim * max(1, int(n_samples or 1))
        )
        if self.n_jobs == 1 or n_restarts <= 1:
            choice = "serial"
        elif per_fit_elements <= AUTO_SERIAL_ELEMENTS:
            choice = "serial"
        else:
            choice = getattr(clusterer, "preferred_backend", "threads")
            if choice not in ("threads", "processes"):
                choice = "threads"
        self.last_resolved = choice
        return get_backend(choice, self.n_jobs, batch_size=self.batch_size)

    def run(self, clusterer, dataset, seeds, early_stopping=None):
        backend = self.resolve(clusterer, dataset, len(seeds))
        return backend.run(clusterer, dataset, seeds, early_stopping)


#: A backend argument: a name, an instance, or None (= legacy mapping).
BackendLike = Union[str, ExecutionBackend, None]


def get_backend(
    backend: BackendLike, n_jobs: int = 1, batch_size: BatchSizeLike = 1
) -> ExecutionBackend:
    """Resolve a backend spec to an :class:`ExecutionBackend` instance.

    ``None`` keeps the runner's historical behavior: serial for
    ``n_jobs == 1``, the process pool otherwise.  ``batch_size`` sets
    the in-worker restart chunking of the pool backends — a fixed chunk
    length or ``"auto"`` for latency-adaptive sizing (ignored when an
    already-constructed instance is passed, which keeps its own).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "serial" if n_jobs == 1 else "processes"
    if backend == "serial":
        return SerialBackend()
    if backend == "threads":
        return ThreadBackend(n_jobs, batch_size=batch_size)
    if backend == "processes":
        return ProcessBackend(n_jobs, batch_size=batch_size)
    if backend == "auto":
        return AutoBackend(n_jobs, batch_size=batch_size)
    raise InvalidParameterError(
        f"unknown backend {backend!r}; known: {BACKEND_NAMES}"
    )
