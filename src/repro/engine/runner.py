"""Multi-restart execution of any :class:`UncertainClusterer`.

K-means-style objectives are non-convex, so production deployments run
``n_init`` random restarts and keep the best local optimum — sklearn's
``n_init`` idiom lifted to uncertain clustering.  The runner factors the
expensive, restart-invariant work out of the loop:

* the **moment cache** is already shared for free — every restart reads
  the same :class:`~repro.objects.dataset.UncertainDataset`, whose
  stacked moment matrices are computed once at construction;
* the **sample cache** is drawn once via
  :meth:`UncertainDataset.sample_tensor` and injected into sample-based
  algorithms (those exposing ``n_samples``/``sample_cache``), so ``S``
  Monte-Carlo draws per object happen once instead of once per restart;
* the **pairwise-distance plane** is computed once via
  :meth:`UncertainDataset.pairwise_ed` and injected into algorithms
  declaring ``wants_pairwise_ed`` (UK-medoids), so the O(n^2 m) ``ÊD``
  matrix — an *off-line* phase in the paper's accounting, excluded from
  every reported runtime — is never rebuilt per restart.

Restarts are independent, so they execute through a pluggable
:class:`~repro.engine.backends.ExecutionBackend` — serial, thread pool
(nothing serialized; NumPy kernels release the GIL) or process pool
(moment matrices and the sample tensor published once via shared
memory).  Per-restart seeds are spawned up front from one seed
sequence and completions are consumed in submission order, making
results identical for every backend — including with engine-level
early stopping enabled.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import ClusteringResult, UncertainClusterer
from repro.engine.backends import (
    BackendLike,
    BatchSizeLike,
    EarlyStopping,
    get_backend,
    validate_batch_size,
)
from repro.engine.distances import pinned_pairwise_ed, resolve_pairwise_ed
from repro.exceptions import InvalidParameterError, warn_convergence
from repro.objects.dataset import UncertainDataset


@dataclass(frozen=True)
class RestartRecord:
    """Summary of one restart, kept in the winner's ``extras``."""

    restart: int
    seed: int
    objective: float
    n_iterations: int
    converged: bool
    runtime_seconds: float


def _spawn_seeds(seed: SeedLike, count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from any seed form.

    Prefix-stable: the first ``k`` seeds of a ``count``-sized spawn
    equal a ``k``-sized spawn (SeedSequence children are indexed;
    Generator draws are sequential), so callers may derive extra seeds
    lazily without perturbing the ones already handed out.
    """
    if isinstance(seed, np.random.Generator):
        return [int(s) for s in seed.integers(0, 2**63 - 1, size=count)]
    sequence = np.random.SeedSequence(seed)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
        for child in sequence.spawn(count)
    ]


class MultiRestartRunner:
    """Best-of-``n_init`` execution of a configured clusterer.

    Parameters
    ----------
    clusterer:
        Any :class:`UncertainClusterer`; reused as-is for every restart.
    n_init:
        Number of random restarts (each gets an independent seed).
    n_jobs:
        Worker count for the parallel backends (threads/processes);
        restarts stay seeded identically and completions are consumed
        in submission order, so the result does not depend on
        ``n_jobs``.
    share_samples:
        Draw one :meth:`UncertainDataset.sample_tensor` and share it
        across restarts when the algorithm is sample-based.  Restarts
        then differ only in initialization, mirroring how the paper
        fixes the sample sets while varying seeds.
    share_pairwise:
        Compute one :meth:`UncertainDataset.pairwise_ed` matrix and
        share it across restarts when the algorithm declares
        ``wants_pairwise_ed``.  The matrix is deterministic, so this
        never changes results — disabling it (benchmarks, regression
        tests) merely restores the pre-plane per-restart recompute.
    backend:
        ``"serial"``, ``"threads"``, ``"processes"``, ``"auto"``
        (per-algorithm-family dispatch), an
        :class:`~repro.engine.backends.ExecutionBackend` instance, or
        ``None`` for the historical mapping (serial when ``n_jobs ==
        1``, the process pool otherwise).  All backends return
        bit-identical results for fixed seeds.
    batch_size:
        Restarts submitted per pool task (in-worker batching):
        completions are still consumed restart-by-restart in submission
        order, so results are identical for every ``batch_size`` — the
        knob only amortizes pool overhead for sub-ms fits.  ``"auto"``
        sizes the chunks from the measured per-fit latency of the first
        completed task (see :mod:`repro.engine.backends`), still
        bit-identical to ``batch_size=1``.
    early_stopping:
        ``None`` (run every restart), an
        :class:`~repro.engine.backends.EarlyStopping` rule, or an int
        shorthand for ``EarlyStopping(patience=...)``.  Applied by
        :meth:`run` only — :meth:`run_all` is a measurement surface and
        always executes every requested restart.
    """

    def __init__(
        self,
        clusterer: UncertainClusterer,
        n_init: int = 10,
        n_jobs: int = 1,
        share_samples: bool = True,
        share_pairwise: bool = True,
        backend: BackendLike = None,
        early_stopping: Optional[EarlyStopping | int] = None,
        batch_size: BatchSizeLike = 1,
    ):
        if n_init < 1:
            raise InvalidParameterError(f"n_init must be >= 1, got {n_init}")
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.clusterer = clusterer
        self.n_init = int(n_init)
        self.n_jobs = int(n_jobs)
        self.share_samples = bool(share_samples)
        self.share_pairwise = bool(share_pairwise)
        self.batch_size = validate_batch_size(batch_size)
        self.backend = get_backend(backend, self.n_jobs, batch_size=self.batch_size)
        if isinstance(early_stopping, int):
            early_stopping = EarlyStopping(patience=early_stopping)
        self.early_stopping = early_stopping
        #: Whether the most recent run injected a shared ÊD matrix —
        #: provenance for the ``shared_pairwise_ed`` extras flag.
        self._pairwise_injected = False

    # ------------------------------------------------------------------
    def run(
        self,
        dataset: UncertainDataset,
        seed: SeedLike = None,
        *,
        pairwise_ed: Optional[np.ndarray] = None,
    ) -> ClusteringResult:
        """Run every restart and return the best-objective result.

        The winner's ``extras`` gain ``n_init``, ``best_restart``,
        ``engine_jobs``, ``engine_backend``, ``shared_samples``,
        ``restarts_executed``, ``early_stopped`` and
        ``restart_history`` (one dict per executed restart); its
        ``objective_history`` is preserved from the winning run.  Lower
        objective wins; NaN objectives (methods without one) lose to
        any finite objective and fall back to the first restart.

        With ``early_stopping`` set, scheduling stops once the best
        objective has not improved for ``patience`` completed restarts
        (evaluated in seed order, so the outcome is backend-invariant);
        ``restart_history`` then covers only the executed prefix.

        ``pairwise_ed`` optionally supplies the shared ``ÊD`` matrix for
        ``wants_pairwise_ed`` algorithms (callers that already hold it,
        e.g. the evaluation protocol's scoring matrix); by default the
        dataset's cached :meth:`~repro.objects.dataset.UncertainDataset.
        pairwise_ed` is used.  A matrix the clusterer itself carries
        (a pinned ``pairwise_ed_cache`` or constructor ``precomputed``)
        is the most local intent and takes precedence — ``pairwise_ed``
        is ignored then.
        """
        if self.n_init > 1 and not getattr(self.clusterer, "has_objective", True):
            warnings.warn(
                f"{type(self.clusterer).__name__} produces no objective; "
                f"restarts cannot be ranked and best-of-{self.n_init} will "
                "return the first restart at n_init times the cost",
                UserWarning,
                stacklevel=2,
            )
        need_sample = self._needs_sample_cache()
        restart_seeds, sample_seed = self._derive_seeds(seed, need_sample)
        results = self._run_with_cache(
            dataset, restart_seeds, sample_seed, need_sample,
            early_stopping=self.early_stopping,
            pairwise_ed=pairwise_ed,
        )
        return self._select_best(results, restart_seeds, self._shared(need_sample))

    def run_all(
        self,
        dataset: UncertainDataset,
        seed: SeedLike = None,
        *,
        seeds: Optional[Sequence[SeedLike]] = None,
        pairwise_ed: Optional[np.ndarray] = None,
    ) -> List[ClusteringResult]:
        """Run every restart and return *all* results, in restart order.

        This is the engine entry point for callers that aggregate over
        runs instead of keeping the best — the experiment runners
        average metrics over ``n_runs`` seeded fits while still sharing
        the dataset's moment matrices and one sample tensor.

        Parameters
        ----------
        seed:
            Seeds both the derived restart seeds and (for sample-based
            algorithms) the shared tensor draw.
        seeds:
            Explicit per-restart seeds; overrides ``n_init`` (one
            restart per entry) and leaves ``seed`` as the source of the
            shared-tensor draw only.  Restarts are fitted exactly as
            ``clusterer.fit(dataset, seed=seeds[i])`` would, so a caller
            can reproduce (and test against) the direct per-fit path.

        Notes
        -----
        ``run_all`` executes through the configured backend but ignores
        ``early_stopping``: callers aggregate over *all* runs, so
        truncating the series would silently change the measurement.
        """
        need_sample = self._needs_sample_cache()
        if seeds is None:
            restart_seeds, sample_seed = self._derive_seeds(seed, need_sample)
        else:
            restart_seeds = list(seeds)
            if not restart_seeds:
                raise InvalidParameterError("seeds must not be empty")
            # ``seed`` may legitimately be None here (fresh entropy for
            # the shared draw) — ``need_sample`` alone decides whether
            # the tensor is drawn.
            sample_seed = seed
        return self._run_with_cache(
            dataset, restart_seeds, sample_seed, need_sample,
            pairwise_ed=pairwise_ed,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _needs_sample_cache(self) -> bool:
        """Whether a shared tensor must be drawn for this clusterer."""
        if not self.share_samples:
            return False
        if getattr(self.clusterer, "sample_cache", None) is not None:
            # The caller already pinned a tensor; nothing to draw.
            return False
        return (
            getattr(self.clusterer, "n_samples", None) is not None
            and hasattr(self.clusterer, "sample_cache")
        )

    def _shared(self, need_sample: bool) -> bool:
        """Whether restarts read one shared tensor (drawn or pinned)."""
        return (
            need_sample
            or getattr(self.clusterer, "sample_cache", None) is not None
        )

    def _pairwise_shared(self) -> bool:
        """Whether restarts read one shared ``ÊD`` matrix.

        Evaluated after the run (the engine-injected cache is restored
        by then): True when the plane injected a matrix, or when the
        caller pinned/fixed one themselves.
        """
        if not getattr(self.clusterer, "wants_pairwise_ed", False):
            return False
        if self._pairwise_injected:
            return True
        if getattr(self.clusterer, "pairwise_ed_cache", None) is not None:
            return True
        return getattr(self.clusterer, "precomputed", None) is not None

    def _derive_seeds(
        self, seed: SeedLike, need_sample: bool
    ) -> tuple[List[int], Optional[int]]:
        """Restart seeds plus (lazily) one shared-tensor seed.

        Restart seeds come first and are the same whether or not a
        sample seed is needed, so moment-based algorithms consume
        exactly the seeds a direct per-fit loop would — the experiment
        routing equivalence in ``tests/test_engine.py`` pins this.
        """
        if isinstance(seed, np.random.Generator):
            restart = _spawn_seeds(seed, self.n_init)
            sample = _spawn_seeds(seed, 1)[0] if need_sample else None
        else:
            total = self.n_init + (1 if need_sample else 0)
            seeds = _spawn_seeds(seed, total)
            restart = seeds[: self.n_init]
            sample = seeds[-1] if need_sample else None
        return restart, sample

    def _run_with_cache(
        self,
        dataset: UncertainDataset,
        restart_seeds: Sequence[SeedLike],
        sample_seed: Optional[SeedLike],
        need_sample: bool,
        early_stopping: Optional[EarlyStopping] = None,
        pairwise_ed: Optional[np.ndarray] = None,
    ) -> List[ClusteringResult]:
        """Execute restarts with the shared caches injected/restored.

        ``need_sample`` (not ``sample_seed``) gates the draw: a None
        seed with ``need_sample`` still draws one shared tensor, from
        fresh entropy.  The pairwise ``ÊD`` plane is injected alongside
        when the algorithm declares ``wants_pairwise_ed`` (and no matrix
        is already pinned or fixed at construction).
        """
        cache: Optional[np.ndarray] = None
        ed_matrix: Optional[np.ndarray] = None
        if need_sample:
            n_samples = int(self.clusterer.n_samples)
            cache = dataset.sample_tensor(n_samples, sample_seed)
            self.clusterer.sample_cache = cache
        # ``share_pairwise=False`` disables only the *automatic*
        # dataset-cache injection; an explicitly passed matrix is an
        # explicit instruction and is honored regardless.  Either way
        # the clusterer's own matrix (pinned cache or constructor
        # ``precomputed``) always wins — resolve returns None then.
        self._pairwise_injected = False
        if self.share_pairwise or pairwise_ed is not None:
            ed_matrix = resolve_pairwise_ed(self.clusterer, dataset, pairwise_ed)
            if ed_matrix is not None:
                self.clusterer.pairwise_ed_cache = ed_matrix
                self._pairwise_injected = True
        try:
            return self.backend.run(
                self.clusterer, dataset, restart_seeds,
                early_stopping=early_stopping,
            )
        finally:
            if cache is not None:
                self.clusterer.sample_cache = None
            if ed_matrix is not None:
                self.clusterer.pairwise_ed_cache = None

    def _select_best(
        self,
        results: List[ClusteringResult],
        restart_seeds: Sequence[int],
        shared: bool,
    ) -> ClusteringResult:
        objectives = np.array([r.objective for r in results], dtype=np.float64)
        comparable = np.where(np.isnan(objectives), np.inf, objectives)
        best_idx = int(np.argmin(comparable)) if np.isfinite(comparable).any() else 0
        best = results[best_idx]
        history = [
            RestartRecord(
                restart=i,
                seed=int(restart_seeds[i]),
                objective=float(r.objective),
                n_iterations=r.n_iterations,
                converged=r.converged,
                runtime_seconds=r.runtime_seconds,
            )
            for i, r in enumerate(results)
        ]
        n_unconverged = sum(1 for r in results if not r.converged)
        if n_unconverged:
            # Per-fit warnings raised inside pool workers are swallowed
            # by the ``processes`` backend (they fire in the child);
            # one parent-side aggregate keeps non-convergence visible
            # regardless of backend, and the count below makes it
            # machine-readable for sweep reports.
            warn_convergence(
                f"{n_unconverged} of {len(results)} restarts of "
                f"{self.clusterer.name} hit their iteration cap before "
                "convergence"
            )
        extras = dict(best.extras)
        extras.update(
            n_init=self.n_init,
            best_restart=best_idx,
            n_unconverged=n_unconverged,
            engine_jobs=self.n_jobs,
            engine_backend=self.backend.name,
            # A pre-constructed backend instance keeps its own chunking
            # (get_backend ignores the runner's batch_size for it).
            engine_batch_size=getattr(self.backend, "batch_size", self.batch_size),
            shared_samples=shared,
            shared_pairwise_ed=self._pairwise_shared(),
            restarts_executed=len(results),
            early_stopped=len(results) < self.n_init,
            restart_history=[asdict(record) for record in history],
            total_runtime_seconds=float(
                sum(r.runtime_seconds for r in results)
            ),
        )
        return ClusteringResult(
            labels=best.labels,
            objective=best.objective,
            n_iterations=best.n_iterations,
            converged=best.converged,
            runtime_seconds=best.runtime_seconds,
            objective_history=list(best.objective_history),
            extras=extras,
        )


def fit_runs(
    clusterer: UncertainClusterer,
    dataset: UncertainDataset,
    seeds: Sequence[SeedLike],
    *,
    engine: bool = True,
    sample_seed: SeedLike = None,
    share_samples: Optional[bool] = None,
    n_jobs: int = 1,
    backend: BackendLike = None,
    batch_size: BatchSizeLike = 1,
    pairwise_ed: Optional[np.ndarray] = None,
) -> List[ClusteringResult]:
    """Fit ``clusterer`` once per seed, optionally through the engine.

    The uniform multi-run entry point of the experiment runners: with
    ``engine=True`` (default) the fits execute through
    :meth:`MultiRestartRunner.run_all`, sharing the dataset's moment
    matrices, — for sample-based algorithms — one sample tensor drawn
    from ``sample_seed``, and — for ``wants_pairwise_ed`` algorithms —
    one pairwise ``ÊD`` matrix (``pairwise_ed``, or the dataset's cached
    one); with ``engine=False`` each seed is fitted directly (the
    pre-engine idiom, kept as the reference path for the
    routing-equivalence tests).

    ``share_samples=None`` resolves per algorithm: algorithms whose
    only randomness is the Monte-Carlo draw
    (``sample_randomness_only``, i.e. FDBSCAN/FOPTICS) draw per-run
    tensors from their own run seeds — sharing one tensor would make
    every "run" the same realization, degrading a multi-run average to
    a single measurement — while everything else shares.  With that
    resolution the engine path is fit-for-fit identical to the direct
    path for both the moment-based *and* the sample-deterministic
    algorithms.

    ``backend``/``batch_size`` select the execution backend and the
    in-worker restart chunking for the series (see
    :class:`MultiRestartRunner`); every backend and every chunking is
    result-identical for fixed seeds, so the choice only affects
    wall-clock time.
    """
    seeds = list(seeds)
    if not engine:
        if pairwise_ed is None:
            return [clusterer.fit(dataset, seed=s) for s in seeds]
        # The reference path keeps its per-fit recompute semantics, but
        # an *explicit* matrix must mean the same thing in both modes —
        # otherwise engine=False stops being the bit-identical
        # routing-equivalence baseline for callers handing one in.
        with pinned_pairwise_ed(
            clusterer, resolve_pairwise_ed(clusterer, dataset, pairwise_ed)
        ):
            return [clusterer.fit(dataset, seed=s) for s in seeds]
    if share_samples is None:
        share_samples = not getattr(clusterer, "sample_randomness_only", False)
    runner = MultiRestartRunner(
        clusterer,
        n_init=len(seeds),
        n_jobs=n_jobs,
        share_samples=share_samples,
        backend=backend,
        batch_size=batch_size,
    )
    return runner.run_all(
        dataset, seed=sample_seed, seeds=seeds, pairwise_ed=pairwise_ed
    )
