"""Multi-restart execution of any :class:`UncertainClusterer`.

K-means-style objectives are non-convex, so production deployments run
``n_init`` random restarts and keep the best local optimum — sklearn's
``n_init`` idiom lifted to uncertain clustering.  The runner factors the
expensive, restart-invariant work out of the loop:

* the **moment cache** is already shared for free — every restart reads
  the same :class:`~repro.objects.dataset.UncertainDataset`, whose
  stacked moment matrices are computed once at construction;
* the **sample cache** is drawn once via
  :meth:`UncertainDataset.sample_tensor` and injected into sample-based
  algorithms (those exposing ``n_samples``/``sample_cache``), so ``S``
  Monte-Carlo draws per object happen once instead of once per restart.

Restarts are independent, so with ``n_jobs > 1`` they execute in a
``concurrent.futures`` process pool; per-restart seeds are spawned up
front from one seed sequence, making results identical for sequential
and parallel execution.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import ClusteringResult, UncertainClusterer
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset


@dataclass(frozen=True)
class RestartRecord:
    """Summary of one restart, kept in the winner's ``extras``."""

    restart: int
    seed: int
    objective: float
    n_iterations: int
    converged: bool
    runtime_seconds: float


def _spawn_seeds(seed: SeedLike, count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from any seed form."""
    if isinstance(seed, np.random.Generator):
        return [int(s) for s in seed.integers(0, 2**63 - 1, size=count)]
    sequence = np.random.SeedSequence(seed)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
        for child in sequence.spawn(count)
    ]


def _fit_one(
    clusterer: UncertainClusterer, dataset: UncertainDataset, seed: int
) -> ClusteringResult:
    """Sequential-path entry point: one restart."""
    return clusterer.fit(dataset, seed=seed)


# Worker-process state: the clusterer (with any shared sample cache) and
# the dataset are pickled once per worker via the pool initializer, not
# once per restart — the sample tensor can be large.
_WORKER_STATE: dict = {}


def _init_worker(clusterer: UncertainClusterer, dataset: UncertainDataset) -> None:
    _WORKER_STATE["clusterer"] = clusterer
    _WORKER_STATE["dataset"] = dataset


def _fit_in_worker(seed: int) -> ClusteringResult:
    return _WORKER_STATE["clusterer"].fit(_WORKER_STATE["dataset"], seed=seed)


class MultiRestartRunner:
    """Best-of-``n_init`` execution of a configured clusterer.

    Parameters
    ----------
    clusterer:
        Any :class:`UncertainClusterer`; reused as-is for every restart.
    n_init:
        Number of random restarts (each gets an independent seed).
    n_jobs:
        1 runs restarts sequentially in-process; larger values use a
        process pool with that many workers (restarts stay seeded
        identically, so the result does not depend on ``n_jobs``).
    share_samples:
        Draw one :meth:`UncertainDataset.sample_tensor` and share it
        across restarts when the algorithm is sample-based.  Restarts
        then differ only in initialization, mirroring how the paper
        fixes the sample sets while varying seeds.
    """

    def __init__(
        self,
        clusterer: UncertainClusterer,
        n_init: int = 10,
        n_jobs: int = 1,
        share_samples: bool = True,
    ):
        if n_init < 1:
            raise InvalidParameterError(f"n_init must be >= 1, got {n_init}")
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        if n_init > 1 and not getattr(clusterer, "has_objective", True):
            warnings.warn(
                f"{type(clusterer).__name__} produces no objective; "
                f"restarts cannot be ranked and best-of-{n_init} will "
                "return the first restart at n_init times the cost",
                UserWarning,
                stacklevel=2,
            )
        self.clusterer = clusterer
        self.n_init = int(n_init)
        self.n_jobs = int(n_jobs)
        self.share_samples = bool(share_samples)

    # ------------------------------------------------------------------
    def run(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Run every restart and return the best-objective result.

        The winner's ``extras`` gain ``n_init``, ``best_restart``,
        ``engine_jobs``, ``shared_samples`` and ``restart_history`` (one
        dict per restart); its ``objective_history`` is preserved from
        the winning run.  Lower objective wins; NaN objectives (methods
        without one) lose to any finite objective and fall back to the
        first restart.
        """
        seeds = _spawn_seeds(seed, self.n_init + 1)
        sample_seed, restart_seeds = seeds[0], seeds[1:]
        pinned = getattr(self.clusterer, "sample_cache", None)
        if pinned is not None:
            # The caller already fixed the sample tensor; every restart
            # reads it as-is, so there is nothing to draw or restore.
            cache = None
        else:
            cache = self._build_sample_cache(dataset, sample_seed)
            if cache is not None:
                self.clusterer.sample_cache = cache
        try:
            results = self._execute(dataset, restart_seeds)
        finally:
            if cache is not None:
                self.clusterer.sample_cache = None
        shared = pinned is not None or cache is not None
        return self._select_best(results, restart_seeds, shared)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_sample_cache(
        self, dataset: UncertainDataset, seed: int
    ) -> Optional[np.ndarray]:
        """The shared ``(n, S, m)`` tensor, or None when inapplicable."""
        if not self.share_samples:
            return None
        n_samples = getattr(self.clusterer, "n_samples", None)
        if n_samples is None or not hasattr(self.clusterer, "sample_cache"):
            return None
        return dataset.sample_tensor(int(n_samples), seed)

    def _execute(
        self, dataset: UncertainDataset, restart_seeds: Sequence[int]
    ) -> List[ClusteringResult]:
        if self.n_jobs == 1 or self.n_init == 1:
            return [
                _fit_one(self.clusterer, dataset, s) for s in restart_seeds
            ]
        workers = min(self.n_jobs, self.n_init)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.clusterer, dataset),
        ) as pool:
            return list(pool.map(_fit_in_worker, restart_seeds))

    def _select_best(
        self,
        results: List[ClusteringResult],
        restart_seeds: Sequence[int],
        shared: bool,
    ) -> ClusteringResult:
        objectives = np.array([r.objective for r in results], dtype=np.float64)
        comparable = np.where(np.isnan(objectives), np.inf, objectives)
        best_idx = int(np.argmin(comparable)) if np.isfinite(comparable).any() else 0
        best = results[best_idx]
        history = [
            RestartRecord(
                restart=i,
                seed=int(restart_seeds[i]),
                objective=float(r.objective),
                n_iterations=r.n_iterations,
                converged=r.converged,
                runtime_seconds=r.runtime_seconds,
            )
            for i, r in enumerate(results)
        ]
        extras = dict(best.extras)
        extras.update(
            n_init=self.n_init,
            best_restart=best_idx,
            engine_jobs=self.n_jobs,
            shared_samples=shared,
            restart_history=[asdict(record) for record in history],
            total_runtime_seconds=float(
                sum(r.runtime_seconds for r in results)
            ),
        )
        return ClusteringResult(
            labels=best.labels,
            objective=best.objective,
            n_iterations=best.n_iterations,
            converged=best.converged,
            runtime_seconds=best.runtime_seconds,
            objective_history=list(best.objective_history),
            extras=extras,
        )
