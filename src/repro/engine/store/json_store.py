"""Directory-backed result store: a manifest plus one file per cell.

The original sweep store layout, unchanged::

    <store>/
      manifest.json           # schema + full grid description
      cells/
        <cell_id>.json

Every write is atomic *and durable* (write, fsync, rename, directory
fsync — :func:`repro.engine.store.base.atomic_write`), so a killed run
can only ever leave a stray ``*.tmp`` behind and a power loss cannot
leave a truncated file under a final name.  Human-inspectable and
rsync-able; for large grids and SQL-side aggregation, prefer
:class:`~repro.engine.store.sqlite_store.SqliteStore`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.engine.store.base import (
    ResultStore,
    atomic_write,
    canonical_dumps,
    cell_id,
    validate_payload,
)
from repro.exceptions import SweepStoreError


class JsonStore(ResultStore):
    """One JSON file per cell under a manifest-pinned directory."""

    backend = "json"
    MANIFEST = "manifest.json"

    def __init__(self, root: Union[str, Path]):
        super().__init__(root)
        self.cells_dir = self.path / "cells"

    # -- lifecycle -----------------------------------------------------
    def prepare(self, description: Dict[str, object], resume: bool) -> None:
        manifest = self.path / self.MANIFEST
        if manifest.exists():
            existing = self.read_manifest()
            self._verify_reusable(existing, description, resume)
        else:
            if self.path.exists() and any(self.path.iterdir()):
                raise SweepStoreError(
                    f"{self.path} exists, is not empty and has no sweep "
                    "manifest; refusing to write into it"
                )
            self.path.mkdir(parents=True, exist_ok=True)
            atomic_write(manifest, canonical_dumps(description))
        self.cells_dir.mkdir(parents=True, exist_ok=True)

    # -- manifest ------------------------------------------------------
    def read_manifest(self) -> Optional[Dict[str, object]]:
        manifest = self.path / self.MANIFEST
        if not manifest.exists():
            return None
        try:
            return json.loads(manifest.read_text())
        except (json.JSONDecodeError, OSError) as error:
            raise SweepStoreError(
                f"unreadable sweep manifest {manifest}: {error}"
            ) from error

    # -- cells ---------------------------------------------------------
    def cell_path(self, cell: str) -> Path:
        return self.cells_dir / f"{cell}.json"

    def has_cells(self) -> bool:
        return self.cells_dir.is_dir() and any(self.cells_dir.glob("*.json"))

    def load_cell(
        self, cell: str
    ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        path = self.cell_path(cell)
        if not path.exists():
            return None, None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None, "unreadable"
        problem = validate_payload(payload)
        if problem is not None:
            return None, problem
        return payload, None

    def write_payload(self, payload: Dict[str, object]) -> str:
        name = cell_id(payload["surface"], payload["group"], payload["cell"])
        atomic_write(self.cell_path(name), canonical_dumps(payload))
        return name

    def iter_cells(
        self,
    ) -> Iterator[Tuple[str, Optional[Dict[str, object]], Optional[str]]]:
        if not self.cells_dir.is_dir():
            return
        for path in sorted(self.cells_dir.glob("*.json")):
            payload, problem = self.load_cell(path.stem)
            yield path.stem, payload, problem
