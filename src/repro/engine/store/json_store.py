"""Directory-backed result store: a manifest plus one file per cell.

The original sweep store layout, unchanged::

    <store>/
      manifest.json           # schema + full grid description
      cells/
        <cell_id>.json

Every write is atomic *and durable* (write, fsync, rename, directory
fsync — :func:`repro.engine.store.base.atomic_write`), so a killed run
can only ever leave a stray ``*.tmp`` behind and a power loss cannot
leave a truncated file under a final name.  Human-inspectable and
rsync-able; for large grids and SQL-side aggregation, prefer
:class:`~repro.engine.store.sqlite_store.SqliteStore`.

Leases are claim files under ``<store>/leases/`` — one small JSON file
per leased cell.  A claim stages the complete record in a tmp file and
publishes it with ``os.link`` (atomic create-if-absent; the lease can
never be observed half-written), so the initial claim is a race-free
test-and-set even on shared filesystems.  Stealing an expired lease
first renames the old file away — only one stealer's rename can
succeed — then links the staged record in, losing cleanly to any
fresh claim that slipped between the two steps.  Lease files are
deleted on release and reaped after a finished sweep, so they never
participate in the store's tree-bytes identity.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.engine.store.base import (
    ResultStore,
    atomic_write,
    canonical_dumps,
    cell_id,
    validate_payload,
)
from repro.exceptions import SweepStoreError


class JsonStore(ResultStore):
    """One JSON file per cell under a manifest-pinned directory."""

    backend = "json"
    MANIFEST = "manifest.json"
    LEASE_SUFFIX = ".lease"

    def __init__(self, root: Union[str, Path]):
        super().__init__(root)
        self.cells_dir = self.path / "cells"
        self.leases_dir = self.path / "leases"

    # -- lifecycle -----------------------------------------------------
    def prepare(self, description: Dict[str, object], resume: bool) -> None:
        manifest = self.path / self.MANIFEST
        if manifest.exists():
            existing = self.read_manifest()
            self._verify_reusable(existing, description, resume)
        else:
            if self.path.exists() and any(self.path.iterdir()):
                raise SweepStoreError(
                    f"{self.path} exists, is not empty and has no sweep "
                    "manifest; refusing to write into it"
                )
            self.path.mkdir(parents=True, exist_ok=True)
            atomic_write(manifest, canonical_dumps(description))
        self.cells_dir.mkdir(parents=True, exist_ok=True)

    # -- manifest ------------------------------------------------------
    def read_manifest(self) -> Optional[Dict[str, object]]:
        manifest = self.path / self.MANIFEST
        if not manifest.exists():
            return None
        try:
            return json.loads(manifest.read_text())
        except (json.JSONDecodeError, OSError) as error:
            raise SweepStoreError(
                f"unreadable sweep manifest {manifest}: {error}"
            ) from error

    # -- cells ---------------------------------------------------------
    def cell_path(self, cell: str) -> Path:
        return self.cells_dir / f"{cell}.json"

    def has_cells(self) -> bool:
        return self.cells_dir.is_dir() and any(self.cells_dir.glob("*.json"))

    def load_cell(
        self, cell: str
    ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        path = self.cell_path(cell)
        if not path.exists():
            return None, None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None, "unreadable"
        problem = validate_payload(payload)
        if problem is not None:
            return None, problem
        return payload, None

    def write_payload(self, payload: Dict[str, object]) -> str:
        name = cell_id(payload["surface"], payload["group"], payload["cell"])
        atomic_write(self.cell_path(name), canonical_dumps(payload))
        return name

    def iter_cells(
        self,
    ) -> Iterator[Tuple[str, Optional[Dict[str, object]], Optional[str]]]:
        if not self.cells_dir.is_dir():
            return
        # Sort the *cell ids* (file stems), not the directory listing:
        # ``os.listdir`` order is filesystem-dependent, and sorting full
        # filenames diverges from id order when one id is a prefix of
        # another (ids may contain ``+``/``-``, which sort below the
        # ``.`` of ``.json``).  The SQLite backend orders by cell id;
        # this must match it row for row.
        names = sorted(
            entry[: -len(".json")]
            for entry in os.listdir(self.cells_dir)
            if entry.endswith(".json")
        )
        for name in names:
            payload, problem = self.load_cell(name)
            yield name, payload, problem

    # -- claim/lease layer ---------------------------------------------
    def _lease_path(self, cell: str) -> Path:
        return self.leases_dir / f"{cell}{self.LEASE_SUFFIX}"

    def _read_lease(self, path: Path) -> Optional[Tuple[str, float]]:
        try:
            record = json.loads(path.read_text())
            return str(record["owner"]), float(record["expires_at"])
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable/torn lease file: treat as no usable lease so a
            # claim can replace it (leases are best-effort coordination,
            # never data).
            return None

    def _write_lease(self, path: Path, owner: str, expires_at: float) -> None:
        """Replace a lease file in place (steal / renew).

        The tmp name carries a per-call token so two stealers never
        interleave writes through one tmp file; ``os.replace`` keeps
        the final name atomic.  No fsync: a lease lost to a crash is
        simply re-claimed.
        """
        record = json.dumps(
            {"owner": owner, "expires_at": expires_at}, sort_keys=True
        )
        tmp = path.with_name(f"{path.name}.{uuid.uuid4().hex}.tmp")
        tmp.write_text(record)
        os.replace(tmp, path)

    def claim_cell(self, cell: str, owner: str, ttl: float) -> bool:
        import time

        now = time.time()
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        path = self._lease_path(cell)
        record = json.dumps(
            {"owner": owner, "expires_at": now + ttl}, sort_keys=True
        )
        # Stage the complete record, then publish with a hard link:
        # link() is atomic create-if-absent AND the lease file can never
        # be observed half-written (the old O_EXCL-then-write protocol
        # had a window where a rival read the still-empty file, treated
        # it as torn, and "stole" a lease whose writer also won).
        staged = path.with_name(f"{path.name}.{uuid.uuid4().hex}.tmp")
        staged.write_text(record)
        try:
            try:
                os.link(staged, path)
                return True
            except FileExistsError:
                pass
            current = self._read_lease(path)
            if current is not None and current[0] == owner:
                # Reentrant claim: extend our own lease.
                self._write_lease(path, owner, now + ttl)
                return True
            if current is not None and current[1] > now:
                return False
            # Expired (or unreadable) foreign lease: steal in two atomic
            # steps.  Only one stealer's rename() of the old file can
            # succeed, and the follow-up link() still loses cleanly to
            # any fresh claim that slipped in between the two steps.
            tomb = path.with_name(f"{path.name}.{uuid.uuid4().hex}.tmp")
            try:
                os.rename(path, tomb)
            except FileNotFoundError:
                return False  # a rival stole (or the owner released) first
            os.unlink(tomb)
            try:
                os.link(staged, path)
                return True
            except FileExistsError:
                return False
        finally:
            os.unlink(staged)

    def renew_lease(self, cell: str, owner: str, ttl: float) -> bool:
        import time

        path = self._lease_path(cell)
        current = self._read_lease(path)
        if current is None or current[0] != owner:
            return False
        self._write_lease(path, owner, time.time() + ttl)
        return True

    def release_cell(self, cell: str, owner: Optional[str] = None) -> None:
        path = self._lease_path(cell)
        if owner is not None:
            current = self._read_lease(path)
            if current is not None and current[0] != owner:
                return
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def active_leases(self) -> Dict[str, Tuple[str, float]]:
        if not self.leases_dir.is_dir():
            return {}
        leases: Dict[str, Tuple[str, float]] = {}
        for entry in sorted(os.listdir(self.leases_dir)):
            if not entry.endswith(self.LEASE_SUFFIX):
                continue
            record = self._read_lease(self.leases_dir / entry)
            if record is not None:
                leases[entry[: -len(self.LEASE_SUFFIX)]] = record
        return leases

    def discard_stray_tmp(self):
        """Unlink ``*.tmp`` files a killed worker left mid-rename.

        Covers the manifest, cell files and lease files.  Safe only
        once no peer process can be writing (see the base docstring).
        """
        removed = []
        candidates = [self.path / f"{self.MANIFEST}.tmp"]
        for directory in (self.cells_dir, self.leases_dir):
            if directory.is_dir():
                candidates.extend(sorted(directory.glob("*.tmp")))
        for stray in candidates:
            try:
                stray.unlink()
            except FileNotFoundError:
                continue
            removed.append(stray.relative_to(self.path).as_posix())
        return removed
