"""Pluggable result-store layer for the sweep orchestrator.

One cell-payload contract (:mod:`repro.engine.store.base`), two
substrates:

* ``json`` — :class:`JsonStore`, a directory with one atomically
  written JSON file per cell (the original layout);
* ``sqlite`` — :class:`SqliteStore`, a single WAL-mode database file
  with the numeric values exploded into an indexed columnar table and
  the query/aggregation layer pushed into SQL.

:func:`open_store` resolves a backend from a path (a ``.sqlite`` /
``.db`` suffix or an existing file means SQLite; anything else means
the JSON directory layout), and :func:`migrate_store` converts a store
between backends with cell-for-cell verification.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.engine.store.base import (
    SQLITE_SUFFIXES,
    STORE_BACKENDS,
    SWEEP_SCHEMA_VERSION,
    ResultStore,
    atomic_write,
    build_payload,
    canonical_dumps,
    cell_id,
    seed_fingerprint,
    validate_payload,
)
from repro.engine.store.json_store import JsonStore
from repro.engine.store.migrate import (
    MigrationReport,
    diff_stores,
    migrate_store,
)
from repro.engine.store.sqlite_store import SqliteStore
from repro.exceptions import InvalidParameterError

_BACKENDS = {JsonStore.backend: JsonStore, SqliteStore.backend: SqliteStore}


def infer_backend(path: Union[str, Path]) -> str:
    """The backend a bare path implies: ``"json"`` or ``"sqlite"``.

    A SQLite-ish suffix (``.sqlite`` / ``.sqlite3`` / ``.db``) or an
    existing regular file means the single-file SQLite backend;
    everything else (existing directories, suffix-less new paths) means
    the JSON directory layout.
    """
    path = Path(path)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return "sqlite"
    if path.is_file():
        return "sqlite"
    return "json"


def open_store(
    store: Union[str, Path, ResultStore],
    backend: Optional[str] = None,
) -> ResultStore:
    """Resolve a path (or pass through a store) to a :class:`ResultStore`.

    ``backend`` forces a specific substrate; ``None`` infers one from
    the path via :func:`infer_backend`.
    """
    if isinstance(store, ResultStore):
        if backend is not None and backend != store.backend:
            raise InvalidParameterError(
                f"store is a {store.backend} backend but "
                f"backend={backend!r} was requested"
            )
        return store
    if backend is None:
        backend = infer_backend(store)
    try:
        factory = _BACKENDS[backend]
    except KeyError:
        raise InvalidParameterError(
            f"unknown store backend {backend!r}; choose from "
            f"{', '.join(STORE_BACKENDS)}"
        ) from None
    return factory(store)


__all__ = [
    "JsonStore",
    "MigrationReport",
    "ResultStore",
    "SQLITE_SUFFIXES",
    "STORE_BACKENDS",
    "SWEEP_SCHEMA_VERSION",
    "SqliteStore",
    "atomic_write",
    "build_payload",
    "canonical_dumps",
    "cell_id",
    "diff_stores",
    "infer_backend",
    "migrate_store",
    "open_store",
    "seed_fingerprint",
    "validate_payload",
]
