"""JSON ↔ SQLite store migration with cell-for-cell verification.

A migration copies the manifest and every cell payload from one store
to another — in either direction, or even between two stores of the
same backend — and then *verifies* the copy: every source cell must
load from the destination with an equal payload, and the destination
must hold exactly the source's cells.  Because both backends persist
the canonical JSON text of each payload, a JSON → SQLite → JSON round
trip reproduces the original directory byte-for-byte.

The destination must be fresh (no results); a source with damaged
cells is refused — migrating would either drop the damaged cells
silently or copy garbage, and the right fix is to re-run them first
(``repro sweep --resume``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.engine.store.base import ResultStore, cell_id
from repro.exceptions import SweepStoreError

Progress = Optional[Callable[[str], None]]


@dataclass
class MigrationReport:
    """What one :func:`migrate_store` call copied and verified."""

    source: Path
    source_backend: str
    destination: Path
    destination_backend: str
    cells: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"migrated {len(self.cells)} cells: "
            f"{self.source} ({self.source_backend}) -> "
            f"{self.destination} ({self.destination_backend}); "
            "verified cell-for-cell"
        )


def migrate_store(
    source: Union[str, Path, ResultStore],
    destination: Union[str, Path, ResultStore],
    source_backend: Optional[str] = None,
    destination_backend: Optional[str] = None,
    progress: Progress = None,
) -> MigrationReport:
    """Copy a result store to a fresh destination and verify the copy.

    Backends are resolved from the paths (directory vs ``.sqlite``)
    unless given explicitly.  Raises
    :class:`~repro.exceptions.SweepStoreError` when the source has no
    manifest or damaged cells, when the destination already holds
    results, or when post-copy verification finds any divergence.
    """
    from repro.engine.store import open_store

    log = progress or (lambda _msg: None)
    src = open_store(source, backend=source_backend)
    dst = open_store(destination, backend=destination_backend)
    if src.path.resolve() == dst.path.resolve():
        raise SweepStoreError(
            f"source and destination are the same store: {src.path}"
        )
    manifest = src.read_manifest()
    if manifest is None:
        raise SweepStoreError(
            f"{src.path} has no sweep manifest; nothing to migrate"
        )
    try:
        payloads, damaged = _collect(src)
        if damaged:
            listing = ", ".join(f"{name} ({why})" for name, why in damaged)
            raise SweepStoreError(
                f"refusing to migrate {src.path}: damaged cells would be "
                f"lost or copied as garbage — {listing}; re-run them first "
                "(repro sweep --resume)"
            )
        dst.prepare(manifest, resume=False)
        report = MigrationReport(
            source=src.path,
            source_backend=src.backend,
            destination=dst.path,
            destination_backend=dst.backend,
        )
        for name, payload in payloads:
            written = dst.write_payload(payload)
            if written != name:
                raise SweepStoreError(
                    f"cell id drift while migrating {src.path}: source "
                    f"holds {name!r} but its payload derives {written!r}"
                )
            report.cells.append(name)
            log(f"copied {name}")
        _verify(src, dst, payloads)
        log(report.summary())
        return report
    finally:
        src.close()
        dst.close()


def _collect(src: ResultStore):
    payloads: List[Tuple[str, dict]] = []
    damaged: List[Tuple[str, str]] = []
    for name, payload, problem in src.iter_cells():
        if problem is not None or payload is None:
            damaged.append((name, problem or "missing"))
            continue
        derived = cell_id(payload["surface"], payload["group"], payload["cell"])
        if derived != name:
            damaged.append((name, f"stored under foreign id (is {derived})"))
            continue
        payloads.append((name, payload))
    return payloads, damaged


def _verify(src: ResultStore, dst: ResultStore, payloads) -> None:
    """Cell-for-cell payload equality after the copy, both directions."""
    mismatched: List[str] = []
    for name, payload in payloads:
        copied, problem = dst.load_cell(name)
        if problem is not None or copied != payload:
            mismatched.append(name)
    if mismatched:
        raise SweepStoreError(
            f"migration verification failed for {dst.path}: payload "
            f"mismatch in cells {', '.join(sorted(mismatched))}"
        )
    extra = {name for name, _p, _w in dst.iter_cells()} - {
        name for name, _payload in payloads
    }
    if extra:
        raise SweepStoreError(
            f"migration verification failed for {dst.path}: destination "
            f"holds cells the source does not ({', '.join(sorted(extra))})"
        )
