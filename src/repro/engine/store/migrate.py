"""JSON ↔ SQLite store migration with cell-for-cell verification.

A migration copies the manifest and every cell payload from one store
to another — in either direction, or even between two stores of the
same backend — and then *verifies* the copy: every source cell must
load from the destination with an equal payload, and the destination
must hold exactly the source's cells.  Because both backends persist
the canonical JSON text of each payload, a JSON → SQLite → JSON round
trip reproduces the original directory byte-for-byte.

The destination must be fresh (no results); a source with damaged
cells is refused — migrating would either drop the damaged cells
silently or copy garbage, and the right fix is to re-run them first
(``repro sweep --resume``).

A migration that fails mid-copy (or fails verification) **removes the
partially written destination** before re-raising.  Without that, the
partial store — manifest present, cells missing — would survive under
the destination path, where the suffix-resolver and ``prepare`` treat
it as an existing store and refuse every retry; the failed artifact
can never be trusted anyway, since the only thing it attests is that
its own copy did not finish.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.engine.store.base import ResultStore, cell_id
from repro.exceptions import SweepStoreError

Progress = Optional[Callable[[str], None]]


@dataclass
class MigrationReport:
    """What one :func:`migrate_store` call copied and verified."""

    source: Path
    source_backend: str
    destination: Path
    destination_backend: str
    cells: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"migrated {len(self.cells)} cells: "
            f"{self.source} ({self.source_backend}) -> "
            f"{self.destination} ({self.destination_backend}); "
            "verified cell-for-cell"
        )


def migrate_store(
    source: Union[str, Path, ResultStore],
    destination: Union[str, Path, ResultStore],
    source_backend: Optional[str] = None,
    destination_backend: Optional[str] = None,
    progress: Progress = None,
) -> MigrationReport:
    """Copy a result store to a fresh destination and verify the copy.

    Backends are resolved from the paths (directory vs ``.sqlite``)
    unless given explicitly.  Raises
    :class:`~repro.exceptions.SweepStoreError` when the source has no
    manifest or damaged cells, when the destination already holds
    results, or when post-copy verification finds any divergence.
    """
    from repro.engine.store import open_store

    log = progress or (lambda _msg: None)
    src = open_store(source, backend=source_backend)
    dst = open_store(destination, backend=destination_backend)
    if src.path.resolve() == dst.path.resolve():
        raise SweepStoreError(
            f"source and destination are the same store: {src.path}"
        )
    manifest = src.read_manifest()
    if manifest is None:
        raise SweepStoreError(
            f"{src.path} has no sweep manifest; nothing to migrate"
        )
    try:
        payloads, damaged = _collect(src)
        if damaged:
            listing = ", ".join(f"{name} ({why})" for name, why in damaged)
            raise SweepStoreError(
                f"refusing to migrate {src.path}: damaged cells would be "
                f"lost or copied as garbage — {listing}; re-run them first "
                "(repro sweep --resume)"
            )
        dst.prepare(manifest, resume=False)
        report = MigrationReport(
            source=src.path,
            source_backend=src.backend,
            destination=dst.path,
            destination_backend=dst.backend,
        )
        try:
            for name, payload in payloads:
                written = dst.write_payload(payload)
                if written != name:
                    raise SweepStoreError(
                        f"cell id drift while migrating {src.path}: source "
                        f"holds {name!r} but its payload derives {written!r}"
                    )
                report.cells.append(name)
                log(f"copied {name}")
            _verify(src, dst, payloads)
        except BaseException:
            # prepare() succeeded, so whatever sits under dst.path now is
            # a partial copy of our own making — leaving it behind would
            # make every retry refuse the path as an existing store.
            _discard_partial_destination(dst, log)
            raise
        log(report.summary())
        return report
    finally:
        src.close()
        dst.close()


def diff_stores(
    left: Union[str, Path, ResultStore],
    right: Union[str, Path, ResultStore],
    left_backend: Optional[str] = None,
    right_backend: Optional[str] = None,
) -> List[str]:
    """Logical differences between two stores (empty list = identical).

    Compares the manifest and every cell's payload.  Because both
    backends persist the canonical JSON text of each payload, payload
    equality here *is* byte equality of the stored cell content — the
    comparison is backend-agnostic, so a JSON directory can be diffed
    against a SQLite file (the CI multi-worker leg diffs a 2-worker
    store against its single-worker reference this way).
    """
    from repro.engine.store import open_store

    a = open_store(left, backend=left_backend)
    b = open_store(right, backend=right_backend)
    differences: List[str] = []
    try:
        manifests = {}
        for side in (a, b):
            manifests[side] = side.read_manifest()
            if manifests[side] is None:
                raise SweepStoreError(
                    f"{side.path} has no sweep manifest; nothing to diff"
                )
        if manifests[a] != manifests[b]:
            differences.append("manifest differs")
        cells_a = {name: (payload, problem) for name, payload, problem in a.iter_cells()}
        cells_b = {name: (payload, problem) for name, payload, problem in b.iter_cells()}
        for name in sorted(set(cells_a) - set(cells_b)):
            differences.append(f"cell only in {a.path}: {name}")
        for name in sorted(set(cells_b) - set(cells_a)):
            differences.append(f"cell only in {b.path}: {name}")
        for name in sorted(set(cells_a) & set(cells_b)):
            payload_a, problem_a = cells_a[name]
            payload_b, problem_b = cells_b[name]
            if problem_a is not None or problem_b is not None:
                differences.append(
                    f"damaged cell {name}: "
                    f"{problem_a or 'clean'} vs {problem_b or 'clean'}"
                )
            elif payload_a != payload_b:
                differences.append(f"payload differs: {name}")
    finally:
        a.close()
        b.close()
    return differences


def _discard_partial_destination(dst: ResultStore, log) -> None:
    """Best-effort removal of a destination we only partially wrote."""
    try:
        dst.close()
        if dst.path.is_dir():
            shutil.rmtree(dst.path, ignore_errors=True)
        else:
            for suffix in ("", "-wal", "-shm"):
                side = Path(str(dst.path) + suffix)
                if side.is_file():
                    side.unlink()
        log(f"removed partial destination {dst.path}")
    except OSError:
        # Removal is a courtesy; the original error matters more.
        pass


def _collect(src: ResultStore):
    payloads: List[Tuple[str, dict]] = []
    damaged: List[Tuple[str, str]] = []
    for name, payload, problem in src.iter_cells():
        if problem is not None or payload is None:
            damaged.append((name, problem or "missing"))
            continue
        derived = cell_id(payload["surface"], payload["group"], payload["cell"])
        if derived != name:
            damaged.append((name, f"stored under foreign id (is {derived})"))
            continue
        payloads.append((name, payload))
    return payloads, damaged


def _verify(src: ResultStore, dst: ResultStore, payloads) -> None:
    """Cell-for-cell payload equality after the copy, both directions."""
    mismatched: List[str] = []
    for name, payload in payloads:
        copied, problem = dst.load_cell(name)
        if problem is not None or copied != payload:
            mismatched.append(name)
    if mismatched:
        raise SweepStoreError(
            f"migration verification failed for {dst.path}: payload "
            f"mismatch in cells {', '.join(sorted(mismatched))}"
        )
    extra = {name for name, _p, _w in dst.iter_cells()} - {
        name for name, _payload in payloads
    }
    if extra:
        raise SweepStoreError(
            f"migration verification failed for {dst.path}: destination "
            f"holds cells the source does not ({', '.join(sorted(extra))})"
        )
