"""Result-store backend API: one cell payload contract, many substrates.

The sweep orchestrator (:mod:`repro.engine.sweep`) treats its result
store as a key-value map of *cells* — one payload per grid cell,
carrying the cell's values plus a fingerprint of the seed stream that
produced them — under a *manifest* that pins the exact grid.  This
module defines that contract as an abstract :class:`ResultStore` so the
substrate is pluggable:

* :class:`~repro.engine.store.json_store.JsonStore` — the original
  directory layout (one atomically-written JSON file per cell), human
  inspectable, trivially rsync-able;
* :class:`~repro.engine.store.sqlite_store.SqliteStore` — a single-file
  SQLite database in WAL mode (concurrent writers), with every numeric
  value exploded into an indexed ``cell_values(cell_id, metric, value)``
  table so report aggregation runs as SQL instead of a Python loop over
  ten thousand files.

The payload itself is backend-invariant: both backends persist the
*canonical JSON text* of the payload (:func:`canonical_dumps`), so a
cell migrated between backends round-trips byte-for-byte and a report
generated from either store is identical.

Refusal/resume semantics are part of the API: ``prepare`` refuses a
store written for a different grid, a store that already holds results
when ``resume`` was not requested, and any non-empty path that is not a
result store — on every backend, with the same exception class
(:class:`~repro.exceptions.SweepStoreError`).

Query layer
-----------
:meth:`ResultStore.query` and the aggregation helpers
(:meth:`~ResultStore.metric_summary`, :meth:`~ResultStore.best_cells`,
:meth:`~ResultStore.rank_over_grid`) are defined here as reference
Python implementations over :meth:`~ResultStore.iter_cells`; the SQLite
backend overrides them with indexed SQL (``GROUP BY``, window
functions).  Both produce identical rows — the conformance suite in
``tests/test_store.py`` pins it.

Claim/lease layer
-----------------
The store doubles as the coordination substrate for multi-worker sweep
execution (:meth:`ResultStore.claim_cell`,
:meth:`~ResultStore.renew_lease`, :meth:`~ResultStore.release_cell`,
:meth:`~ResultStore.active_leases`): a worker *claims* a pending cell
before running it, heartbeats the lease while computing, and releases
it after the cell's payload lands.  A lease is ``(owner, expires_at)``;
an expired lease means its worker died mid-cell and any survivor may
reclaim (work-stealing).  Leases are *coordination only* — they never
change what gets computed, because every cell is deterministic given
the grid (seed-fingerprint replay), so the worst case of a lost race
is one cell computed twice and written twice with identical bytes.
The SQLite backend claims atomically (one WAL transaction on a
``leases`` table); the JSON backend is best-effort (``O_EXCL`` claim
files — the initial claim is race-free, stealing an expired lease is
last-writer-wins).  Lease state is ephemeral and excluded from store
identity: a finished sweep leaves no lease behind
(:meth:`~ResultStore.reap_leases`).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from abc import ABC, abstractmethod
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.exceptions import SweepStoreError

#: Bumped whenever the store layout or a cell payload's meaning changes.
#: Version 2: collision-proof cell ids (content hash suffix) and the
#: pluggable-backend store layout.
SWEEP_SCHEMA_VERSION = 2

#: The selectable store backends (the ``--store-backend`` domain).
STORE_BACKENDS = ("json", "sqlite")

#: Path suffixes that resolve to the SQLite backend.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


# ----------------------------------------------------------------------
# Shared payload/identity helpers
# ----------------------------------------------------------------------
def canonical_dumps(payload: Dict[str, object]) -> str:
    """Canonical JSON: sorted keys, stable indentation, no timestamps.

    Determinism is a feature — a resumed store must be byte-identical
    to an uninterrupted one wherever the values themselves are
    deterministic, and a migrated cell must round-trip byte-for-byte.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _fsync_directory(path: Path) -> None:
    """Flush a directory's entry table to disk (best effort).

    ``os.replace`` makes the rename atomic with respect to crashes of
    the *process*, but only an fsync of the parent directory makes the
    new entry durable across power loss.  Platforms that cannot open a
    directory (Windows) simply skip it.
    """
    try:
        dir_fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write(path: Path, text: str) -> None:
    """Durably replace ``path`` with ``text`` (write-fsync-rename-fsync).

    The tmp file is fsynced before the rename — otherwise a power loss
    shortly after ``os.replace`` can leave a *truncated* file under the
    final name, indistinguishable from a completed write — and the
    parent directory is fsynced after it so the rename itself is
    durable.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _slug(part: object) -> str:
    return re.sub(r"[^A-Za-z0-9.+-]+", "-", str(part))


def cell_id(
    surface: str, group: Sequence[object], cell: Sequence[object]
) -> str:
    """Stable, collision-proof id of one grid cell.

    The readable prefix is a slug of the parts; slugs are lossy
    (``a_b`` and ``a-b`` both slug to ``a-b``, and the ``__`` joiner
    can itself appear inside a part), so a short content hash of the
    *raw* parts — joined on an unprintable separator so no part
    boundary is ambiguous, with the group length folded in so the
    group/cell split is unambiguous too — is appended to make distinct
    (surface, group, cell) triples map to distinct ids.
    """
    parts = tuple(str(part) for part in (surface, *group, *cell))
    key = "\x1f".join((str(len(group)), *parts))
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:10]
    return "__".join(_slug(part) for part in parts) + "--" + digest


def seed_fingerprint(rng: np.random.Generator) -> str:
    """Digest of a generator's exact state (non-consuming).

    Stored with every cell and re-derived on resume: a completed cell is
    only skipped when the replayed schedule reaches it with the *same*
    stream state, which is what makes the skip bit-identical.
    """
    state = json.dumps(rng.bit_generator.state, sort_keys=True, default=int)
    return hashlib.sha1(state.encode()).hexdigest()


def build_payload(
    surface: str,
    group: Sequence[object],
    cell: Sequence[object],
    seed_state: str,
    values: Dict[str, object],
) -> Dict[str, object]:
    """The backend-invariant payload of one completed cell."""
    return {
        "schema": SWEEP_SCHEMA_VERSION,
        "surface": surface,
        "group": [str(part) for part in group],
        "cell": [str(part) for part in cell],
        "seed_state": seed_state,
        "status": "done",
        "values": values,
    }


def validate_payload(payload: object) -> Optional[str]:
    """``None`` when the payload is a complete cell, a problem otherwise."""
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != SWEEP_SCHEMA_VERSION
        or payload.get("status") != "done"
        or not isinstance(payload.get("values"), dict)
        or not isinstance(payload.get("seed_state"), str)
        or not isinstance(payload.get("surface"), str)
        or not isinstance(payload.get("group"), list)
        or not isinstance(payload.get("cell"), list)
    ):
        return "incomplete"
    return None


def _numeric_items(values: Dict[str, object]) -> List[Tuple[str, float]]:
    """The queryable (metric, value) projection of a values dict.

    Only real numbers land in the value plane (and in SQLite's
    ``cell_values`` table); non-numeric values stay payload-only.
    """
    rows = []
    for metric in sorted(values):
        value = values[metric]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        rows.append((metric, float(value)))
    return rows


#: One value-plane row: (cell_id, surface, group, cell, metric, value).
ValueRow = Tuple[str, str, Tuple[str, ...], Tuple[str, ...], str, float]


# ----------------------------------------------------------------------
# The backend API
# ----------------------------------------------------------------------
class ResultStore(ABC):
    """Abstract result store: manifest + cells + value-plane queries.

    Subclasses implement the substrate (:meth:`prepare`,
    :meth:`read_manifest`, :meth:`has_cells`, :meth:`load_cell`,
    :meth:`write_payload`, :meth:`iter_cells`); everything else —
    including the whole query/aggregation layer — has a reference
    implementation here that any backend may override with something
    substrate-native (the SQLite backend pushes it into SQL).
    """

    #: Short backend name (``"json"`` / ``"sqlite"``).
    backend: ClassVar[str] = "abstract"

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    # -- identity ------------------------------------------------------
    @property
    def root(self) -> Path:
        """Filesystem anchor of the store (directory or database file)."""
        return self.path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.path)!r})"

    # -- lifecycle -----------------------------------------------------
    @abstractmethod
    def prepare(self, description: Dict[str, object], resume: bool) -> None:
        """Create the store, or verify an existing one matches the grid."""

    def close(self) -> None:
        """Release any substrate handles (no-op by default)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _verify_reusable(
        self,
        existing: Dict[str, object],
        description: Dict[str, object],
        resume: bool,
    ) -> None:
        """The shared refusal matrix for an already-initialized store."""
        if existing != description:
            raise SweepStoreError(
                f"store {self.path} was written for a different grid; "
                "use a fresh --store path (or the original grid)"
            )
        if not resume and self.has_cells():
            raise SweepStoreError(
                f"store {self.path} already holds results; pass "
                "resume=True (--resume) to fill in missing cells, or "
                "choose a fresh path"
            )

    # -- manifest ------------------------------------------------------
    @abstractmethod
    def read_manifest(self) -> Optional[Dict[str, object]]:
        """The stored grid description, or ``None`` when absent.

        Raises :class:`~repro.exceptions.SweepStoreError` when a
        manifest exists but cannot be read.
        """

    # -- cells ---------------------------------------------------------
    @abstractmethod
    def has_cells(self) -> bool:
        """Whether any cell result has been written."""

    @abstractmethod
    def load_cell(
        self, cell: str
    ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        """(payload, problem): payload when clean, problem when damaged.

        ``(None, None)`` means the cell simply has not run yet.
        """

    @abstractmethod
    def write_payload(self, payload: Dict[str, object]) -> str:
        """Persist one complete cell payload; returns its cell id.

        The payload must be :func:`validate_payload`-clean; its id is
        derived from its own surface/group/cell parts, so a payload
        read from one backend lands under the same id on another (the
        migrator depends on this).
        """

    @abstractmethod
    def iter_cells(
        self,
    ) -> Iterator[Tuple[str, Optional[Dict[str, object]], Optional[str]]]:
        """Every stored cell as ``(cell_id, payload, problem)``.

        Ordered by cell id; damaged cells appear with ``payload=None``
        and a problem string, exactly as :meth:`load_cell` reports them.
        """

    def write_cell(
        self,
        surface: str,
        group: Sequence[object],
        cell: Sequence[object],
        seed_state: str,
        values: Dict[str, object],
    ) -> str:
        """Persist one freshly computed cell; returns its cell id."""
        return self.write_payload(
            build_payload(surface, group, cell, seed_state, values)
        )

    def load_group(
        self, names: Sequence[str]
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """All cells of a group, when every one is present and clean.

        ``None`` when any cell is missing or damaged — the caller then
        materializes the group and walks it cell by cell (which is
        where damaged cells get reported and re-run).
        """
        values: Dict[str, Dict[str, object]] = {}
        for name in names:
            payload, problem = self.load_cell(name)
            if payload is None or problem is not None:
                return None
            values[name] = payload["values"]
        return values

    def count_cells(self) -> int:
        """Number of stored cells (damaged ones included)."""
        return sum(1 for _ in self.iter_cells())

    # -- claim/lease layer ---------------------------------------------
    @abstractmethod
    def claim_cell(self, cell: str, owner: str, ttl: float) -> bool:
        """Try to acquire the lease on one cell for ``ttl`` seconds.

        Succeeds when the cell has no lease, when ``owner`` already
        holds it (re-entrant — also extends the expiry), or when the
        existing lease has expired (its worker died; the claim *steals*
        it).  Returns ``False`` when another worker holds a live lease.
        Claiming never inspects the cell's payload: a completed cell
        can be claimed, which is harmless because re-running a
        deterministic cell rewrites identical bytes.
        """

    @abstractmethod
    def renew_lease(self, cell: str, owner: str, ttl: float) -> bool:
        """Extend a held lease (heartbeat); ``False`` when it was lost.

        Only the current owner can renew.  A ``False`` return means the
        lease expired and was stolen (or released) — the worker should
        keep computing anyway (writes are idempotent) but must expect a
        peer to finish the cell first.
        """

    @abstractmethod
    def release_cell(self, cell: str, owner: Optional[str] = None) -> None:
        """Drop a lease.  With ``owner``, only that owner's lease.

        ``owner=None`` force-releases whatever lease exists (used by
        :meth:`reap_leases` to clear leases of dead workers).  Missing
        leases are ignored — release is idempotent.
        """

    @abstractmethod
    def active_leases(self) -> Dict[str, Tuple[str, float]]:
        """Every recorded lease as ``{cell_id: (owner, expires_at)}``.

        Includes expired leases — expiry is a property the *reader*
        evaluates against its own clock, not a deletion event.
        """

    def reap_leases(self, now: Optional[float] = None) -> List[str]:
        """Drop stale leases; returns the reaped cell ids (sorted).

        A lease is stale when its cell is already complete (the owner
        died between writing the payload and releasing) or when it has
        expired (the owner died mid-cell).  Workers call this when they
        finish a grid so a completed sweep's store carries no lease
        state at all — lease bookkeeping must never show up in the
        store-identity comparisons (tree bytes / logical rows).
        """
        import time as _time

        clock = _time.time() if now is None else now
        reaped = []
        for cell, (_owner, expires_at) in sorted(self.active_leases().items()):
            if expires_at <= clock:
                self.release_cell(cell)
                reaped.append(cell)
                continue
            payload, problem = self.load_cell(cell)
            if payload is not None and problem is None:
                self.release_cell(cell)
                reaped.append(cell)
        return reaped

    def discard_stray_tmp(self) -> List[str]:
        """Remove write-in-flight residue dead workers left behind.

        A worker killed between opening a tmp file and renaming it
        leaves a ``*.tmp`` under the store — invisible to every reader
        but a spurious difference in the tree-bytes identity check.
        Only call this when no other process can be mid-write (e.g.
        after every worker process has been joined): unlinking a live
        peer's in-flight tmp would break its rename.  Substrates
        without stray files (SQLite rolls back via the WAL) return an
        empty list.
        """
        return []

    # -- query layer ---------------------------------------------------
    def query(
        self,
        surface: Optional[str] = None,
        metric: Optional[str] = None,
    ) -> List[ValueRow]:
        """The numeric value plane, ordered by (cell_id, metric).

        Damaged cells are excluded (they carry no trustworthy values).
        """
        rows: List[ValueRow] = []
        for name, payload, problem in self.iter_cells():
            if payload is None or problem is not None:
                continue
            if surface is not None and payload["surface"] != surface:
                continue
            group = tuple(payload["group"])
            cell = tuple(payload["cell"])
            for found, value in _numeric_items(payload["values"]):
                if metric is not None and found != metric:
                    continue
                rows.append(
                    (name, payload["surface"], group, cell, found, value)
                )
        return rows

    def metric_summary(
        self, surface: Optional[str] = None
    ) -> List[Tuple[str, str, int, float, float, float]]:
        """Per (surface, metric): ``(count, min, max, mean)`` rows."""
        buckets: Dict[Tuple[str, str], List[float]] = {}
        for _name, row_surface, _g, _c, metric, value in self.query(
            surface=surface
        ):
            buckets.setdefault((row_surface, metric), []).append(value)
        return [
            (s, m, len(vs), min(vs), max(vs), sum(vs) / len(vs))
            for (s, m), vs in sorted(buckets.items())
        ]

    def best_cells(
        self, metric: str, mode: str = "max"
    ) -> List[Tuple[str, Tuple[str, ...], str, float]]:
        """Best-of-group for one metric: one winner per (surface, group).

        ``mode`` is ``"max"`` or ``"min"``; ties break on the smallest
        cell id so both backends agree deterministically.
        """
        _check_mode(mode)
        best: Dict[Tuple[str, Tuple[str, ...]], Tuple[float, str]] = {}
        for name, surface, group, _cell, _m, value in self.query(
            metric=metric
        ):
            key = (surface, group)
            current = best.get(key)
            if current is None or _beats(value, name, current, mode):
                best[key] = (value, name)
        return [
            (surface, group, name, value)
            for (surface, group), (value, name) in sorted(best.items())
        ]

    def rank_over_grid(
        self, metric: str, mode: str = "max"
    ) -> List[Tuple[int, str, str, float]]:
        """Every cell ranked over the whole grid for one metric.

        Competition ranking (ties share a rank, the next rank skips),
        matching SQL's ``RANK() OVER (ORDER BY value)``; rows ordered
        by (rank, cell_id).
        """
        _check_mode(mode)
        rows = self.query(metric=metric)
        ordered = sorted((row[5] for row in rows), reverse=(mode == "max"))
        ranks: Dict[float, int] = {}
        for index, value in enumerate(ordered):
            ranks.setdefault(value, index + 1)
        return sorted(
            (ranks[value], name, surface, value)
            for name, surface, _g, _c, _m, value in rows
        )


def _check_mode(mode: str) -> None:
    if mode not in ("max", "min"):
        from repro.exceptions import InvalidParameterError

        raise InvalidParameterError(
            f"aggregation mode must be 'max' or 'min', got {mode!r}"
        )


def _beats(
    value: float, name: str, current: Tuple[float, str], mode: str
) -> bool:
    current_value, current_name = current
    if value == current_value:
        return name < current_name
    if mode == "max":
        return value > current_value
    return value < current_value
