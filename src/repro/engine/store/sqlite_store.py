"""SQLite-backed result store: one file, WAL mode, SQL aggregation.

Layout (one database file)::

    meta(key, value)                       -- manifest + schema version
    cells(cell_id PRIMARY KEY, surface, group_json, cell_json,
          seed_state, status, payload)     -- payload = canonical JSON
    cell_values(cell_id, metric, value)    -- exploded numeric plane

The ``payload`` column stores the *exact canonical JSON text* a
:class:`~repro.engine.store.json_store.JsonStore` would write to the
cell's file, so migration between backends round-trips byte-for-byte
and reports generated from either store are identical.  ``cell_values``
is the columnar projection of every numeric value, indexed by
``(metric, value)`` and joined against the ``(surface, group_json,
cell_json)`` index on ``cells`` — the query/aggregation layer
(`metric_summary`, `best_cells`, `rank_over_grid`, group bulk loads)
runs as indexed SQL with window functions instead of a Python loop
over one file per cell.

Concurrency & durability: the database runs in WAL journal mode, so
concurrent writers (the multi-worker sweep) coordinate through
SQLite's locking instead of the filesystem, and readers never block a
writer.  ``synchronous=NORMAL`` under WAL means a power loss can drop
the last commits but can never corrupt the database — a lost cell is
simply re-run on resume, exactly like a cell that never got written.
Each cell write is one transaction, so a killed run can never leave a
half-written cell marked ``done``.

Leases live in a ``leases(cell_id, owner, expires_at)`` table, created
lazily so pre-lease stores open unchanged.  A claim is **one** WAL
transaction — an upsert whose ``DO UPDATE`` is guarded by ``owner
matches OR lease expired`` — so two workers racing for a cell are
serialized by SQLite's single-writer lock and exactly one sees its row
change.  The leases table is excluded from store identity (the
logical-rows comparison reads ``cells``/``cell_values``/``meta``) and
is left empty by a finished sweep.

Fork safety: a ``sqlite3.Connection`` must never be used on both sides
of a ``fork()`` — the child would share the parent's file descriptors
and locking state.  The cached connection therefore remembers the pid
that opened it and is discarded and lazily reopened whenever it
surfaces in a different process (the ``processes`` execution backend
forks workers while the sweep's store connection is open).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.store.base import (
    SWEEP_SCHEMA_VERSION,
    ResultStore,
    ValueRow,
    _check_mode,
    _numeric_items,
    canonical_dumps,
    cell_id,
    validate_payload,
)
from repro.exceptions import SweepStoreError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    cell_id TEXT PRIMARY KEY,
    surface TEXT NOT NULL,
    group_json TEXT NOT NULL,
    cell_json TEXT NOT NULL,
    seed_state TEXT NOT NULL,
    status TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cells_grid
    ON cells (surface, group_json, cell_json);
CREATE TABLE IF NOT EXISTS cell_values (
    cell_id TEXT NOT NULL,
    metric TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (cell_id, metric)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_values_metric
    ON cell_values (metric, value);
"""

# Created lazily on first lease operation (not part of _SCHEMA) so
# stores written before the claim/lease layer open and verify cleanly.
_LEASES_SCHEMA = """
CREATE TABLE IF NOT EXISTS leases (
    cell_id TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    expires_at REAL NOT NULL
) WITHOUT ROWID
"""


def _is_missing_table(error: sqlite3.OperationalError) -> bool:
    return "no such table" in str(error)


class SqliteStore(ResultStore):
    """Single-file columnar result store (SQLite, WAL mode)."""

    backend = "sqlite"

    def __init__(self, path: Union[str, Path]):
        super().__init__(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._leases_ready = False

    # -- connection ----------------------------------------------------
    def _connect(self, create: bool = False) -> sqlite3.Connection:
        if self._conn is not None and self._conn_pid != os.getpid():
            # Inherited across fork(): a sqlite3.Connection must never
            # be shared between processes.  Close *this process's*
            # duplicate of the descriptors (the parent's locks are
            # per-process and unaffected) and reopen lazily.
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
            self._leases_ready = False
        if self._conn is not None:
            return self._conn
        if not create and not self.path.exists():
            raise SweepStoreError(f"no sqlite result store at {self.path}")
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path))
        try:
            # journal_mode reads the header, so a non-database file is
            # rejected here instead of deep inside a later query.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.DatabaseError as error:
            conn.close()
            raise SweepStoreError(
                f"unreadable sqlite store {self.path}: {error}"
            ) from error
        self._conn = conn
        self._conn_pid = os.getpid()
        return conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self._leases_ready = False

    def _execute(self, sql: str, params: Sequence[object] = ()):
        """Run one query, mapping substrate corruption to SweepStoreError."""
        conn = self._connect()
        try:
            return conn.execute(sql, params)
        except sqlite3.OperationalError:
            raise
        except sqlite3.DatabaseError as error:
            raise SweepStoreError(
                f"corrupt sqlite store {self.path}: {error}"
            ) from error

    # -- lifecycle -----------------------------------------------------
    def prepare(self, description: Dict[str, object], resume: bool) -> None:
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        conn = self._connect(create=True)
        if fresh:
            with conn:
                conn.executescript(_SCHEMA)
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("manifest", canonical_dumps(description)),
                )
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("schema", str(SWEEP_SCHEMA_VERSION)),
                )
            return
        existing = self.read_manifest()
        if existing is None:
            raise SweepStoreError(
                f"{self.path} exists, is not empty and has no sweep "
                "manifest; refusing to write into it"
            )
        self._verify_reusable(existing, description, resume)

    # -- manifest ------------------------------------------------------
    def read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            row = self._execute(
                "SELECT value FROM meta WHERE key = 'manifest'"
            ).fetchone()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return None
            raise SweepStoreError(
                f"unreadable sweep manifest in {self.path}: {error}"
            ) from error
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as error:
            raise SweepStoreError(
                f"unreadable sweep manifest in {self.path}: {error}"
            ) from error

    # -- cells ---------------------------------------------------------
    def has_cells(self) -> bool:
        try:
            row = self._execute("SELECT 1 FROM cells LIMIT 1").fetchone()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return False
            raise
        return row is not None

    @staticmethod
    def _decode(
        payload_text: str,
    ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        try:
            payload = json.loads(payload_text)
        except json.JSONDecodeError:
            return None, "unreadable"
        problem = validate_payload(payload)
        if problem is not None:
            return None, problem
        return payload, None

    def load_cell(
        self, cell: str
    ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        try:
            row = self._execute(
                "SELECT payload FROM cells WHERE cell_id = ?", (cell,)
            ).fetchone()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return None, None
            raise SweepStoreError(
                f"corrupt sqlite store {self.path}: {error}"
            ) from error
        if row is None:
            return None, None
        return self._decode(row[0])

    def write_payload(self, payload: Dict[str, object]) -> str:
        name = cell_id(payload["surface"], payload["group"], payload["cell"])
        value_rows = [
            (name, metric, value)
            for metric, value in _numeric_items(payload["values"])
        ]
        conn = self._connect()
        with conn:  # one transaction: the cell is either whole or absent
            conn.execute(
                "INSERT OR REPLACE INTO cells "
                "(cell_id, surface, group_json, cell_json, seed_state, "
                " status, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    name,
                    payload["surface"],
                    json.dumps(payload["group"]),
                    json.dumps(payload["cell"]),
                    payload["seed_state"],
                    payload["status"],
                    canonical_dumps(payload),
                ),
            )
            conn.execute("DELETE FROM cell_values WHERE cell_id = ?", (name,))
            conn.executemany(
                "INSERT INTO cell_values (cell_id, metric, value) "
                "VALUES (?, ?, ?)",
                value_rows,
            )
        return name

    def iter_cells(
        self,
    ) -> Iterator[Tuple[str, Optional[Dict[str, object]], Optional[str]]]:
        try:
            rows = self._execute(
                "SELECT cell_id, payload FROM cells ORDER BY cell_id"
            ).fetchall()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return
            raise SweepStoreError(
                f"corrupt sqlite store {self.path}: {error}"
            ) from error
        for name, payload_text in rows:
            payload, problem = self._decode(payload_text)
            yield name, payload, problem

    def count_cells(self) -> int:
        try:
            return self._execute("SELECT COUNT(*) FROM cells").fetchone()[0]
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return 0
            raise

    # -- claim/lease layer ---------------------------------------------
    def _ensure_leases(self) -> sqlite3.Connection:
        conn = self._connect()
        if not self._leases_ready:
            with conn:
                conn.execute(_LEASES_SCHEMA)
            self._leases_ready = True
        return conn

    def claim_cell(self, cell: str, owner: str, ttl: float) -> bool:
        now = time.time()
        conn = self._ensure_leases()
        # One WAL transaction: the upsert's DO UPDATE only fires for a
        # re-entrant claim or an expired lease, so under SQLite's
        # single-writer lock exactly one racing worker sees a row
        # change — that worker holds the lease.
        with conn:
            cursor = conn.execute(
                "INSERT INTO leases (cell_id, owner, expires_at) "
                "VALUES (?, ?, ?) "
                "ON CONFLICT(cell_id) DO UPDATE SET "
                "  owner = excluded.owner, expires_at = excluded.expires_at "
                "WHERE leases.owner = excluded.owner "
                "   OR leases.expires_at <= ?",
                (cell, owner, now + ttl, now),
            )
        return cursor.rowcount > 0

    def renew_lease(self, cell: str, owner: str, ttl: float) -> bool:
        conn = self._ensure_leases()
        with conn:
            cursor = conn.execute(
                "UPDATE leases SET expires_at = ? "
                "WHERE cell_id = ? AND owner = ?",
                (time.time() + ttl, cell, owner),
            )
        return cursor.rowcount > 0

    def release_cell(self, cell: str, owner: Optional[str] = None) -> None:
        conn = self._ensure_leases()
        with conn:
            if owner is None:
                conn.execute("DELETE FROM leases WHERE cell_id = ?", (cell,))
            else:
                conn.execute(
                    "DELETE FROM leases WHERE cell_id = ? AND owner = ?",
                    (cell, owner),
                )

    def active_leases(self) -> Dict[str, Tuple[str, float]]:
        try:
            rows = self._execute(
                "SELECT cell_id, owner, expires_at FROM leases"
            ).fetchall()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return {}
            raise SweepStoreError(
                f"corrupt sqlite store {self.path}: {error}"
            ) from error
        return {
            cell: (owner, float(expires_at))
            for cell, owner, expires_at in rows
        }

    # -- SQL-side bulk load & aggregation ------------------------------
    def load_group(
        self, names: Sequence[str]
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """One indexed query for a whole group instead of N point reads."""
        names = list(names)
        if not names:
            return {}
        placeholders = ", ".join("?" for _ in names)
        try:
            rows = self._execute(
                "SELECT cell_id, payload FROM cells "
                f"WHERE cell_id IN ({placeholders})",
                names,
            ).fetchall()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return None
            raise SweepStoreError(
                f"corrupt sqlite store {self.path}: {error}"
            ) from error
        found = dict(rows)
        values: Dict[str, Dict[str, object]] = {}
        for name in names:
            payload_text = found.get(name)
            if payload_text is None:
                return None
            payload, problem = self._decode(payload_text)
            if payload is None or problem is not None:
                return None
            values[name] = payload["values"]
        return values

    def _value_join(
        self,
        select: str,
        surface: Optional[str] = None,
        metric: Optional[str] = None,
        tail: str = "",
    ):
        clauses, params = [], []
        if surface is not None:
            clauses.append("c.surface = ?")
            params.append(surface)
        if metric is not None:
            clauses.append("v.metric = ?")
            params.append(metric)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = (
            f"SELECT {select} FROM cells c "
            "JOIN cell_values v ON v.cell_id = c.cell_id"
            f"{where}{tail}"
        )
        try:
            return self._execute(sql, params).fetchall()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return []
            raise SweepStoreError(
                f"corrupt sqlite store {self.path}: {error}"
            ) from error

    def query(
        self,
        surface: Optional[str] = None,
        metric: Optional[str] = None,
    ) -> List[ValueRow]:
        rows = self._value_join(
            "c.cell_id, c.surface, c.group_json, c.cell_json, "
            "v.metric, v.value",
            surface=surface,
            metric=metric,
            tail=" ORDER BY c.cell_id, v.metric",
        )
        return [
            (
                name,
                row_surface,
                tuple(json.loads(group_json)),
                tuple(json.loads(cell_json)),
                found,
                float(value),
            )
            for name, row_surface, group_json, cell_json, found, value in rows
        ]

    def metric_summary(
        self, surface: Optional[str] = None
    ) -> List[Tuple[str, str, int, float, float, float]]:
        rows = self._value_join(
            "c.surface, v.metric, COUNT(*), MIN(v.value), MAX(v.value), "
            "AVG(v.value)",
            surface=surface,
            tail=" GROUP BY c.surface, v.metric"
            " ORDER BY c.surface, v.metric",
        )
        return [
            (s, m, int(count), float(lo), float(hi), float(mean))
            for s, m, count, lo, hi, mean in rows
        ]

    def best_cells(
        self, metric: str, mode: str = "max"
    ) -> List[Tuple[str, Tuple[str, ...], str, float]]:
        _check_mode(mode)
        direction = "DESC" if mode == "max" else "ASC"
        try:
            rows = self._execute(
                "SELECT surface, group_json, cell_id, value FROM ("
                "  SELECT c.surface, c.group_json, c.cell_id, v.value,"
                "         ROW_NUMBER() OVER ("
                "             PARTITION BY c.surface, c.group_json"
                f"            ORDER BY v.value {direction}, c.cell_id ASC"
                "         ) AS pos"
                "  FROM cells c JOIN cell_values v ON v.cell_id = c.cell_id"
                "  WHERE v.metric = ?"
                ") WHERE pos = 1",
                (metric,),
            ).fetchall()
        except sqlite3.OperationalError as error:
            if _is_missing_table(error):
                return []
            raise SweepStoreError(
                f"corrupt sqlite store {self.path}: {error}"
            ) from error
        return sorted(
            (surface, tuple(json.loads(group_json)), name, float(value))
            for surface, group_json, name, value in rows
        )

    def rank_over_grid(
        self, metric: str, mode: str = "max"
    ) -> List[Tuple[int, str, str, float]]:
        _check_mode(mode)
        direction = "DESC" if mode == "max" else "ASC"
        rows = self._value_join(
            f"RANK() OVER (ORDER BY v.value {direction}), "
            "c.cell_id, c.surface, v.value",
            metric=metric,
        )
        return sorted(
            (int(rank), name, surface, float(value))
            for rank, name, surface, value in rows
        )
