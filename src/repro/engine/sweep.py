"""Paper-grid sweep orchestrator: one shared-cache schedule for the grid.

The paper's headline artifacts (Tables 2-3, Figures 4-5) are a *grid*
of run-sets — datasets x algorithms x parameters — and every cell that
shares a dataset also shares that dataset's off-line work: the stacked
moment matrices, the compiled sampling plan, and the pairwise ``ÊD``
matrix of the distance plane.  The experiment runners already share
those caches *within* one invocation; this module turns the whole grid
into one explicit schedule of dataset groups so that

* each dataset is materialized **once** and every cell that needs it
  reads the same object (hence the same moment matrices, the same
  cached :meth:`~repro.objects.dataset.UncertainDataset.pairwise_ed`
  matrix and the same compiled sampling plan);
* under the ``processes``/``auto`` backends the group's stable arrays
  are published to shared memory **once** for all of its cells
  (:func:`repro.engine.backends.shared_block_registry`), instead of
  once per run-set;
* every cell's result lands in a **resumable JSON store**: one file per
  cell, written atomically, carrying the cell's values plus a
  fingerprint of the seed stream that produced them.

Bit-identity contract
---------------------
A sweep cell equals the corresponding cell of a direct
``run_table2``/``run_table3``/``run_figure4``/``run_figure5`` call with
the same spec, on every backend: the orchestrator executes the exact
group/cell helpers the runners themselves use, in the exact iteration
order, consuming the exact seed streams.  On ``resume``, completed
cells are skipped but their seed consumption is *replayed* (the
``skip_*_cell`` helpers), so every pending cell still sees the streams
an uninterrupted run would have produced — the resumed store is
byte-identical to an uninterrupted one for the deterministic surfaces
(Tables 2-3; the Figure cells store measured wall-clock runtimes).

Result stores
-------------
Cell persistence goes through the pluggable store layer
(:mod:`repro.engine.store`): the ``json`` backend keeps the original
directory layout (``manifest.json`` plus one atomically written file
per cell), the ``sqlite`` backend keeps everything in one WAL-mode
database file with the values exploded into an indexed columnar table.
A cell payload is ``{"schema": ..., "surface": ..., "group": [...],
"cell": [...], "seed_state": "<sha1>", "status": "done",
"values": {...}}`` on every backend.  Corrupted or partial cells (a
killed run can only ever leave a stray ``*.tmp`` file or an aborted
transaction behind — final writes are atomic — but truncation or
manual editing happens) are detected, reported in
:attr:`SweepOutcome.invalid`, and re-run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.datagen.uncertainty_gen import PDF_FAMILIES
from repro.engine.backends import shared_block_registry
from repro.engine.store import (
    SWEEP_SCHEMA_VERSION,
    JsonStore,
    ResultStore,
    cell_id,
    open_store,
)
from repro.engine.store import seed_fingerprint as _seed_fingerprint
from repro.exceptions import InvalidParameterError
from repro.experiments.config import (
    ACCURACY_ROSTER,
    FAST_ROSTER,
    SCALABILITY_ROSTER,
    SLOW_ROSTER,
    ExperimentConfig,
)
from repro.experiments.figure4 import FIGURE4_DATASETS
from repro.experiments.figure5 import FIGURE5_FRACTIONS, FIGURE5_K
from repro.experiments.table2 import TABLE2_DATASETS
from repro.experiments.table3 import TABLE3_CLUSTER_COUNTS, TABLE3_DATASETS
from repro.utils.rng import spawn_rngs

#: Execution order of the surfaces (each derives its streams from its
#: own ``config.seed``, so the order never affects any cell's seeds).
SWEEP_SURFACES = ("table2", "table3", "figure4", "figure5")



# ----------------------------------------------------------------------
# Grid specification
# ----------------------------------------------------------------------
def _freeze(spec, **fields) -> None:
    for name, value in fields.items():
        object.__setattr__(spec, name, value)


@dataclass(frozen=True)
class Table2Spec:
    """One Table 2 sub-grid: datasets x families x algorithms."""

    config: ExperimentConfig = ExperimentConfig()
    datasets: Tuple[str, ...] = TABLE2_DATASETS
    families: Tuple[str, ...] = PDF_FAMILIES
    algorithms: Tuple[str, ...] = ACCURACY_ROSTER

    def __post_init__(self) -> None:
        _freeze(
            self,
            datasets=tuple(self.datasets),
            families=tuple(self.families),
            algorithms=tuple(self.algorithms),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "datasets": list(self.datasets),
            "families": list(self.families),
            "algorithms": list(self.algorithms),
        }


@dataclass(frozen=True)
class Table3Spec:
    """One Table 3 sub-grid: datasets x cluster counts x algorithms."""

    config: ExperimentConfig = ExperimentConfig(scale=0.02)
    datasets: Tuple[str, ...] = TABLE3_DATASETS
    cluster_counts: Tuple[int, ...] = TABLE3_CLUSTER_COUNTS
    algorithms: Tuple[str, ...] = ACCURACY_ROSTER

    def __post_init__(self) -> None:
        _freeze(
            self,
            datasets=tuple(self.datasets),
            cluster_counts=tuple(int(k) for k in self.cluster_counts),
            algorithms=tuple(self.algorithms),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "datasets": list(self.datasets),
            "cluster_counts": list(self.cluster_counts),
            "algorithms": list(self.algorithms),
        }


@dataclass(frozen=True)
class Figure4Spec:
    """One Figure 4 sub-grid: datasets x (slow + fast + UCPC) roster."""

    config: ExperimentConfig = ExperimentConfig(scale=0.02, n_runs=3)
    datasets: Tuple[str, ...] = FIGURE4_DATASETS
    slow_group: Tuple[str, ...] = SLOW_ROSTER
    fast_group: Tuple[str, ...] = FAST_ROSTER
    n_clusters: int = 10

    def __post_init__(self) -> None:
        _freeze(
            self,
            datasets=tuple(self.datasets),
            slow_group=tuple(self.slow_group),
            fast_group=tuple(self.fast_group),
            n_clusters=int(self.n_clusters),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "datasets": list(self.datasets),
            "slow_group": list(self.slow_group),
            "fast_group": list(self.fast_group),
            "n_clusters": self.n_clusters,
        }


@dataclass(frozen=True)
class Figure5Spec:
    """One Figure 5 sub-grid: fractions x scalability roster."""

    config: ExperimentConfig = ExperimentConfig(n_runs=3)
    fractions: Tuple[float, ...] = FIGURE5_FRACTIONS
    algorithms: Tuple[str, ...] = SCALABILITY_ROSTER
    base_size: int = 20000

    def __post_init__(self) -> None:
        _freeze(
            self,
            fractions=tuple(float(f) for f in self.fractions),
            algorithms=tuple(self.algorithms),
            base_size=int(self.base_size),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "fractions": list(self.fractions),
            "algorithms": list(self.algorithms),
            "base_size": self.base_size,
        }


@dataclass(frozen=True)
class SweepGrid:
    """Which surfaces a sweep covers, each with its own spec.

    A ``None`` surface is excluded.  :func:`paper_grid` builds the full
    default grid (every surface at its runner-default shape).
    """

    table2: Optional[Table2Spec] = None
    table3: Optional[Table3Spec] = None
    figure4: Optional[Figure4Spec] = None
    figure5: Optional[Figure5Spec] = None

    def __post_init__(self) -> None:
        if not any(
            (self.table2, self.table3, self.figure4, self.figure5)
        ):
            raise InvalidParameterError(
                "a SweepGrid needs at least one surface spec"
            )

    def describe(self) -> Dict[str, object]:
        """Deterministic JSON-ready description (the manifest body)."""
        surfaces: Dict[str, object] = {}
        for name in SWEEP_SURFACES:
            spec = getattr(self, name)
            if spec is not None:
                surfaces[name] = spec.describe()
        return {"schema": SWEEP_SCHEMA_VERSION, "surfaces": surfaces}


def paper_grid(
    table2_config: Optional[ExperimentConfig] = None,
    table3_config: Optional[ExperimentConfig] = None,
    figure4_config: Optional[ExperimentConfig] = None,
    figure5_config: Optional[ExperimentConfig] = None,
    figure5_base_size: int = 20000,
) -> SweepGrid:
    """The full paper grid, one spec per surface.

    Defaults mirror each runner's own default config (Table 3 and
    Figure 4 scale-capped for laptop runtimes, exactly as
    ``run_table3``/``run_figure4`` default).
    """
    return SweepGrid(
        table2=Table2Spec(config=table2_config or ExperimentConfig()),
        table3=Table3Spec(
            config=table3_config or ExperimentConfig(scale=0.02)
        ),
        figure4=Figure4Spec(
            config=figure4_config or ExperimentConfig(scale=0.02, n_runs=3)
        ),
        figure5=Figure5Spec(
            config=figure5_config or ExperimentConfig(n_runs=3),
            base_size=figure5_base_size,
        ),
    )


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
#: Backward-compatible name for the original directory-backed store;
#: the store layer now lives in :mod:`repro.engine.store` behind the
#: pluggable :class:`~repro.engine.store.ResultStore` API.
SweepStore = JsonStore


# ----------------------------------------------------------------------
# Outcome
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """What one :func:`run_sweep` invocation did, plus the reports."""

    grid: SweepGrid
    store_root: Path
    executed: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    invalid: List[str] = field(default_factory=list)
    table2: Optional[object] = None  # Table2Report
    table3: Optional[object] = None  # Table3Report
    figure4: Optional[object] = None  # Figure4Report
    figure5: Optional[object] = None  # Figure5Report

    def artifacts(self):
        """The four reports as a :class:`PaperArtifacts` bundle."""
        from repro.experiments.reporting import PaperArtifacts

        missing = [
            name
            for name in SWEEP_SURFACES
            if getattr(self, name) is None
        ]
        if missing:
            raise InvalidParameterError(
                "artifacts() needs every surface in the grid; missing: "
                + ", ".join(missing)
            )
        return PaperArtifacts(
            table2=self.table2,
            table3=self.table3,
            figure4=self.figure4,
            figure5=self.figure5,
        )

    def summary(self) -> str:
        parts = [
            f"{len(self.executed)} cells run",
            f"{len(self.reused)} reused",
        ]
        if self.invalid:
            parts.append(f"{len(self.invalid)} damaged cells re-run")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
Progress = Optional[Callable[[str], None]]


@contextmanager
def _group_scope(config: ExperimentConfig):
    """Shared-memory publication scope for one dataset group.

    Under the ``processes``/``auto`` backends, every run-set inside the
    scope publishes the group's stable arrays (moment matrices, ``ÊD``
    matrix) once via :func:`shared_block_registry`; the other backends
    share the address space anyway, so no scope is needed.
    """
    if config.backend in ("processes", "auto"):
        with shared_block_registry():
            yield
    else:
        yield


class _CellLedger:
    """Per-surface bookkeeping shared by the four surface loops."""

    def __init__(self, store: ResultStore, outcome: SweepOutcome, log):
        self.store = store
        self.outcome = outcome
        self.log = log

    def reuse_whole_group(
        self, names: List[str]
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """All cells of a group, when every one is present and clean.

        ``None`` when any cell is missing or damaged — the caller then
        materializes the group and walks it cell by cell (which is
        where damaged files get reported and re-run).  Group streams
        are independent, so a fully-cached group can skip even its
        dataset generation.  The read is one bulk
        :meth:`~repro.engine.store.ResultStore.load_group` call, which
        the SQLite backend answers with a single indexed query.
        """
        values = self.store.load_group(names)
        if values is None:
            return None
        self.outcome.reused.extend(names)
        return values

    def cached_values(
        self, name: str, fingerprint: str
    ) -> Optional[Dict[str, object]]:
        """The stored values of one cell, iff reusable at this point.

        Damaged files and fingerprint mismatches (a schedule that
        reaches the cell with a different stream state) are recorded in
        ``outcome.invalid`` and answered with ``None`` — the cell then
        re-runs and its file is rewritten.
        """
        payload, problem = self.store.load_cell(name)
        if problem is not None:
            self.outcome.invalid.append(name)
            self.log(f"damaged cell file ({problem}): {name} — re-running")
            return None
        if payload is None:
            return None
        if payload["seed_state"] != fingerprint:
            self.outcome.invalid.append(name)
            self.log(f"stale seed fingerprint: {name} — re-running")
            return None
        self.outcome.reused.append(name)
        return payload["values"]


def _sweep_table2(spec: Table2Spec, ledger: _CellLedger) -> object:
    from repro.experiments.table2 import (
        Table2Cell,
        Table2Report,
        prepare_table2_group,
        run_table2_cell,
        skip_table2_cell,
    )

    config = spec.config
    report = Table2Report(
        datasets=spec.datasets,
        families=spec.families,
        algorithms=spec.algorithms,
    )
    master = spawn_rngs(config.seed, len(spec.datasets) * len(spec.families))
    stream_idx = 0
    for ds_name in spec.datasets:
        for family in spec.families:
            rng = master[stream_idx]
            stream_idx += 1
            group = (ds_name, family)
            names = {
                alg: cell_id("table2", group, (alg,))
                for alg in spec.algorithms
            }
            cached = ledger.reuse_whole_group(list(names.values()))
            if cached is not None:
                for alg in spec.algorithms:
                    values = cached[names[alg]]
                    report.cells[(ds_name, family, alg)] = Table2Cell(
                        theta=values["theta"], quality=values["quality"]
                    )
                ledger.log(f"table2/{ds_name}/{family}: reused all cells")
                continue
            pair, n_classes = prepare_table2_group(ds_name, family, rng, config)
            distances = None
            with _group_scope(config):
                for alg in spec.algorithms:
                    fingerprint = _seed_fingerprint(rng)
                    values = ledger.cached_values(names[alg], fingerprint)
                    if values is not None:
                        skip_table2_cell(rng, config)
                        cell = Table2Cell(
                            theta=values["theta"], quality=values["quality"]
                        )
                    else:
                        if distances is None:
                            distances = pair.uncertain.pairwise_ed()
                        cell = run_table2_cell(
                            alg, pair, n_classes, rng, config, distances
                        )
                        ledger.store.write_cell(
                            "table2",
                            group,
                            (alg,),
                            fingerprint,
                            {"theta": cell.theta, "quality": cell.quality},
                        )
                        ledger.outcome.executed.append(names[alg])
                        ledger.log(f"table2/{ds_name}/{family}/{alg}: done")
                    report.cells[(ds_name, family, alg)] = cell
    return report


def _sweep_table3(spec: Table3Spec, ledger: _CellLedger) -> object:
    from repro.experiments.table3 import (
        Table3Report,
        prepare_table3_group,
        run_table3_cell,
        skip_table3_cell,
    )

    config = spec.config
    report = Table3Report(
        datasets=spec.datasets,
        cluster_counts=spec.cluster_counts,
        algorithms=spec.algorithms,
    )
    streams = spawn_rngs(config.seed, len(spec.datasets))
    for ds_name, ds_rng in zip(spec.datasets, streams):
        cells = [
            (k, alg) for k in spec.cluster_counts for alg in spec.algorithms
        ]
        names = {
            (k, alg): cell_id("table3", (ds_name,), (f"k{k}", alg))
            for k, alg in cells
        }
        cached = ledger.reuse_whole_group([names[key] for key in cells])
        if cached is not None:
            for k, alg in cells:
                report.quality[(ds_name, k, alg)] = cached[names[(k, alg)]][
                    "quality"
                ]
            ledger.log(f"table3/{ds_name}: reused all cells")
            continue
        dataset = prepare_table3_group(ds_name, ds_rng, config)
        distances = None
        with _group_scope(config):
            for k, alg in cells:
                fingerprint = _seed_fingerprint(ds_rng)
                values = ledger.cached_values(names[(k, alg)], fingerprint)
                if values is not None:
                    skip_table3_cell(ds_rng, config)
                    quality = float(values["quality"])
                else:
                    if distances is None:
                        distances = dataset.pairwise_ed()
                    quality = run_table3_cell(
                        alg, dataset, k, ds_rng, config, distances
                    )
                    ledger.store.write_cell(
                        "table3",
                        (ds_name,),
                        (f"k{k}", alg),
                        fingerprint,
                        {"quality": quality},
                    )
                    ledger.outcome.executed.append(names[(k, alg)])
                    ledger.log(f"table3/{ds_name}/k{k}/{alg}: done")
                report.quality[(ds_name, k, alg)] = quality
    return report


def _sweep_figure4(spec: Figure4Spec, ledger: _CellLedger) -> object:
    from repro.experiments.figure4 import (
        Figure4Report,
        figure4_roster,
        prepare_figure4_group,
        run_figure4_cell,
        skip_figure4_cell,
    )

    config = spec.config
    report = Figure4Report(
        datasets=spec.datasets,
        slow_group=spec.slow_group,
        fast_group=spec.fast_group,
    )
    roster = figure4_roster(spec.slow_group, spec.fast_group)
    streams = spawn_rngs(config.seed, len(spec.datasets))
    for ds_name, ds_rng in zip(spec.datasets, streams):
        names = {
            alg: cell_id("figure4", (ds_name,), (alg,)) for alg in roster
        }
        cached = ledger.reuse_whole_group([names[alg] for alg in roster])
        if cached is not None:
            for alg in roster:
                report.runtimes_ms[(ds_name, alg)] = float(
                    cached[names[alg]]["runtime_ms"]
                )
            ledger.log(f"figure4/{ds_name}: reused all cells")
            continue
        dataset = prepare_figure4_group(ds_name, ds_rng, config)
        k = min(spec.n_clusters, len(dataset) - 1)
        with _group_scope(config):
            for alg in roster:
                fingerprint = _seed_fingerprint(ds_rng)
                values = ledger.cached_values(names[alg], fingerprint)
                if values is not None:
                    skip_figure4_cell(ds_rng, config)
                    runtime_ms = float(values["runtime_ms"])
                else:
                    runtime_ms = run_figure4_cell(
                        alg, dataset, k, ds_rng, config
                    )
                    ledger.store.write_cell(
                        "figure4",
                        (ds_name,),
                        (alg,),
                        fingerprint,
                        {"runtime_ms": runtime_ms},
                    )
                    ledger.outcome.executed.append(names[alg])
                    ledger.log(f"figure4/{ds_name}/{alg}: done")
                report.runtimes_ms[(ds_name, alg)] = runtime_ms
    return report


def _sweep_figure5(spec: Figure5Spec, ledger: _CellLedger) -> object:
    from repro.experiments.figure5 import (
        Figure5Report,
        prepare_figure5_base,
        prepare_figure5_fraction,
        run_figure5_cell,
        skip_figure5_cell,
    )

    config = spec.config
    report = Figure5Report(
        fractions=spec.fractions, algorithms=spec.algorithms
    )
    names = {
        (frac, alg): cell_id("figure5", (f"f{frac}",), (alg,))
        for frac in spec.fractions
        for alg in spec.algorithms
    }
    # Figure 5's fractions share one data stream (each subset draw
    # consumes it), so the surface can only skip dataset synthesis when
    # *every* cell is reusable; otherwise the full sequence is replayed.
    cached = ledger.reuse_whole_group(
        [names[key] for key in names]
    )
    if cached is not None:
        for (frac, alg), name in names.items():
            values = cached[name]
            report.runtimes_ms[(frac, alg)] = float(values["runtime_ms"])
            report.sizes[frac] = int(values["n"])
        ledger.log("figure5: reused all cells")
        return report
    full, rng_data, rng_runs = prepare_figure5_base(config, spec.base_size)
    for frac in spec.fractions:
        subset = prepare_figure5_fraction(full, frac, rng_data)
        report.sizes[frac] = len(subset)
        k = min(FIGURE5_K, len(subset) - 1)
        with _group_scope(config):
            for alg in spec.algorithms:
                fingerprint = _seed_fingerprint(rng_runs)
                values = ledger.cached_values(
                    names[(frac, alg)], fingerprint
                )
                if values is not None:
                    skip_figure5_cell(rng_runs, config)
                    runtime_ms = float(values["runtime_ms"])
                else:
                    runtime_ms = run_figure5_cell(
                        alg, subset, k, rng_runs, config
                    )
                    ledger.store.write_cell(
                        "figure5",
                        (f"f{frac}",),
                        (alg,),
                        fingerprint,
                        {"runtime_ms": runtime_ms, "n": len(subset)},
                    )
                    ledger.outcome.executed.append(names[(frac, alg)])
                    ledger.log(f"figure5/f{frac}/{alg}: done")
                report.runtimes_ms[(frac, alg)] = runtime_ms
    return report


_SURFACE_RUNNERS = {
    "table2": _sweep_table2,
    "table3": _sweep_table3,
    "figure4": _sweep_figure4,
    "figure5": _sweep_figure5,
}


def run_sweep(
    grid: SweepGrid,
    store: Union[str, Path, ResultStore],
    resume: bool = False,
    progress: Progress = None,
    store_backend: Optional[str] = None,
) -> SweepOutcome:
    """Execute (or resume) one paper-grid sweep against a result store.

    Parameters
    ----------
    grid:
        The surfaces to run; see :class:`SweepGrid` / :func:`paper_grid`.
    store:
        Result-store path (or an already-open
        :class:`~repro.engine.store.ResultStore`).  Created when new;
        an existing store must carry the same grid manifest (anything
        else raises :class:`~repro.exceptions.SweepStoreError`).
    resume:
        Reuse completed cells from the store, replaying their seed
        consumption so pending cells get bit-identical streams.
        Without ``resume``, a store that already holds cells is
        refused.
    progress:
        Optional ``callable(str)`` receiving one line per cell/group
        event (the CLI passes ``print``).
    store_backend:
        ``"json"`` or ``"sqlite"``; ``None`` resolves from the path
        (directory vs ``.sqlite`` file,
        :func:`repro.engine.store.infer_backend`).

    Returns
    -------
    SweepOutcome
        Executed/reused/invalid cell ids plus one report per surface,
        each equal to its direct runner's output for the same spec —
        on either store backend.
    """
    sweep_store = open_store(store, backend=store_backend)
    borrowed = isinstance(store, ResultStore)
    try:
        sweep_store.prepare(grid.describe(), resume)
        outcome = SweepOutcome(grid=grid, store_root=sweep_store.path)
        ledger = _CellLedger(
            sweep_store, outcome, progress or (lambda _msg: None)
        )
        for name in SWEEP_SURFACES:
            spec = getattr(grid, name)
            if spec is not None:
                setattr(outcome, name, _SURFACE_RUNNERS[name](spec, ledger))
        return outcome
    finally:
        if not borrowed:
            sweep_store.close()
