"""Paper-grid sweep orchestrator: one shared-cache schedule for the grid.

The paper's headline artifacts (Tables 2-3, Figures 4-5) are a *grid*
of run-sets — datasets x algorithms x parameters — and every cell that
shares a dataset also shares that dataset's off-line work: the stacked
moment matrices, the compiled sampling plan, and the pairwise ``ÊD``
matrix of the distance plane.  The experiment runners already share
those caches *within* one invocation; this module turns the whole grid
into one explicit schedule of dataset groups so that

* each dataset is materialized **once** and every cell that needs it
  reads the same object (hence the same moment matrices, the same
  cached :meth:`~repro.objects.dataset.UncertainDataset.pairwise_ed`
  matrix and the same compiled sampling plan);
* under the ``processes``/``auto`` backends the group's stable arrays
  are published to shared memory **once** for all of its cells
  (:func:`repro.engine.backends.shared_block_registry`), instead of
  once per run-set;
* every cell's result lands in a **resumable JSON store**: one file per
  cell, written atomically, carrying the cell's values plus a
  fingerprint of the seed stream that produced them.

Bit-identity contract
---------------------
A sweep cell equals the corresponding cell of a direct
``run_table2``/``run_table3``/``run_figure4``/``run_figure5`` call with
the same spec, on every backend: the orchestrator executes the exact
group/cell helpers the runners themselves use, in the exact iteration
order, consuming the exact seed streams.  On ``resume``, completed
cells are skipped but their seed consumption is *replayed* (the
``skip_*_cell`` helpers), so every pending cell still sees the streams
an uninterrupted run would have produced — the resumed store is
byte-identical to an uninterrupted one for the deterministic surfaces
(Tables 2-3; the Figure cells store measured wall-clock runtimes).

Result stores
-------------
Cell persistence goes through the pluggable store layer
(:mod:`repro.engine.store`): the ``json`` backend keeps the original
directory layout (``manifest.json`` plus one atomically written file
per cell), the ``sqlite`` backend keeps everything in one WAL-mode
database file with the values exploded into an indexed columnar table.
A cell payload is ``{"schema": ..., "surface": ..., "group": [...],
"cell": [...], "seed_state": "<sha1>", "status": "done",
"values": {...}}`` on every backend.  Corrupted or partial cells (a
killed run can only ever leave a stray ``*.tmp`` file or an aborted
transaction behind — final writes are atomic — but truncation or
manual editing happens) are detected, reported in
:attr:`SweepOutcome.invalid`, and re-run.

Multi-worker execution
----------------------
:func:`run_sweep_worker` executes the same schedule as a claim-based
*worker*: pending cells are leased on the store before running
(:meth:`~repro.engine.store.ResultStore.claim_cell`), leases are
heartbeated while a cell computes, foreign-leased cells are deferred
with their seed consumption replayed, and the walk repeats until the
grid is fully resolved — reclaiming expired leases of dead workers on
the way.  :func:`run_sweep_workers` drives N such workers as local
processes plus a final collection pass.  Because every cell is
deterministic given the grid (the fingerprint replay above), N workers
produce a store *identical* to one worker's: same cells, same bytes.
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading
import time
import uuid
from contextlib import contextmanager, nullcontext
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.datagen.uncertainty_gen import PDF_FAMILIES
from repro.engine.backends import shared_block_registry
from repro.engine.store import (
    SWEEP_SCHEMA_VERSION,
    JsonStore,
    ResultStore,
    cell_id,
    open_store,
)
from repro.engine.store import seed_fingerprint as _seed_fingerprint
from repro.exceptions import InvalidParameterError, SweepStoreError
from repro.experiments.config import (
    ACCURACY_ROSTER,
    FAST_ROSTER,
    SCALABILITY_ROSTER,
    SLOW_ROSTER,
    ExperimentConfig,
)
from repro.experiments.figure4 import FIGURE4_DATASETS
from repro.experiments.figure5 import FIGURE5_FRACTIONS, FIGURE5_K
from repro.experiments.table2 import TABLE2_DATASETS
from repro.experiments.table3 import TABLE3_CLUSTER_COUNTS, TABLE3_DATASETS
from repro.utils.rng import spawn_rngs

#: Execution order of the surfaces (each derives its streams from its
#: own ``config.seed``, so the order never affects any cell's seeds).
SWEEP_SURFACES = ("table2", "table3", "figure4", "figure5")

#: Default lease duration for multi-worker execution.  A worker
#: heartbeats at a third of this, so a lease only expires when its
#: worker has been dead (or wedged) for most of the ttl.
DEFAULT_LEASE_TTL = 30.0

#: Smallest accepted lease ttl.  The heartbeat interval is
#: ``max(ttl / 3, 0.05)`` seconds — below ``3 * 0.05`` the clamped
#: interval no longer fits three beats inside one ttl, so a healthy
#: worker's lease can expire between its own renewals and peers would
#: "reclaim" cells that are actively running.  Rejected eagerly at
#: claimer construction and at the CLI (``--lease-ttl``).
MIN_LEASE_TTL = 0.15



# ----------------------------------------------------------------------
# Grid specification
# ----------------------------------------------------------------------
def _freeze(spec, **fields) -> None:
    for name, value in fields.items():
        object.__setattr__(spec, name, value)


@dataclass(frozen=True)
class Table2Spec:
    """One Table 2 sub-grid: datasets x families x algorithms."""

    config: ExperimentConfig = ExperimentConfig()
    datasets: Tuple[str, ...] = TABLE2_DATASETS
    families: Tuple[str, ...] = PDF_FAMILIES
    algorithms: Tuple[str, ...] = ACCURACY_ROSTER

    def __post_init__(self) -> None:
        _freeze(
            self,
            datasets=tuple(self.datasets),
            families=tuple(self.families),
            algorithms=tuple(self.algorithms),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "datasets": list(self.datasets),
            "families": list(self.families),
            "algorithms": list(self.algorithms),
        }


@dataclass(frozen=True)
class Table3Spec:
    """One Table 3 sub-grid: datasets x cluster counts x algorithms."""

    config: ExperimentConfig = ExperimentConfig(scale=0.02)
    datasets: Tuple[str, ...] = TABLE3_DATASETS
    cluster_counts: Tuple[int, ...] = TABLE3_CLUSTER_COUNTS
    algorithms: Tuple[str, ...] = ACCURACY_ROSTER

    def __post_init__(self) -> None:
        _freeze(
            self,
            datasets=tuple(self.datasets),
            cluster_counts=tuple(int(k) for k in self.cluster_counts),
            algorithms=tuple(self.algorithms),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "datasets": list(self.datasets),
            "cluster_counts": list(self.cluster_counts),
            "algorithms": list(self.algorithms),
        }


@dataclass(frozen=True)
class Figure4Spec:
    """One Figure 4 sub-grid: datasets x (slow + fast + UCPC) roster."""

    config: ExperimentConfig = ExperimentConfig(scale=0.02, n_runs=3)
    datasets: Tuple[str, ...] = FIGURE4_DATASETS
    slow_group: Tuple[str, ...] = SLOW_ROSTER
    fast_group: Tuple[str, ...] = FAST_ROSTER
    n_clusters: int = 10

    def __post_init__(self) -> None:
        _freeze(
            self,
            datasets=tuple(self.datasets),
            slow_group=tuple(self.slow_group),
            fast_group=tuple(self.fast_group),
            n_clusters=int(self.n_clusters),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "datasets": list(self.datasets),
            "slow_group": list(self.slow_group),
            "fast_group": list(self.fast_group),
            "n_clusters": self.n_clusters,
        }


@dataclass(frozen=True)
class Figure5Spec:
    """One Figure 5 sub-grid: fractions x scalability roster."""

    config: ExperimentConfig = ExperimentConfig(n_runs=3)
    fractions: Tuple[float, ...] = FIGURE5_FRACTIONS
    algorithms: Tuple[str, ...] = SCALABILITY_ROSTER
    base_size: int = 20000

    def __post_init__(self) -> None:
        _freeze(
            self,
            fractions=tuple(float(f) for f in self.fractions),
            algorithms=tuple(self.algorithms),
            base_size=int(self.base_size),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "config": asdict(self.config),
            "fractions": list(self.fractions),
            "algorithms": list(self.algorithms),
            "base_size": self.base_size,
        }


@dataclass(frozen=True)
class SweepGrid:
    """Which surfaces a sweep covers, each with its own spec.

    A ``None`` surface is excluded.  :func:`paper_grid` builds the full
    default grid (every surface at its runner-default shape).
    """

    table2: Optional[Table2Spec] = None
    table3: Optional[Table3Spec] = None
    figure4: Optional[Figure4Spec] = None
    figure5: Optional[Figure5Spec] = None

    def __post_init__(self) -> None:
        if not any(
            (self.table2, self.table3, self.figure4, self.figure5)
        ):
            raise InvalidParameterError(
                "a SweepGrid needs at least one surface spec"
            )

    def describe(self) -> Dict[str, object]:
        """Deterministic JSON-ready description (the manifest body)."""
        surfaces: Dict[str, object] = {}
        for name in SWEEP_SURFACES:
            spec = getattr(self, name)
            if spec is not None:
                surfaces[name] = spec.describe()
        return {"schema": SWEEP_SCHEMA_VERSION, "surfaces": surfaces}


def paper_grid(
    table2_config: Optional[ExperimentConfig] = None,
    table3_config: Optional[ExperimentConfig] = None,
    figure4_config: Optional[ExperimentConfig] = None,
    figure5_config: Optional[ExperimentConfig] = None,
    figure5_base_size: int = 20000,
) -> SweepGrid:
    """The full paper grid, one spec per surface.

    Defaults mirror each runner's own default config (Table 3 and
    Figure 4 scale-capped for laptop runtimes, exactly as
    ``run_table3``/``run_figure4`` default).
    """
    return SweepGrid(
        table2=Table2Spec(config=table2_config or ExperimentConfig()),
        table3=Table3Spec(
            config=table3_config or ExperimentConfig(scale=0.02)
        ),
        figure4=Figure4Spec(
            config=figure4_config or ExperimentConfig(scale=0.02, n_runs=3)
        ),
        figure5=Figure5Spec(
            config=figure5_config or ExperimentConfig(n_runs=3),
            base_size=figure5_base_size,
        ),
    )


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
#: Backward-compatible name for the original directory-backed store;
#: the store layer now lives in :mod:`repro.engine.store` behind the
#: pluggable :class:`~repro.engine.store.ResultStore` API.
SweepStore = JsonStore


# ----------------------------------------------------------------------
# Outcome
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """What one :func:`run_sweep` invocation did, plus the reports."""

    grid: SweepGrid
    store_root: Path
    executed: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    invalid: List[str] = field(default_factory=list)
    #: Cells skipped because another worker held their lease (only ever
    #: non-empty on intermediate worker passes; a returned outcome has
    #: absorbed every deferred cell via a later pass).
    deferred: List[str] = field(default_factory=list)
    #: Grid walks a worker needed before every cell was accounted for.
    passes: int = 1
    table2: Optional[object] = None  # Table2Report
    table3: Optional[object] = None  # Table3Report
    figure4: Optional[object] = None  # Figure4Report
    figure5: Optional[object] = None  # Figure5Report

    def artifacts(self):
        """The four reports as a :class:`PaperArtifacts` bundle."""
        from repro.experiments.reporting import PaperArtifacts

        missing = [
            name
            for name in SWEEP_SURFACES
            if getattr(self, name) is None
        ]
        if missing:
            raise InvalidParameterError(
                "artifacts() needs every surface in the grid; missing: "
                + ", ".join(missing)
            )
        return PaperArtifacts(
            table2=self.table2,
            table3=self.table3,
            figure4=self.figure4,
            figure5=self.figure5,
        )

    def summary(self) -> str:
        parts = [
            f"{len(self.executed)} cells run",
            f"{len(self.reused)} reused",
        ]
        if self.invalid:
            parts.append(f"{len(self.invalid)} damaged cells re-run")
        if self.passes > 1:
            parts.append(f"{self.passes} passes")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
Progress = Optional[Callable[[str], None]]


@contextmanager
def _group_scope(config: ExperimentConfig):
    """Shared-memory publication scope for one dataset group.

    Under the ``processes``/``auto`` backends, every run-set inside the
    scope publishes the group's stable arrays (moment matrices, ``ÊD``
    matrix) once via :func:`shared_block_registry`; the other backends
    share the address space anyway, so no scope is needed.
    """
    if config.backend in ("processes", "auto"):
        with shared_block_registry():
            yield
    else:
        yield


def _default_worker_id() -> str:
    """A globally unique lease owner id for one worker process.

    ``host:pid:uuid4-prefix`` — the host/pid prefix makes ids human-
    attributable in logs, and the 8-hex (32-bit) uuid4 suffix
    disambiguates workers that *share* a host and pid (sequential
    reuse after process exit, or several claimers in one process).
    Collision behavior: two workers would need the same host, the same
    pid *and* the same 32-bit suffix (probability 2**-32 per such
    pair); the failure mode is benign for correctness — a same-id pair
    can renew/release each other's leases, so a cell could run twice,
    but cell writes are deterministic and idempotent (both writers
    produce the same bytes).  Uniqueness of the generator is pinned in
    ``tests/test_sweep.py``.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


class _LeaseClaimer:
    """Claim/heartbeat/release plumbing for one sweep worker.

    Claims and releases go through a dedicated store handle (not the
    sweep's own, so lease traffic never interleaves with a payload
    transaction), and the heartbeat thread opens its *own* handle per
    leased cell — a ``sqlite3.Connection`` is single-thread by default
    and there is no reason to weaken that.
    """

    def __init__(self, store: ResultStore, owner: str, ttl: float, log):
        if float(ttl) < MIN_LEASE_TTL:
            raise InvalidParameterError(
                f"lease ttl ({ttl}) must be >= {MIN_LEASE_TTL}s: the "
                "heartbeat interval clamps at 0.05s, and a ttl below "
                "three beats lets a healthy worker's lease expire "
                "between its own renewals"
            )
        self.owner = owner
        self.ttl = float(ttl)
        self.log = log
        self.store_path = store.path
        self.store_backend = store.backend
        self.lease_store = open_store(store.path, backend=store.backend)
        # Deterministic per-owner rotation offset for order_groups.
        self.offset = int(hashlib.sha1(owner.encode()).hexdigest()[:8], 16)

    def close(self) -> None:
        self.lease_store.close()

    def claim(self, name: str) -> bool:
        return self.lease_store.claim_cell(name, self.owner, self.ttl)

    def release(self, name: str) -> None:
        self.lease_store.release_cell(name, self.owner)

    @contextmanager
    def heartbeat(self, name: str):
        """Renew the lease on ``name`` every ttl/3 while the body runs.

        Losing the lease (stolen after a stall) is logged but does not
        abort the computation: the cell is deterministic, so finishing
        and writing anyway is harmless — both writers produce the same
        bytes.
        """
        stop = threading.Event()
        interval = max(self.ttl / 3.0, 0.05)

        def beat() -> None:
            beat_store = open_store(
                self.store_path, backend=self.store_backend
            )
            try:
                while not stop.wait(interval):
                    try:
                        if not beat_store.renew_lease(
                            name, self.owner, self.ttl
                        ):
                            self.log(
                                f"lease lost for {name}; finishing anyway "
                                "(cell writes are idempotent)"
                            )
                            return
                    except SweepStoreError:
                        continue  # transient substrate hiccup; keep trying
            finally:
                beat_store.close()

        thread = threading.Thread(
            target=beat, name="sweep-lease-heartbeat", daemon=True
        )
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join(timeout=max(1.0, interval * 2))


class _CellLedger:
    """Per-surface bookkeeping shared by the four surface loops.

    With a ``claimer`` the ledger runs in multi-worker mode: a cell is
    only executed after its lease is claimed, foreign-leased cells are
    *deferred* (their seed consumption is still replayed, so the walk
    stays on the exact single-worker streams), and executed cells
    heartbeat their lease while running.
    """

    def __init__(
        self,
        store: ResultStore,
        outcome: SweepOutcome,
        log,
        claimer: Optional[_LeaseClaimer] = None,
    ):
        self.store = store
        self.outcome = outcome
        self.log = log
        self.claimer = claimer

    def order_groups(self, groups: List) -> List:
        """Iteration order of a surface's dataset groups.

        Single-worker sweeps keep the natural order.  Workers rotate
        the list by an owner-derived offset so concurrent workers start
        in different groups; correctness never depends on this (group
        seed streams are independent and every group is still walked),
        it only reduces duplicate dataset materialization and claim
        contention.
        """
        if self.claimer is None or len(groups) < 2:
            return groups
        shift = self.claimer.offset % len(groups)
        return groups[shift:] + groups[:shift]

    def begin_cell(self, name: str) -> bool:
        """Whether this worker should run the cell (claims its lease)."""
        if self.claimer is None:
            return True
        if self.claimer.claim(name):
            return True
        self.outcome.deferred.append(name)
        self.log(f"deferred (leased by another worker): {name}")
        return False

    def running_cell(self, name: str):
        """Context holding the cell's lease alive while it computes."""
        if self.claimer is None:
            return nullcontext()
        return self.claimer.heartbeat(name)

    def finish_cell(self, name: str) -> None:
        """Release the lease after the cell's payload is durably stored."""
        if self.claimer is not None:
            self.claimer.release(name)

    def reuse_whole_group(
        self, names: List[str]
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """All cells of a group, when every one is present and clean.

        ``None`` when any cell is missing or damaged — the caller then
        materializes the group and walks it cell by cell (which is
        where damaged files get reported and re-run).  Group streams
        are independent, so a fully-cached group can skip even its
        dataset generation.  The read is one bulk
        :meth:`~repro.engine.store.ResultStore.load_group` call, which
        the SQLite backend answers with a single indexed query.
        """
        values = self.store.load_group(names)
        if values is None:
            return None
        self.outcome.reused.extend(names)
        return values

    def cached_values(
        self, name: str, fingerprint: str
    ) -> Optional[Dict[str, object]]:
        """The stored values of one cell, iff reusable at this point.

        Damaged files and fingerprint mismatches (a schedule that
        reaches the cell with a different stream state) are recorded in
        ``outcome.invalid`` and answered with ``None`` — the cell then
        re-runs and its file is rewritten.
        """
        payload, problem = self.store.load_cell(name)
        if problem is not None:
            self.outcome.invalid.append(name)
            self.log(f"damaged cell file ({problem}): {name} — re-running")
            return None
        if payload is None:
            return None
        if payload["seed_state"] != fingerprint:
            self.outcome.invalid.append(name)
            self.log(f"stale seed fingerprint: {name} — re-running")
            return None
        self.outcome.reused.append(name)
        return payload["values"]


def _sweep_table2(spec: Table2Spec, ledger: _CellLedger) -> object:
    from repro.experiments.table2 import (
        Table2Cell,
        Table2Report,
        prepare_table2_group,
        run_table2_cell,
        skip_table2_cell,
    )

    config = spec.config
    report = Table2Report(
        datasets=spec.datasets,
        families=spec.families,
        algorithms=spec.algorithms,
    )
    master = spawn_rngs(config.seed, len(spec.datasets) * len(spec.families))
    groups = [
        (ds_name, family)
        for ds_name in spec.datasets
        for family in spec.families
    ]
    for stream_idx, (ds_name, family) in ledger.order_groups(
        list(enumerate(groups))
    ):
        rng = master[stream_idx]
        group = (ds_name, family)
        names = {
            alg: cell_id("table2", group, (alg,))
            for alg in spec.algorithms
        }
        cached = ledger.reuse_whole_group(list(names.values()))
        if cached is not None:
            for alg in spec.algorithms:
                values = cached[names[alg]]
                report.cells[(ds_name, family, alg)] = Table2Cell(
                    theta=values["theta"], quality=values["quality"]
                )
            ledger.log(f"table2/{ds_name}/{family}: reused all cells")
            continue
        pair, n_classes = prepare_table2_group(ds_name, family, rng, config)
        distances = None
        with _group_scope(config):
            for alg in spec.algorithms:
                fingerprint = _seed_fingerprint(rng)
                values = ledger.cached_values(names[alg], fingerprint)
                if values is not None:
                    skip_table2_cell(rng, config)
                    cell = Table2Cell(
                        theta=values["theta"], quality=values["quality"]
                    )
                elif not ledger.begin_cell(names[alg]):
                    skip_table2_cell(rng, config)
                    cell = None
                else:
                    if distances is None:
                        distances = pair.uncertain.pairwise_ed()
                    with ledger.running_cell(names[alg]):
                        cell = run_table2_cell(
                            alg, pair, n_classes, rng, config, distances
                        )
                    ledger.store.write_cell(
                        "table2",
                        group,
                        (alg,),
                        fingerprint,
                        {"theta": cell.theta, "quality": cell.quality},
                    )
                    ledger.finish_cell(names[alg])
                    ledger.outcome.executed.append(names[alg])
                    ledger.log(f"table2/{ds_name}/{family}/{alg}: done")
                if cell is not None:
                    report.cells[(ds_name, family, alg)] = cell
    return report


def _sweep_table3(spec: Table3Spec, ledger: _CellLedger) -> object:
    from repro.experiments.table3 import (
        Table3Report,
        prepare_table3_group,
        run_table3_cell,
        skip_table3_cell,
    )

    config = spec.config
    report = Table3Report(
        datasets=spec.datasets,
        cluster_counts=spec.cluster_counts,
        algorithms=spec.algorithms,
    )
    streams = spawn_rngs(config.seed, len(spec.datasets))
    for ds_name, ds_rng in ledger.order_groups(
        list(zip(spec.datasets, streams))
    ):
        cells = [
            (k, alg) for k in spec.cluster_counts for alg in spec.algorithms
        ]
        names = {
            (k, alg): cell_id("table3", (ds_name,), (f"k{k}", alg))
            for k, alg in cells
        }
        cached = ledger.reuse_whole_group([names[key] for key in cells])
        if cached is not None:
            for k, alg in cells:
                report.quality[(ds_name, k, alg)] = cached[names[(k, alg)]][
                    "quality"
                ]
            ledger.log(f"table3/{ds_name}: reused all cells")
            continue
        dataset = prepare_table3_group(ds_name, ds_rng, config)
        distances = None
        with _group_scope(config):
            for k, alg in cells:
                fingerprint = _seed_fingerprint(ds_rng)
                values = ledger.cached_values(names[(k, alg)], fingerprint)
                if values is not None:
                    skip_table3_cell(ds_rng, config)
                    quality = float(values["quality"])
                elif not ledger.begin_cell(names[(k, alg)]):
                    skip_table3_cell(ds_rng, config)
                    quality = None
                else:
                    if distances is None:
                        distances = dataset.pairwise_ed()
                    with ledger.running_cell(names[(k, alg)]):
                        quality = run_table3_cell(
                            alg, dataset, k, ds_rng, config, distances
                        )
                    ledger.store.write_cell(
                        "table3",
                        (ds_name,),
                        (f"k{k}", alg),
                        fingerprint,
                        {"quality": quality},
                    )
                    ledger.finish_cell(names[(k, alg)])
                    ledger.outcome.executed.append(names[(k, alg)])
                    ledger.log(f"table3/{ds_name}/k{k}/{alg}: done")
                if quality is not None:
                    report.quality[(ds_name, k, alg)] = quality
    return report


def _sweep_figure4(spec: Figure4Spec, ledger: _CellLedger) -> object:
    from repro.experiments.figure4 import (
        Figure4Report,
        figure4_roster,
        prepare_figure4_group,
        run_figure4_cell,
        skip_figure4_cell,
    )

    config = spec.config
    report = Figure4Report(
        datasets=spec.datasets,
        slow_group=spec.slow_group,
        fast_group=spec.fast_group,
    )
    roster = figure4_roster(spec.slow_group, spec.fast_group)
    streams = spawn_rngs(config.seed, len(spec.datasets))
    for ds_name, ds_rng in ledger.order_groups(
        list(zip(spec.datasets, streams))
    ):
        names = {
            alg: cell_id("figure4", (ds_name,), (alg,)) for alg in roster
        }
        cached = ledger.reuse_whole_group([names[alg] for alg in roster])
        if cached is not None:
            for alg in roster:
                report.runtimes_ms[(ds_name, alg)] = float(
                    cached[names[alg]]["runtime_ms"]
                )
            ledger.log(f"figure4/{ds_name}: reused all cells")
            continue
        dataset = prepare_figure4_group(ds_name, ds_rng, config)
        k = min(spec.n_clusters, len(dataset) - 1)
        with _group_scope(config):
            for alg in roster:
                fingerprint = _seed_fingerprint(ds_rng)
                values = ledger.cached_values(names[alg], fingerprint)
                if values is not None:
                    skip_figure4_cell(ds_rng, config)
                    runtime_ms = float(values["runtime_ms"])
                elif not ledger.begin_cell(names[alg]):
                    skip_figure4_cell(ds_rng, config)
                    runtime_ms = None
                else:
                    with ledger.running_cell(names[alg]):
                        runtime_ms = run_figure4_cell(
                            alg, dataset, k, ds_rng, config
                        )
                    ledger.store.write_cell(
                        "figure4",
                        (ds_name,),
                        (alg,),
                        fingerprint,
                        {"runtime_ms": runtime_ms},
                    )
                    ledger.finish_cell(names[alg])
                    ledger.outcome.executed.append(names[alg])
                    ledger.log(f"figure4/{ds_name}/{alg}: done")
                if runtime_ms is not None:
                    report.runtimes_ms[(ds_name, alg)] = runtime_ms
    return report


def _sweep_figure5(spec: Figure5Spec, ledger: _CellLedger) -> object:
    from repro.experiments.figure5 import (
        Figure5Report,
        prepare_figure5_base,
        prepare_figure5_fraction,
        run_figure5_cell,
        skip_figure5_cell,
    )

    config = spec.config
    report = Figure5Report(
        fractions=spec.fractions, algorithms=spec.algorithms
    )
    names = {
        (frac, alg): cell_id("figure5", (f"f{frac}",), (alg,))
        for frac in spec.fractions
        for alg in spec.algorithms
    }
    # Figure 5's fractions share one data stream (each subset draw
    # consumes it), so the surface can only skip dataset synthesis when
    # *every* cell is reusable; otherwise the full sequence is replayed.
    cached = ledger.reuse_whole_group(
        [names[key] for key in names]
    )
    if cached is not None:
        for (frac, alg), name in names.items():
            values = cached[name]
            report.runtimes_ms[(frac, alg)] = float(values["runtime_ms"])
            report.sizes[frac] = int(values["n"])
        ledger.log("figure5: reused all cells")
        return report
    full, rng_data, rng_runs = prepare_figure5_base(config, spec.base_size)
    for frac in spec.fractions:
        subset = prepare_figure5_fraction(full, frac, rng_data)
        report.sizes[frac] = len(subset)
        k = min(FIGURE5_K, len(subset) - 1)
        with _group_scope(config):
            for alg in spec.algorithms:
                fingerprint = _seed_fingerprint(rng_runs)
                values = ledger.cached_values(
                    names[(frac, alg)], fingerprint
                )
                if values is not None:
                    skip_figure5_cell(rng_runs, config)
                    runtime_ms = float(values["runtime_ms"])
                elif not ledger.begin_cell(names[(frac, alg)]):
                    skip_figure5_cell(rng_runs, config)
                    runtime_ms = None
                else:
                    with ledger.running_cell(names[(frac, alg)]):
                        runtime_ms = run_figure5_cell(
                            alg, subset, k, rng_runs, config
                        )
                    ledger.store.write_cell(
                        "figure5",
                        (f"f{frac}",),
                        (alg,),
                        fingerprint,
                        {"runtime_ms": runtime_ms, "n": len(subset)},
                    )
                    ledger.finish_cell(names[(frac, alg)])
                    ledger.outcome.executed.append(names[(frac, alg)])
                    ledger.log(f"figure5/f{frac}/{alg}: done")
                if runtime_ms is not None:
                    report.runtimes_ms[(frac, alg)] = runtime_ms
    return report


_SURFACE_RUNNERS = {
    "table2": _sweep_table2,
    "table3": _sweep_table3,
    "figure4": _sweep_figure4,
    "figure5": _sweep_figure5,
}


def run_sweep(
    grid: SweepGrid,
    store: Union[str, Path, ResultStore],
    resume: bool = False,
    progress: Progress = None,
    store_backend: Optional[str] = None,
) -> SweepOutcome:
    """Execute (or resume) one paper-grid sweep against a result store.

    Parameters
    ----------
    grid:
        The surfaces to run; see :class:`SweepGrid` / :func:`paper_grid`.
    store:
        Result-store path (or an already-open
        :class:`~repro.engine.store.ResultStore`).  Created when new;
        an existing store must carry the same grid manifest (anything
        else raises :class:`~repro.exceptions.SweepStoreError`).
    resume:
        Reuse completed cells from the store, replaying their seed
        consumption so pending cells get bit-identical streams.
        Without ``resume``, a store that already holds cells is
        refused.
    progress:
        Optional ``callable(str)`` receiving one line per cell/group
        event (the CLI passes ``print``).
    store_backend:
        ``"json"`` or ``"sqlite"``; ``None`` resolves from the path
        (directory vs ``.sqlite`` file,
        :func:`repro.engine.store.infer_backend`).

    Returns
    -------
    SweepOutcome
        Executed/reused/invalid cell ids plus one report per surface,
        each equal to its direct runner's output for the same spec —
        on either store backend.
    """
    sweep_store = open_store(store, backend=store_backend)
    borrowed = isinstance(store, ResultStore)
    try:
        sweep_store.prepare(grid.describe(), resume)
        outcome = SweepOutcome(grid=grid, store_root=sweep_store.path)
        ledger = _CellLedger(
            sweep_store, outcome, progress or (lambda _msg: None)
        )
        _run_surfaces(grid, ledger, outcome)
        return outcome
    finally:
        if not borrowed:
            sweep_store.close()


def _run_surfaces(
    grid: SweepGrid, ledger: _CellLedger, outcome: SweepOutcome
) -> None:
    for name in SWEEP_SURFACES:
        spec = getattr(grid, name)
        if spec is not None:
            setattr(outcome, name, _SURFACE_RUNNERS[name](spec, ledger))


def _prepare_shared(
    sweep_store: ResultStore,
    grid: SweepGrid,
    attempts: int = 5,
    delay: float = 0.2,
) -> None:
    """Prepare a store that several workers may be creating at once.

    Workers always prepare with resume semantics (an existing store
    holding a peer's cells is the normal case).  Creation itself races:
    a second worker can observe the store half-born (a manifest tmp
    file, an empty database) for a moment, which ``prepare`` reports as
    a refusal — so a refusal is retried a few times before it is
    believed.  Genuine refusals (different grid) still raise, just a
    second late.
    """
    description = grid.describe()
    for attempt in range(attempts):
        try:
            sweep_store.prepare(description, resume=True)
            return
        except SweepStoreError:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)


def run_sweep_worker(
    grid: SweepGrid,
    store: Union[str, Path, ResultStore],
    worker_id: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.5,
    progress: Progress = None,
    store_backend: Optional[str] = None,
    max_passes: int = 0,
) -> SweepOutcome:
    """Join a (possibly shared) result store as one claim-based worker.

    The worker walks the grid exactly like :func:`run_sweep` with
    ``resume=True`` — same schedule, same seed streams — but before
    executing a pending cell it *claims* the cell's lease on the store.
    A cell leased to another worker is skipped for now (its seed
    consumption is replayed, so every later cell still sees the exact
    single-worker streams) and the walk repeats until no cell is left
    deferred; each repeat reuses everything that landed in the
    meantime, reclaims expired leases of dead workers, and waits
    ``poll_interval`` seconds between passes while peers compute.  The
    returned outcome's reports come from the final, fully-resolved
    pass, so they are identical to a single-worker sweep's.

    ``max_passes`` bounds the number of walks (0 = unbounded) and
    raises :class:`~repro.exceptions.SweepStoreError` when exceeded —
    a safety valve for tests; production workers wait out live peers.
    """
    log = progress or (lambda _msg: None)
    sweep_store = open_store(store, backend=store_backend)
    borrowed = isinstance(store, ResultStore)
    owner = worker_id or _default_worker_id()
    claimer = _LeaseClaimer(sweep_store, owner, lease_ttl, log)
    try:
        _prepare_shared(sweep_store, grid)
        executed: List[str] = []
        passes = 0
        while True:
            passes += 1
            outcome = SweepOutcome(grid=grid, store_root=sweep_store.path)
            ledger = _CellLedger(sweep_store, outcome, log, claimer)
            _run_surfaces(grid, ledger, outcome)
            executed.extend(outcome.executed)
            if not outcome.deferred:
                outcome.executed = executed
                outcome.passes = passes
                sweep_store.reap_leases()
                return outcome
            if max_passes and passes >= max_passes:
                raise SweepStoreError(
                    f"worker {owner} gave up after {passes} passes with "
                    f"{len(outcome.deferred)} cells still leased elsewhere"
                )
            log(
                f"worker {owner}: pass {passes} left "
                f"{len(outcome.deferred)} cells leased to other workers; "
                "waiting"
            )
            time.sleep(poll_interval)
    finally:
        claimer.close()
        if not borrowed:
            sweep_store.close()


def _worker_main(
    grid: SweepGrid,
    store_path: str,
    store_backend: Optional[str],
    worker_id: str,
    lease_ttl: float,
    poll_interval: float,
) -> None:
    """Child-process entry point of :func:`run_sweep_workers`."""
    run_sweep_worker(
        grid,
        store_path,
        worker_id=worker_id,
        lease_ttl=lease_ttl,
        poll_interval=poll_interval,
        store_backend=store_backend,
    )


def run_sweep_workers(
    grid: SweepGrid,
    store: Union[str, Path, ResultStore],
    workers: int = 2,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.5,
    progress: Progress = None,
    store_backend: Optional[str] = None,
) -> SweepOutcome:
    """Execute one grid with ``workers`` claim-based worker processes.

    Spawns ``workers`` child processes (``spawn`` start method — no
    inherited store handles), each running :func:`run_sweep_worker`
    against the same store, then runs a final in-process collection
    pass that assembles the reports (pure reuse when the children
    covered the grid; it also finishes any cells a dead child left
    behind, so a crashed worker degrades throughput, never the result).
    The final store is identical to a single-worker run's: every cell
    is produced by the same executors from the same seed streams, and
    lease bookkeeping is reaped on completion.
    """
    if workers < 1:
        raise InvalidParameterError(
            f"workers must be >= 1, got {workers}"
        )
    import multiprocessing

    log = progress or (lambda _msg: None)
    if isinstance(store, ResultStore):
        store_path, backend = store.path, store.backend
    else:
        store_path, backend = Path(store), store_backend
    context = multiprocessing.get_context("spawn")
    run_tag = uuid.uuid4().hex[:6]
    processes = []
    for index in range(workers):
        process = context.Process(
            target=_worker_main,
            args=(
                grid,
                str(store_path),
                backend,
                f"{socket.gethostname()}:w{index}:{run_tag}",
                lease_ttl,
                poll_interval,
            ),
        )
        process.start()
        processes.append(process)
        log(f"started sweep worker {index} (pid {process.pid})")
    for process in processes:
        process.join()
    failed = sum(1 for process in processes if process.exitcode != 0)
    if failed:
        log(f"{failed} worker(s) exited abnormally; collection pass "
            "will finish their cells")
    # Every worker is joined, so nobody can be mid-write: drop any
    # tmp residue a killed worker left (it would spoil the tree-bytes
    # identity with a single-worker store).
    cleanup_store = open_store(
        store,
        backend=None if isinstance(store, ResultStore) else store_backend,
    )
    try:
        stray = cleanup_store.discard_stray_tmp()
        if stray:
            log(f"removed {len(stray)} stray tmp file(s) from dead workers")
    finally:
        if not isinstance(store, ResultStore):
            cleanup_store.close()
    return run_sweep_worker(
        grid,
        store,
        worker_id=f"{socket.gethostname()}:collector:{run_tag}",
        lease_ttl=lease_ttl,
        poll_interval=poll_interval,
        progress=progress,
        store_backend=store_backend,
    )
