"""UCPC — U-Centroid-based Partitional Clustering (Algorithm 1, S7).

The paper's contribution: a local-search heuristic minimizing
``sum_C J(C)`` where ``J(C) = sum_o ÊD(o, C̄)`` is the summed squared
expected distance of the members to the cluster's U-centroid (Eq. (14)).
Theorem 3's closed form makes ``J`` computable from the Psi/Phi/Upsilon
statistics, and Corollary 1 makes each candidate relocation an O(m)
evaluation — yielding the paper's O(I·k·n·m) total complexity
(Proposition 5) with guaranteed convergence to a local minimum
(Proposition 4).

Algorithm outline (Alg. 1 of the paper):

1. Precompute every object's moment vectors (done once by
   :class:`~repro.objects.dataset.UncertainDataset`).
2. Take an initial partition.
3. Sweep the objects; for each, find the cluster whose gain
   ``[J(C_o \\ {o}) + J(C* ∪ {o})] - [J(C_o) + J(C*)]`` is minimal and
   relocate if that improves the global objective.
4. Repeat until a full sweep relocates nothing.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import (
    kmeanspp_seed_indices,
    partition_from_seeds,
    random_partition,
    random_seed_indices,
)
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


class UCPC(UncertainClusterer):
    """U-Centroid-based Partitional Clustering (the paper's Algorithm 1).

    Parameters
    ----------
    n_clusters:
        Number of output clusters ``k``.
    max_iter:
        Cap on full relocation sweeps (``I`` in Proposition 5).  The
        algorithm provably converges on its own (Proposition 4); the cap
        only guards pathological inputs.
    init:
        ``"random"`` — uniformly random initial partition (the paper's
        "e.g., a random partition");
        ``"seeds"`` — partition induced by k uniformly chosen seed
        objects (still random, but the initial centroids are spread);
        ``"kmeans++"`` — partition induced by k-means++ seeds on the
        expected values.
    min_improvement:
        Relative objective decrease below which a relocation is treated
        as numerical noise and skipped.

    Examples
    --------
    >>> from repro.datagen import make_blobs_uncertain
    >>> data = make_blobs_uncertain(n_objects=60, n_clusters=3, seed=7)
    >>> result = UCPC(n_clusters=3).fit(data, seed=7)
    >>> result.n_clusters
    3
    """

    name = "UCPC"
    #: Relocation sweep is an interpreter-bound per-object loop — the
    #: auto backend routes UCPC to the process pool.
    preferred_backend = "processes"

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        init: str = "random",
        min_improvement: float = 1e-12,
    ):
        if init not in ("random", "seeds", "kmeans++"):
            raise InvalidParameterError(
                f"init must be 'random', 'seeds' or 'kmeans++', got {init!r}"
            )
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        if min_improvement < 0:
            raise InvalidParameterError(
                f"min_improvement must be >= 0, got {min_improvement}"
            )
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.init = init
        self.min_improvement = float(min_improvement)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Run Algorithm 1 on ``dataset``."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)
        assignment = self._initial_partition(dataset, k, rng)

        watch = Stopwatch()
        with watch.running():
            assignment, history, iterations, converged = self._local_search(
                dataset, assignment, k, rng
            )
        if not converged:
            warnings.warn(
                f"UCPC hit max_iter={self.max_iter} before convergence",
                ConvergenceWarning,
                stacklevel=2,
            )
        return ClusteringResult(
            labels=assignment,
            objective=history[-1],
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            objective_history=history,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _initial_partition(
        self, dataset: UncertainDataset, k: int, rng: np.random.Generator
    ) -> IntArray:
        if self.init == "kmeans++":
            seeds = kmeanspp_seed_indices(dataset, k, rng)
        elif self.init == "seeds":
            seeds = random_seed_indices(len(dataset), k, rng)
        else:
            return random_partition(len(dataset), k, rng)
        assignment = partition_from_seeds(dataset, seeds)
        # Guarantee non-empty clusters: pin each seed to its own cluster.
        assignment[seeds] = np.arange(k)
        return assignment

    def _local_search(
        self,
        dataset: UncertainDataset,
        assignment: IntArray,
        k: int,
        rng: np.random.Generator,
    ) -> tuple[IntArray, list, int, bool]:
        """Algorithm 1's relocation sweeps over cached scalar statistics.

        Per cluster c we maintain the scalars ``psi_tot = sum_j Psi_j``,
        ``phi_tot = sum_j Phi_j``, the mean-sum matrix ``S`` and its
        squared row norms ``ups = ||S_c||^2``, from which (Theorem 3)

            J(c) = psi_tot/n_c + phi_tot - ups/n_c.

        Evaluating every candidate insertion (Eq. (15)) then needs one
        ``S @ mu_o`` matvec plus O(k) vector arithmetic per object —
        Corollary 1's O(k·m) with minimal interpreter overhead.
        """
        assignment = assignment.copy()
        sigma2_tot = dataset.sigma2_matrix.sum(axis=1)
        mu2_tot = dataset.mu2_matrix.sum(axis=1)
        mu = dataset.mu_matrix
        mu_norm_sq = np.einsum("ij,ij->i", mu, mu)

        counts = np.bincount(assignment, minlength=k).astype(np.float64)
        psi_tot = np.zeros(k)
        phi_tot = np.zeros(k)
        mean_sums = np.zeros((k, dataset.dim))
        np.add.at(psi_tot, assignment, sigma2_tot)
        np.add.at(phi_tot, assignment, mu2_tot)
        np.add.at(mean_sums, assignment, mu)
        ups = np.einsum("cj,cj->c", mean_sums, mean_sums)

        def objectives_vector() -> np.ndarray:
            safe = np.maximum(counts, 1.0)
            per = psi_tot / safe + phi_tot - ups / safe
            return np.where(counts > 0, per, 0.0)

        objectives = objectives_vector()
        history = [float(objectives.sum())]

        iterations = 0
        converged = False
        for _ in range(self.max_iter):
            iterations += 1
            moved = 0
            threshold = -self.min_improvement * max(1.0, abs(history[-1]))
            # Algorithm 1 leaves the scan order open; a fresh random order
            # per sweep avoids order artifacts in the local search.
            for idx in rng.permutation(len(dataset)):
                idx = int(idx)
                own = int(assignment[idx])
                if counts[own] <= 1.0:
                    # Relocating the last member would empty the cluster;
                    # the partition must keep exactly k clusters.
                    continue
                s = sigma2_tot[idx]
                p = mu2_tot[idx]
                cross = mean_sums @ mu[idx]
                counts_plus = counts + 1.0
                j_with = (psi_tot + s) / counts_plus + (phi_tot + p) - (
                    ups + 2.0 * cross + mu_norm_sq[idx]
                ) / counts_plus
                # counts[own] > 1 is guaranteed by the continue above.
                n_minus = counts[own] - 1.0
                j_without = (
                    (psi_tot[own] - s) / n_minus
                    + (phi_tot[own] - p)
                    - (ups[own] - 2.0 * cross[own] + mu_norm_sq[idx])
                    / n_minus
                )
                # Candidate total change for moving idx into cluster c:
                # [J(own \ o) + J(c ∪ o)] - [J(own) + J(c)]
                delta = (j_without - objectives[own]) + (j_with - objectives)
                delta[own] = 0.0
                best = int(np.argmin(delta))
                if best != own and delta[best] < threshold:
                    # Apply the move: O(m) cache updates (Corollary 1).
                    counts[own] -= 1.0
                    counts[best] += 1.0
                    psi_tot[own] -= s
                    psi_tot[best] += s
                    phi_tot[own] -= p
                    phi_tot[best] += p
                    mean_sums[own] -= mu[idx]
                    mean_sums[best] += mu[idx]
                    ups[own] = ups[own] - 2.0 * cross[own] + mu_norm_sq[idx]
                    ups[best] = ups[best] + 2.0 * cross[best] + mu_norm_sq[idx]
                    objectives[own] = j_without
                    objectives[best] = j_with[best]
                    assignment[idx] = best
                    moved += 1
            # Refresh from exact sums once per sweep to cap round-off drift.
            ups = np.einsum("cj,cj->c", mean_sums, mean_sums)
            objectives = objectives_vector()
            history.append(float(objectives.sum()))
            if moved == 0:
                converged = True
                break
        return assignment, history, iterations, converged
