"""Shared empty-cluster repair used by the K-means-style algorithms.

Lloyd-style assignment steps can leave a cluster empty (all its objects
found a nearer centroid).  The paper's partitional algorithms require a
partition into exactly ``k`` non-empty clusters, so every such algorithm
repairs the assignment by moving the object farthest from its current
centroid into each empty cluster.

Two failure modes of naive implementations are handled here centrally:

* **cascades** — the chosen victim may be the *sole* member of its own
  cluster, so moving it merely relocates the emptiness; such victims are
  excluded up front;
* **stale worklists** — iterating over a ``flatnonzero(counts == 0)``
  snapshot never notices clusters emptied by the repair itself; the loop
  below re-derives the empty set after every move.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro._typing import IntArray


def repair_empty_clusters(
    assignment: IntArray,
    points: np.ndarray,
    centers: np.ndarray,
    k: int,
) -> List[Tuple[int, int]]:
    """Fill every empty cluster in ``assignment`` in place.

    For each empty cluster the object farthest (squared Euclidean) from
    its currently assigned centroid is moved into it.  Objects that are
    the sole member of their cluster are never selected, so a repair can
    never empty another cluster; the empty set is recomputed after every
    move, so no emptiness — pre-existing or freshly created — is missed.

    Parameters
    ----------
    assignment:
        Cluster index per object, modified in place.
    points:
        Per-object representative points, shape ``(n, m)`` — expected
        values or sample means, whatever the caller assigns against.
    centers:
        Current centroids, shape ``(k, m)`` (read-only here).
    k:
        Number of clusters.

    Returns
    -------
    list of (cluster, victim) pairs
        The moves applied, in order, so callers can mirror side effects
        (e.g. reseeding the repaired cluster's centroid on the victim).
    """
    moves: List[Tuple[int, int]] = []
    counts = np.bincount(assignment, minlength=k)
    while True:
        empty = np.flatnonzero(counts == 0)
        if empty.size == 0:
            return moves
        cluster = int(empty[0])
        diffs = points - centers[assignment]
        dist = np.einsum("ij,ij->i", diffs, diffs)
        movable = counts[assignment] > 1
        if not movable.any():
            # Only possible when k > n; nothing can be moved safely.
            return moves
        dist[~movable] = -np.inf
        victim = int(np.argmax(dist))
        counts[assignment[victim]] -= 1
        assignment[victim] = cluster
        counts[cluster] += 1
        moves.append((cluster, victim))
