"""UCPC ablation variants (E8) — the design alternatives the paper rejects.

Section 4.2 of the paper considers and *rejects* one U-centroid-based
criterion before settling on J:

* :class:`VarianceOnlyClustering` — minimize the summed U-centroid
  variances ``sum_C sigma^2(C̄_C)`` (Section 4.2.1).  Theorem 2 shows
  this reduces to ``sum_C |C|^-2 sum_{o in C} sigma^2(o)``, which ignores
  inter-object distances entirely (Figure 2's failure mode).  We
  implement it as an honest local-search baseline so the ablation bench
  can *measure* how badly it clusters.

One further variant probes the algorithmic (not objective) choice:

* :class:`UCPCLloyd` — minimizes the same J objective but with
  Lloyd-style batch iterations (assign every object to the cluster whose
  J-insertion cost is lowest, then rebuild all statistics) instead of
  Algorithm 1's sequential single-object relocations.  Comparing the two
  isolates how much of UCPC's behaviour comes from the relocation local
  search rather than from J itself.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.cluster_stats import ClusterStatsMatrix
from repro.clustering.initialization import random_partition
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


class VarianceOnlyClustering(UncertainClusterer):
    """Local search minimizing ``sum_C sigma^2(C̄_C)`` (the rejected criterion).

    By Theorem 2 the per-cluster term is ``|C|^-2 sum_o sigma^2(o)``, so
    the criterion only sees the objects' variances — never their
    positions.  Expected behaviour (verified by the ablation bench): it
    happily groups far-apart low-variance objects and performs near
    chance on positional structure.
    """

    name = "VarOnly"

    def __init__(self, n_clusters: int, max_iter: int = 100):
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset`` by U-centroid variance alone."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)
        assignment = random_partition(n, k, rng)
        variances = dataset.total_variances

        watch = Stopwatch()
        history = []
        iterations = 0
        converged = False
        with watch.running():
            var_sums = np.zeros(k)
            counts = np.zeros(k, dtype=np.int64)
            np.add.at(var_sums, assignment, variances)
            np.add.at(counts, assignment, 1)

            def total():
                safe = np.maximum(counts, 1).astype(np.float64)
                per = var_sums / (safe * safe)
                return float(np.where(counts > 0, per, 0.0).sum())

            history.append(total())
            for _ in range(self.max_iter):
                iterations += 1
                moved = 0
                for idx in range(n):
                    own = int(assignment[idx])
                    if counts[own] <= 1:
                        continue
                    v = float(variances[idx])
                    best_delta = 0.0
                    best = own
                    own_after = (var_sums[own] - v) / (counts[own] - 1) ** 2
                    own_before = var_sums[own] / counts[own] ** 2
                    for c in range(k):
                        if c == own:
                            continue
                        c_after = (var_sums[c] + v) / (counts[c] + 1) ** 2
                        c_before = var_sums[c] / counts[c] ** 2
                        delta = (own_after + c_after) - (own_before + c_before)
                        if delta < best_delta - 1e-15:
                            best_delta = delta
                            best = c
                    if best != own:
                        var_sums[own] -= v
                        counts[own] -= 1
                        var_sums[best] += v
                        counts[best] += 1
                        assignment[idx] = best
                        moved += 1
                history.append(total())
                if moved == 0:
                    converged = True
                    break
        if not converged:
            warnings.warn(
                f"VarianceOnly hit max_iter={self.max_iter} before convergence",
                ConvergenceWarning,
                stacklevel=2,
            )
        return ClusteringResult(
            labels=assignment,
            objective=history[-1],
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            objective_history=history,
        )


class UCPCLloyd(UncertainClusterer):
    """Batch (Lloyd-style) minimization of the UCPC objective J.

    Each iteration computes, for every object, the J-insertion cost into
    each *current* cluster (Eq. (15)) and reassigns all objects at once.
    Unlike Algorithm 1 this is not monotone in general — the batch update
    invalidates the incremental deltas — so convergence is detected by
    assignment fixpoints with a cycle cap.
    """

    name = "UCPC-Lloyd"

    def __init__(self, n_clusters: int, max_iter: int = 100):
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset`` with batch J-cost assignments."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)
        assignment = random_partition(n, k, rng)
        sigma2 = dataset.sigma2_matrix
        mu2 = dataset.mu2_matrix
        mu = dataset.mu_matrix

        watch = Stopwatch()
        history = []
        iterations = 0
        converged = False
        with watch.running():
            for _ in range(self.max_iter):
                iterations += 1
                stats = ClusterStatsMatrix.from_assignment(dataset, assignment, k)
                history.append(stats.total_objective())
                current = stats.objectives()
                new_assignment = assignment.copy()
                for idx in range(n):
                    own = int(assignment[idx])
                    if stats.counts[own] <= 1:
                        continue
                    gains = stats.objectives_with(
                        sigma2[idx], mu2[idx], mu[idx]
                    ) - current
                    own_without = stats.objective_without(
                        own, sigma2[idx], mu2[idx], mu[idx]
                    )
                    gains = gains + (own_without - current[own])
                    gains[own] = 0.0
                    best = int(np.argmin(gains))
                    if gains[best] < -1e-12:
                        new_assignment[idx] = best
                if np.array_equal(new_assignment, assignment):
                    converged = True
                    break
                assignment = new_assignment
            final = ClusterStatsMatrix.from_assignment(dataset, assignment, k)
            history.append(final.total_objective())
        if not converged:
            warnings.warn(
                f"UCPC-Lloyd hit max_iter={self.max_iter} before convergence",
                ConvergenceWarning,
                stacklevel=2,
            )
        return ClusteringResult(
            labels=assignment,
            objective=history[-1],
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            objective_history=history,
        )
