"""Reference implementations of every cluster-compactness objective.

These are the *definitional* forms of the paper's objective functions,
written for clarity and used by the test-suite to validate the fast
incremental forms the algorithms actually run on:

* :func:`j_uk` — UK-means compactness ``J_UK`` (Eq. (9), Lemma 1);
* :func:`j_mm` — MMVar compactness ``J_MM = sigma^2(C_MM)`` (Eq. (11));
* :func:`j_hat` — the "mixed" objective ``Ĵ`` (Eq. (12));
* :func:`j_ucpc` — the paper's objective ``J`` (Eq. (14), Theorem 3).

Propositions 2-3 of the paper assert ``J_MM = J_UK/|C|`` and
``Ĵ = 2 J_UK``; Theorem 3 asserts
``J = |C|^-1 sum_i sigma^2(o_i) + J_UK`` — all verified in
``tests/test_propositions.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.centroids.deterministic import ukmeans_centroid
from repro.centroids.mixture_model import MixtureModelCentroid
from repro.centroids.ucentroid import UCentroid
from repro.exceptions import EmptyClusterError
from repro.objects.uncertain_object import UncertainObject


def _require_nonempty(cluster: Sequence[UncertainObject]) -> None:
    if len(cluster) == 0:
        raise EmptyClusterError("objective of an empty cluster is undefined")


def j_uk(cluster: Sequence[UncertainObject]) -> float:
    """UK-means compactness ``J_UK(C) = sum_o ED(o, C_UK)`` (Eq. (9)).

    Computed via the closed form of Eq. (8):
    ``ED(o, y) = sigma^2(o) + ||mu(o) - y||^2`` with ``y = C_UK``.
    """
    _require_nonempty(cluster)
    center = ukmeans_centroid(cluster)
    total = 0.0
    for obj in cluster:
        diff = obj.mu - center
        total += obj.total_variance + float(diff @ diff)
    return total


def j_uk_lemma1(cluster: Sequence[UncertainObject]) -> float:
    """``J_UK`` via Lemma 1: ``sum_j [sum_o mu2_j - (1/|C|)(sum_o mu_j)^2]``."""
    _require_nonempty(cluster)
    mu2_sum = np.zeros(cluster[0].dim)
    mu_sum = np.zeros_like(mu2_sum)
    for obj in cluster:
        mu2_sum += obj.mu2
        mu_sum += obj.mu
    return float(np.sum(mu2_sum - mu_sum**2 / len(cluster)))


def j_mm(cluster: Sequence[UncertainObject]) -> float:
    """MMVar compactness ``J_MM(C) = sigma^2(C_MM)`` (Eq. (11))."""
    _require_nonempty(cluster)
    return MixtureModelCentroid(cluster).total_variance


def j_hat(cluster: Sequence[UncertainObject]) -> float:
    """The mixed objective ``Ĵ(C) = sum_o ÊD(o, C_MM)`` (Eq. (12)).

    Uses Lemma 3 applied to the member moments and the mixture moments
    of Lemma 2.  Proposition 3 proves ``Ĵ = 2|C| J_MM = 2 J_UK`` — i.e.
    mixing the MMVar centroid with the UK-means criterion buys nothing.
    """
    _require_nonempty(cluster)
    centroid = MixtureModelCentroid(cluster)
    total = 0.0
    for obj in cluster:
        total += float(np.sum(obj.mu2 - 2.0 * obj.mu * centroid.mu + centroid.mu2))
    return total


def j_ucpc(cluster: Sequence[UncertainObject]) -> float:
    """The paper's objective ``J(C) = sum_o ÊD(o, C̄)`` (Eq. (14)).

    Definitional form: Lemma 3 applied to each member and the U-centroid's
    moments (Lemma 5).  The closed form of Theorem 3 (used by UCPC) is
    :func:`j_ucpc_closed_form`; both must agree.
    """
    _require_nonempty(cluster)
    centroid = UCentroid(cluster)
    total = 0.0
    for obj in cluster:
        total += float(np.sum(obj.mu2 - 2.0 * obj.mu * centroid.mu + centroid.mu2))
    return total


def j_ucpc_closed_form(cluster: Sequence[UncertainObject]) -> float:
    """Theorem 3's closed form ``J = sum_j (Psi_j/|C| + Phi_j - Upsilon_j/|C|)``."""
    _require_nonempty(cluster)
    count = len(cluster)
    psi = np.zeros(cluster[0].dim)
    phi = np.zeros_like(psi)
    mu_sum = np.zeros_like(psi)
    for obj in cluster:
        psi += obj.sigma2
        phi += obj.mu2
        mu_sum += obj.mu
    upsilon = mu_sum**2
    return float(np.sum(psi / count + phi - upsilon / count))


def sum_of_variances(cluster: Sequence[UncertainObject]) -> float:
    """``sum_o sigma^2(o)`` — the cluster-variance term of Proposition 1."""
    _require_nonempty(cluster)
    return float(sum(obj.total_variance for obj in cluster))
