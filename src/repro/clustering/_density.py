"""Blocked pairwise kernels for the density-based algorithms.

FDBSCAN and FOPTICS both reduce the uncertainty between two objects to
statistics of the *matched-pair sampled distances* ``d_ij,s =
||x_i,s - x_j,s||`` over an ``(n, S, m)`` realization tensor:

* FDBSCAN needs ``Pr(d_ij <= eps)`` — the fraction of sample pairs
  within ``eps`` (:func:`pairwise_within_eps_probabilities`);
* FOPTICS needs ``E[d_ij]`` — the mean sampled distance
  (:func:`expected_distance_matrix`).

Both are Theta(n^2 * S * m) and were previously computed one object row
at a time (``n`` Python iterations, each materializing an
``(n - i, S, m)`` difference tensor).  This module computes them in
column blocks whose temporaries are bounded by
:data:`DENSITY_BLOCK_ELEMENTS` (the memory knob) or pinned explicitly
per call — with two deliberately different inner kernels:

* the *probability* kernel expands ``d^2 = |x|^2 + |y|^2 - 2 x.y`` so
  the cross terms run as ``S`` batched GEMMs.  The expansion is
  algebraically identical to differencing but not bit-identical (a few
  ulps); FDBSCAN only ever *thresholds* ``d^2`` against ``eps^2``, so
  its discrete output absorbs that, which the 20-seed label-equivalence
  regression (``tests/test_density_equivalence.py``) pins.
* the *expected-distance* kernel keeps the difference-based summation,
  vectorized over column blocks, because FOPTICS consumes the
  *continuous* values: its ordering loop breaks near-ties by float
  comparison, so the kernel must be bit-identical to the row loop it
  replaced (also regression-pinned).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._typing import FloatArray
from repro.exceptions import InvalidParameterError

#: Memory knob: target element count of the largest temporary a blocked
#: kernel materializes (an ``(S, R, B)`` squared-distance block for the
#: probability kernel, an ``(R, B, S, m)`` difference block for the
#: expected-distance kernel).  The default, 2**22 doubles, keeps each
#: temporary around 32 MB; lower it for memory-constrained deployments,
#: raise it to trade memory for fewer Python-level block iterations at
#: very large ``n * S``.
DENSITY_BLOCK_ELEMENTS: int = 2**22


def _block_width(per_column: int, n: int, block: Optional[int]) -> int:
    """Column-block width from an explicit pin or the global budget.

    ``per_column`` is the temporary's element count per block column.
    """
    if block is not None:
        if block < 1:
            raise InvalidParameterError(f"block must be >= 1, got {block}")
        return min(int(block), n)
    auto = DENSITY_BLOCK_ELEMENTS // max(1, per_column)
    return max(1, min(n, int(auto)))


def pairwise_within_eps_probabilities(
    samples: FloatArray, eps: float, block: Optional[int] = None
) -> FloatArray:
    """``(n, n)`` matrix of ``Pr(||X_i - X_j|| <= eps)`` estimates.

    ``samples`` has shape ``(n, S, m)``; the estimate for a pair is the
    fraction of the ``S`` matched sample pairs within ``eps`` (an
    unbiased MC estimator of the double integral).  The diagonal is
    fixed at 1.  ``block`` overrides the automatic memory-bounded
    column-block width (see :data:`DENSITY_BLOCK_ELEMENTS`).
    """
    n, n_samples, _ = samples.shape
    eps_sq = eps * eps
    width = _block_width(n * n_samples, n, block)
    # (S, n, m) views: one GEMM per sample index inside each np.matmul.
    by_sample = np.ascontiguousarray(samples.swapaxes(0, 1))
    by_sample_t = np.ascontiguousarray(by_sample.transpose(0, 2, 1))
    sq_norms = np.einsum("snm,snm->sn", by_sample, by_sample)
    probs = np.empty((n, n))

    def block_probabilities(row0: int, row1: int, col0: int, col1: int):
        d2 = by_sample[:, row0:row1, :] @ by_sample_t[:, :, col0:col1]
        d2 *= -2.0
        d2 += sq_norms[:, row0:row1, None]
        d2 += sq_norms[:, None, col0:col1]
        return np.count_nonzero(d2 <= eps_sq, axis=0) / n_samples

    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        # Diagonal block: computed whole (B is small), then the upper
        # triangle is mirrored from the lower one — the squared-norm
        # assembly adds sq_i and sq_j in row-major order, so (i, j) and
        # (j, i) can differ by an ulp and the reachability graph must
        # stay exactly symmetric (as the mirrored legacy row loop
        # guaranteed).
        p = block_probabilities(i0, i1, i0, i1)
        lower = np.tril_indices(i1 - i0, k=-1)
        p.T[lower] = p[lower]
        probs[i0:i1, i0:i1] = p
        # Remaining rows below the block, mirrored.
        if i1 < n:
            p = block_probabilities(i1, n, i0, i1)
            probs[i1:, i0:i1] = p
            probs[i0:i1, i1:] = p.T
    np.fill_diagonal(probs, 1.0)
    return probs


def expected_distance_matrix(
    samples: FloatArray, block: Optional[int] = None
) -> FloatArray:
    """``(n, n)`` Monte-Carlo expected Euclidean distances between objects.

    Entry ``(i, j)`` is the mean of the ``S`` matched-pair distances;
    the diagonal is 0.  Bit-identical to the per-row difference loop for
    every block width — FOPTICS's ordering loop compares these values
    directly, so the kernel must never perturb a near-tie.  ``block``
    overrides the automatic memory-bounded column-block width (see
    :data:`DENSITY_BLOCK_ELEMENTS`).
    """
    n, n_samples, m = samples.shape
    width = _block_width(n * n_samples * m, n, block)
    out = np.empty((n, n))

    def fill(rows: FloatArray, columns: FloatArray) -> FloatArray:
        diff = rows[:, None] - columns[None]
        return np.sqrt(
            np.einsum("rbsm,rbsm->rbs", diff, diff)
        ).mean(axis=2)

    # Rows are chunked too, so the difference temporary really is
    # bounded by the budget (column blocking alone would still
    # materialize all remaining rows against each column block).
    row_chunk = max(1, width)
    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        columns = samples[i0:i1]
        out[i0:i1, i0:i1] = fill(columns, columns)
        for r0 in range(i1, n, row_chunk):
            r1 = min(r0 + row_chunk, n)
            dist = fill(samples[r0:r1], columns)
            out[r0:r1, i0:i1] = dist
            out[i0:i1, r0:r1] = dist.T
    np.fill_diagonal(out, 0.0)
    return out


# ----------------------------------------------------------------------
# Candidate-capped (sub-quadratic-memory) kernels
# ----------------------------------------------------------------------
# The capped density path never materializes an (n, n) matrix: a cheap
# prefilter on the objects' *sample means* produces an explicit
# candidate-pair list, and the exact matched-pair kernels run gathered
# over those pairs only.  For FDBSCAN the prefilter is *correct by the
# triangle inequality*: with r_i the object's sample radius (largest
# sample deviation from its sample mean), every matched sample pair of
# (i, j) satisfies ``||x_is - x_js|| >= ||mu_i - mu_j|| - r_i - r_j``,
# so ``||mu_i - mu_j|| > eps + r_i + r_j`` implies Pr(d_ij <= eps) is
# *exactly zero* — pruned pairs contribute nothing to expected neighbor
# counts or reachability edges.

#: Relative slack added to the candidate-pair threshold so float
#: round-off in the prefilter's own distance arithmetic can only ever
#: admit extra pairs (harmless), never prune a boundary pair.
PREFILTER_RELATIVE_SLACK: float = 1e-9


def sample_radii(samples: FloatArray, block: Optional[int] = None) -> FloatArray:
    """Per-object sample radius ``r_i = max_s ||x_is - mean_s(x_is)||``.

    ``samples`` has shape ``(n, S, m)``.  Computed in row blocks bounded
    by :data:`DENSITY_BLOCK_ELEMENTS` (an ``(B, S, m)`` difference
    temporary per block).
    """
    n, n_samples, m = samples.shape
    width = _block_width(n_samples * m, n, block)
    out = np.empty(n)
    means = samples.mean(axis=1)
    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        diff = samples[i0:i1] - means[i0:i1, None, :]
        out[i0:i1] = np.sqrt(
            np.einsum("bsm,bsm->bs", diff, diff)
        ).max(axis=1)
    return out


def eps_candidate_pairs(
    means: FloatArray,
    radii: FloatArray,
    eps: float,
    block: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pairs ``(i < j)`` that can have ``Pr(d_ij <= eps) > 0``.

    A pair survives when ``||mu_i - mu_j|| <= eps + r_i + r_j`` (plus
    :data:`PREFILTER_RELATIVE_SLACK`, so the prefilter errs on the side
    of keeping pairs); every pruned pair has all matched sample
    distances strictly above ``eps`` and hence an exactly-zero
    within-eps probability.  Returns two equal-length int64 index
    arrays, lexicographically ordered.
    """
    n, m = means.shape
    width = _block_width(n * m, n, block)
    ii_parts = []
    jj_parts = []
    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        diff = means[i0:i1, None, :] - means[None, :, :]
        dist = np.sqrt(np.einsum("bnm,bnm->bn", diff, diff))
        threshold = eps + radii[i0:i1, None] + radii[None, :]
        threshold += PREFILTER_RELATIVE_SLACK * np.abs(threshold)
        local_i, local_j = np.nonzero(dist <= threshold)
        gi = local_i + i0
        keep = local_j > gi
        ii_parts.append(gi[keep].astype(np.int64))
        jj_parts.append(local_j[keep].astype(np.int64))
    if not ii_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(ii_parts), np.concatenate(jj_parts)


def gathered_pair_probabilities(
    samples: FloatArray,
    eps: float,
    ii: np.ndarray,
    jj: np.ndarray,
    block: Optional[int] = None,
) -> FloatArray:
    """``Pr(||X_i - X_j|| <= eps)`` for an explicit pair list.

    Matched-pair Monte-Carlo estimate via the *difference* kernel (not
    the GEMM expansion): ulp-level value differences against the dense
    kernel are absorbed by FDBSCAN's thresholding, exactly the accepted
    hazard class of the dense GEMM kernel itself (both are pinned by
    label-equivalence regressions).
    """
    n_pairs = int(ii.size)
    _, n_samples, m = samples.shape
    eps_sq = eps * eps
    width = _block_width(n_samples * m, max(1, n_pairs), block)
    out = np.empty(n_pairs)
    for p0 in range(0, n_pairs, width):
        p1 = min(p0 + width, n_pairs)
        diff = samples[ii[p0:p1]] - samples[jj[p0:p1]]
        d2 = np.einsum("psm,psm->ps", diff, diff)
        out[p0:p1] = np.count_nonzero(d2 <= eps_sq, axis=1) / n_samples
    return out


def gathered_pair_expected_distances(
    samples: FloatArray,
    ii: np.ndarray,
    jj: np.ndarray,
    block: Optional[int] = None,
) -> FloatArray:
    """Monte-Carlo ``E[||X_i - X_j||]`` for an explicit pair list.

    Bit-identical to the corresponding :func:`expected_distance_matrix`
    entries: the same per-(pair, sample) difference/``m``-reduction and
    the same length-``S`` mean reduction tree, evaluated independently
    per pair — FOPTICS's ordering loop compares these values directly,
    so gathered and dense paths must never disagree on a near-tie.
    """
    n_pairs = int(ii.size)
    _, n_samples, m = samples.shape
    width = _block_width(n_samples * m, max(1, n_pairs), block)
    out = np.empty(n_pairs)
    for p0 in range(0, n_pairs, width):
        p1 = min(p0 + width, n_pairs)
        diff = samples[ii[p0:p1]] - samples[jj[p0:p1]]
        out[p0:p1] = np.sqrt(
            np.einsum("psm,psm->ps", diff, diff)
        ).mean(axis=1)
    return out


def knn_candidate_indices(
    means: FloatArray, k_neighbors: int, block: Optional[int] = None
) -> np.ndarray:
    """``(n, k_neighbors)`` nearest neighbors by sample-mean distance.

    Self-neighbors are excluded.  This is a *candidate selector* for
    the lossy kNN-capped FOPTICS path (selection by expected position
    is not selection by expected distance), so the fast GEMM expansion
    is used; within-row order of the returned indices is unspecified.
    """
    n, m = means.shape
    if not 1 <= k_neighbors <= n - 1:
        raise InvalidParameterError(
            f"k_neighbors must be in [1, n-1] = [1, {n - 1}], got {k_neighbors}"
        )
    width = _block_width(n, n, block)
    sq = np.einsum("nm,nm->n", means, means)
    out = np.empty((n, k_neighbors), dtype=np.int64)
    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        dist = sq[i0:i1, None] - 2.0 * (means[i0:i1] @ means.T) + sq[None, :]
        dist[np.arange(i1 - i0), np.arange(i0, i1)] = np.inf
        out[i0:i1] = np.argpartition(dist, k_neighbors - 1, axis=1)[
            :, :k_neighbors
        ]
    return out


def scattered_row_sums(
    n: int,
    ii: np.ndarray,
    jj: np.ndarray,
    values: FloatArray,
    diagonal: float = 1.0,
    block: Optional[int] = None,
) -> FloatArray:
    """Row sums of a symmetric sparse matrix, bitwise the dense sums.

    ``(ii, jj, values)`` is an undirected pair list (``i < j``, unique);
    absent entries are exact zeros and the diagonal is ``diagonal``.
    A plain scatter-add would accumulate each row in neighbor-count
    order and drift ulps away from the dense ``matrix.sum(axis=1)`` —
    enough to flip an object sitting exactly on FDBSCAN's ``min_pts``
    core threshold.  Instead each block of rows is materialized densely
    (zeros + scattered values) and reduced with NumPy's length-``n``
    pairwise tree, the *same* reduction the dense path applies, so the
    sums are bit-identical whenever the entry values are.
    """
    src = np.concatenate([ii, jj])
    dst = np.concatenate([jj, ii])
    val = np.concatenate([values, values])
    order = np.lexsort((dst, src))
    src, dst, val = src[order], dst[order], val[order]
    offsets = np.concatenate(
        [[0], np.cumsum(np.bincount(src, minlength=n))]
    ).astype(np.int64)
    width = _block_width(n, n, block)
    out = np.empty(n)
    buf = np.zeros((width, n))
    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        b = i1 - i0
        buf[:b] = 0.0
        counts = np.diff(offsets[i0:i1 + 1])
        rows = np.repeat(np.arange(b), counts)
        chunk = slice(offsets[i0], offsets[i1])
        buf[rows, dst[chunk]] = val[chunk]
        buf[np.arange(b), np.arange(i0, i1)] = diagonal
        out[i0:i1] = buf[:b].sum(axis=1)
    return out


def symmetric_adjacency(
    n: int, ii: np.ndarray, jj: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR-style ``(offsets, neighbors)`` for an undirected pair list.

    Both directions of every pair are materialized and neighbors are
    sorted ascending per row — sparse traversals then visit nodes in
    exactly the order a dense ``np.flatnonzero`` row scan would.
    Returns ``offsets`` of shape ``(n + 1,)`` and the flat ``neighbors``
    array; row ``i`` is ``neighbors[offsets[i]:offsets[i + 1]]``.
    """
    src = np.concatenate([ii, jj])
    dst = np.concatenate([jj, ii])
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    counts = np.bincount(src, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return offsets, dst
