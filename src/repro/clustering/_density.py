"""Blocked pairwise kernels for the density-based algorithms.

FDBSCAN and FOPTICS both reduce the uncertainty between two objects to
statistics of the *matched-pair sampled distances* ``d_ij,s =
||x_i,s - x_j,s||`` over an ``(n, S, m)`` realization tensor:

* FDBSCAN needs ``Pr(d_ij <= eps)`` — the fraction of sample pairs
  within ``eps`` (:func:`pairwise_within_eps_probabilities`);
* FOPTICS needs ``E[d_ij]`` — the mean sampled distance
  (:func:`expected_distance_matrix`).

Both are Theta(n^2 * S * m) and were previously computed one object row
at a time (``n`` Python iterations, each materializing an
``(n - i, S, m)`` difference tensor).  This module computes them in
column blocks whose temporaries are bounded by
:data:`DENSITY_BLOCK_ELEMENTS` (the memory knob) or pinned explicitly
per call — with two deliberately different inner kernels:

* the *probability* kernel expands ``d^2 = |x|^2 + |y|^2 - 2 x.y`` so
  the cross terms run as ``S`` batched GEMMs.  The expansion is
  algebraically identical to differencing but not bit-identical (a few
  ulps); FDBSCAN only ever *thresholds* ``d^2`` against ``eps^2``, so
  its discrete output absorbs that, which the 20-seed label-equivalence
  regression (``tests/test_density_equivalence.py``) pins.
* the *expected-distance* kernel keeps the difference-based summation,
  vectorized over column blocks, because FOPTICS consumes the
  *continuous* values: its ordering loop breaks near-ties by float
  comparison, so the kernel must be bit-identical to the row loop it
  replaced (also regression-pinned).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import FloatArray
from repro.exceptions import InvalidParameterError

#: Memory knob: target element count of the largest temporary a blocked
#: kernel materializes (an ``(S, R, B)`` squared-distance block for the
#: probability kernel, an ``(R, B, S, m)`` difference block for the
#: expected-distance kernel).  The default, 2**22 doubles, keeps each
#: temporary around 32 MB; lower it for memory-constrained deployments,
#: raise it to trade memory for fewer Python-level block iterations at
#: very large ``n * S``.
DENSITY_BLOCK_ELEMENTS: int = 2**22


def _block_width(per_column: int, n: int, block: Optional[int]) -> int:
    """Column-block width from an explicit pin or the global budget.

    ``per_column`` is the temporary's element count per block column.
    """
    if block is not None:
        if block < 1:
            raise InvalidParameterError(f"block must be >= 1, got {block}")
        return min(int(block), n)
    auto = DENSITY_BLOCK_ELEMENTS // max(1, per_column)
    return max(1, min(n, int(auto)))


def pairwise_within_eps_probabilities(
    samples: FloatArray, eps: float, block: Optional[int] = None
) -> FloatArray:
    """``(n, n)`` matrix of ``Pr(||X_i - X_j|| <= eps)`` estimates.

    ``samples`` has shape ``(n, S, m)``; the estimate for a pair is the
    fraction of the ``S`` matched sample pairs within ``eps`` (an
    unbiased MC estimator of the double integral).  The diagonal is
    fixed at 1.  ``block`` overrides the automatic memory-bounded
    column-block width (see :data:`DENSITY_BLOCK_ELEMENTS`).
    """
    n, n_samples, _ = samples.shape
    eps_sq = eps * eps
    width = _block_width(n * n_samples, n, block)
    # (S, n, m) views: one GEMM per sample index inside each np.matmul.
    by_sample = np.ascontiguousarray(samples.swapaxes(0, 1))
    by_sample_t = np.ascontiguousarray(by_sample.transpose(0, 2, 1))
    sq_norms = np.einsum("snm,snm->sn", by_sample, by_sample)
    probs = np.empty((n, n))

    def block_probabilities(row0: int, row1: int, col0: int, col1: int):
        d2 = by_sample[:, row0:row1, :] @ by_sample_t[:, :, col0:col1]
        d2 *= -2.0
        d2 += sq_norms[:, row0:row1, None]
        d2 += sq_norms[:, None, col0:col1]
        return np.count_nonzero(d2 <= eps_sq, axis=0) / n_samples

    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        # Diagonal block: computed whole (B is small), then the upper
        # triangle is mirrored from the lower one — the squared-norm
        # assembly adds sq_i and sq_j in row-major order, so (i, j) and
        # (j, i) can differ by an ulp and the reachability graph must
        # stay exactly symmetric (as the mirrored legacy row loop
        # guaranteed).
        p = block_probabilities(i0, i1, i0, i1)
        lower = np.tril_indices(i1 - i0, k=-1)
        p.T[lower] = p[lower]
        probs[i0:i1, i0:i1] = p
        # Remaining rows below the block, mirrored.
        if i1 < n:
            p = block_probabilities(i1, n, i0, i1)
            probs[i1:, i0:i1] = p
            probs[i0:i1, i1:] = p.T
    np.fill_diagonal(probs, 1.0)
    return probs


def expected_distance_matrix(
    samples: FloatArray, block: Optional[int] = None
) -> FloatArray:
    """``(n, n)`` Monte-Carlo expected Euclidean distances between objects.

    Entry ``(i, j)`` is the mean of the ``S`` matched-pair distances;
    the diagonal is 0.  Bit-identical to the per-row difference loop for
    every block width — FOPTICS's ordering loop compares these values
    directly, so the kernel must never perturb a near-tie.  ``block``
    overrides the automatic memory-bounded column-block width (see
    :data:`DENSITY_BLOCK_ELEMENTS`).
    """
    n, n_samples, m = samples.shape
    width = _block_width(n * n_samples * m, n, block)
    out = np.empty((n, n))

    def fill(rows: FloatArray, columns: FloatArray) -> FloatArray:
        diff = rows[:, None] - columns[None]
        return np.sqrt(
            np.einsum("rbsm,rbsm->rbs", diff, diff)
        ).mean(axis=2)

    # Rows are chunked too, so the difference temporary really is
    # bounded by the budget (column blocking alone would still
    # materialize all remaining rows against each column block).
    row_chunk = max(1, width)
    for i0 in range(0, n, width):
        i1 = min(i0 + width, n)
        columns = samples[i0:i1]
        out[i0:i1, i0:i1] = fill(columns, columns)
        for r0 in range(i1, n, row_chunk):
            r1 = min(r0 + row_chunk, n)
            dist = fill(samples[r0:r1], columns)
            out[r0:r1, i0:i1] = dist
            out[i0:i1, r0:r1] = dist.T
    np.fill_diagonal(out, 0.0)
    return out
