"""Clustering algorithms (S6-S16): UCPC plus every paper competitor."""

from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    labels_from_clusters,
    validate_n_clusters,
)
from repro.clustering.cluster_stats import ClusterStats, ClusterStatsMatrix
from repro.clustering.fdbscan import FDBSCAN, auto_eps
from repro.clustering.foptics import FOPTICS
from repro.clustering.initialization import (
    kmeanspp_seed_indices,
    partition_from_seeds,
    random_partition,
    random_seed_indices,
)
from repro.clustering.kmeans import KMeans
from repro.clustering.minibatch import MiniBatchUKMeans
from repro.clustering.mmvar import MMVar
from repro.clustering.objectives import (
    j_hat,
    j_mm,
    j_uk,
    j_uk_lemma1,
    j_ucpc,
    j_ucpc_closed_form,
    sum_of_variances,
)
from repro.clustering.pruning import MinMaxBB, VDBiP
from repro.clustering.uahc import UAHC, MergeStep
from repro.clustering.ucpc import UCPC
from repro.clustering.ucpc_variants import UCPCLloyd, VarianceOnlyClustering
from repro.clustering.ukmeans import UKMeans, ukmeans_objective
from repro.clustering.ukmeans_basic import BasicUKMeans
from repro.clustering.ukmeans_bounded import BoundedUKMeans
from repro.clustering.ukmedoids import UKMedoids

__all__ = [
    "ClusteringResult",
    "UncertainClusterer",
    "labels_from_clusters",
    "validate_n_clusters",
    "ClusterStats",
    "ClusterStatsMatrix",
    "FDBSCAN",
    "auto_eps",
    "FOPTICS",
    "kmeanspp_seed_indices",
    "partition_from_seeds",
    "random_partition",
    "random_seed_indices",
    "KMeans",
    "MiniBatchUKMeans",
    "MMVar",
    "j_hat",
    "j_mm",
    "j_uk",
    "j_uk_lemma1",
    "j_ucpc",
    "j_ucpc_closed_form",
    "sum_of_variances",
    "MinMaxBB",
    "VDBiP",
    "UAHC",
    "MergeStep",
    "UCPC",
    "UCPCLloyd",
    "VarianceOnlyClustering",
    "UKMeans",
    "ukmeans_objective",
    "BasicUKMeans",
    "BoundedUKMeans",
    "UKMedoids",
]
