"""Basic UK-means [4] — sample-based expected distances (S9).

The original UK-means evaluates the expected distance

    ED_d(o, y) = ∫ d(x, y) f(x) dx

by averaging over a sample set drawn from each object's pdf, at cost
O(S·m) per object-centroid pair and O(I·S·k·n·m) total (the complexity
the paper quotes for "basic UK-means").  The sample sets are drawn once
in the off-line phase — excluded from the timed on-line loop, matching
the paper's timing methodology.

This implementation deliberately computes the Monte-Carlo average
literally (no algebraic shortcut), because its *cost profile* is part of
what Figure 4 of the paper measures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import PointMetric, SeedLike
from repro.clustering._repair import repair_empty_clusters
from repro.clustering._sampling import SampleCacheMixin
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import random_seed_indices
from repro.clustering.ukmeans import ukmeans_objective
from repro.exceptions import InvalidParameterError, warn_convergence
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


class BasicUKMeans(SampleCacheMixin, UncertainClusterer):
    """The original sample-integration UK-means of Chau et al. [4].

    Parameters
    ----------
    n_clusters:
        Number of output clusters ``k``.
    n_samples:
        Sample-set cardinality ``S`` per object for the ED integrals.
    max_iter:
        Iteration cap ``I``.
    metric:
        Optional point metric ``d``; ``None`` means squared Euclidean
        (with which the result coincides with fast UK-means up to Monte
        Carlo noise in ties).
    """

    name = "bUKM"

    def __init__(
        self,
        n_clusters: int,
        n_samples: int = 64,
        max_iter: int = 100,
        metric: Optional[PointMetric] = None,
    ):
        if n_samples < 1:
            raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = int(n_clusters)
        self.n_samples = int(n_samples)
        self.max_iter = int(max_iter)
        self.metric = metric

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset`` with sample-based expected distances."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)

        # Off-line phase: draw the per-object sample sets.
        samples = self._draw_samples(dataset, rng)
        sample_means = samples.mean(axis=1)

        seeds = random_seed_indices(n, k, rng)
        centers = sample_means[seeds].copy()

        watch = Stopwatch()
        iterations = 0
        converged = False
        assignment = np.full(n, -1, dtype=np.int64)
        ed_evaluations = 0
        with watch.running():
            for _ in range(self.max_iter):
                iterations += 1
                distances = self._expected_distances(samples, centers)
                ed_evaluations += n * k
                new_assignment = np.argmin(distances, axis=1).astype(np.int64)
                repair_empty_clusters(new_assignment, sample_means, centers, k)
                if np.array_equal(new_assignment, assignment):
                    converged = True
                    break
                assignment = new_assignment
                for c in range(k):
                    members = assignment == c
                    if members.any():
                        centers[c] = sample_means[members].mean(axis=0)
        if not converged:
            warn_convergence(
                f"basic UK-means hit max_iter={self.max_iter} before convergence"
            )
        return ClusteringResult(
            labels=assignment,
            objective=ukmeans_objective(dataset, assignment),
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            extras={"ed_evaluations": ed_evaluations, "n_samples": self.n_samples},
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _expected_distances(
        self, samples: np.ndarray, centers: np.ndarray
    ) -> np.ndarray:
        """Monte-Carlo ``ED_d(o_i, c_j)`` matrix, shape ``(n, k)``."""
        n = samples.shape[0]
        k = centers.shape[0]
        if self.metric is not None:
            out = np.empty((n, k))
            for i in range(n):
                for j in range(k):
                    total = 0.0
                    for row in samples[i]:
                        total += float(self.metric(row, centers[j]))
                    out[i, j] = total / samples.shape[1]
            return out
        # Literal Monte-Carlo mean of squared distances per pair:
        # diff has shape (n, S, k, m) chunked over centers to bound memory.
        out = np.empty((n, k))
        for j in range(k):
            diff = samples - centers[j]
            out[:, j] = np.einsum("nsm,nsm->ns", diff, diff).mean(axis=1)
        return out

