"""UK-medoids — K-medoids over pairwise expected distances [7] (S12).

Gullo, Ponti & Tagarelli's UK-medoids precomputes the full matrix of
squared expected distances ``ÊD(o_i, o_j)`` (an off-line phase the paper
excludes from timing, like UK-means' distance precomputation) and then
runs a PAM-style alternation: assign every object to the nearest medoid
and recompute each cluster's medoid as the member minimizing the summed
``ÊD`` to its cluster.

The on-line loop is O(I·n^2) in the worst case — which is exactly why
Figure 4 of the paper shows UK-medoids orders of magnitude slower than
the centroid-based algorithms.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import (
    kmeanspp_seed_indices,
    random_seed_indices,
)
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.distance import (
    pairwise_squared_expected_distances,
    validate_pairwise_ed,
)
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


class UKMedoids(UncertainClusterer):
    """UK-medoids [7]: PAM-style clustering on the ``ÊD`` matrix.

    Parameters
    ----------
    n_clusters:
        Number of output clusters ``k``.
    max_iter:
        Iteration cap.
    init:
        ``"random"`` or ``"kmeans++"`` seeding for the initial medoids.
    precomputed:
        Optional externally computed ``(n, n)`` ``ÊD`` matrix (reused
        across runs by the experiment harness to mimic the paper's
        off-line phase accounting).  Validated at construction —
        symmetry, finiteness and non-negativity — and **adopted as a
        view** when already float64 (see
        :func:`~repro.objects.distance.validate_pairwise_ed`): the
        caller's array is not copied, so later in-place mutation of it
        is visible to every subsequent :meth:`fit`.

    Notes
    -----
    ``pairwise_ed_cache`` is the engine's injection point (analogous to
    the sample-based algorithms' ``sample_cache``): the multi-restart
    runner computes :meth:`UncertainDataset.pairwise_ed` once per
    run-set and pins it here, so restarts skip the off-line phase
    entirely.  Resolution order in :meth:`fit` is ``pairwise_ed_cache``
    > ``precomputed`` > compute-from-dataset.
    """

    name = "UKmed"
    wants_pairwise_ed = True
    preferred_backend = "processes"

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        init: str = "random",
        precomputed: Optional[np.ndarray] = None,
    ):
        if init not in ("random", "kmeans++"):
            raise InvalidParameterError(
                f"init must be 'random' or 'kmeans++', got {init!r}"
            )
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.init = init
        if precomputed is not None:
            precomputed = validate_pairwise_ed(precomputed, name="precomputed")
        self.precomputed = precomputed
        #: Engine-injected shared ``ÊD`` matrix (trusted, not revalidated).
        self.pairwise_ed_cache: Optional[np.ndarray] = None

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset``; see class docstring."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)

        # Off-line phase: the pairwise ÊD matrix (Lemma 3 closed form).
        # The engine-injected cache wins over the constructor matrix so
        # one configured instance can still ride the shared plane.
        if self.pairwise_ed_cache is not None:
            distances = np.asarray(self.pairwise_ed_cache, dtype=np.float64)
            if distances.shape != (n, n):
                raise InvalidParameterError(
                    f"pairwise_ed_cache matrix must be ({n}, {n}), "
                    f"got {distances.shape}"
                )
        elif self.precomputed is not None:
            distances = self.precomputed
            if distances.shape != (n, n):
                raise InvalidParameterError(
                    f"precomputed matrix must be ({n}, {n}), got {distances.shape}"
                )
        else:
            distances = pairwise_squared_expected_distances(dataset)

        if self.init == "kmeans++":
            medoids = kmeanspp_seed_indices(dataset, k, rng)
        else:
            medoids = random_seed_indices(n, k, rng)

        watch = Stopwatch()
        iterations = 0
        converged = False
        reseeded = 0
        with watch.running():
            assignment = np.argmin(distances[:, medoids], axis=1).astype(np.int64)
            for _ in range(self.max_iter):
                iterations += 1
                new_medoids = medoids.copy()
                reseed_taken = np.zeros(n, dtype=bool)
                for c in range(k):
                    members = np.flatnonzero(assignment == c)
                    if members.size == 0:
                        # Reseed an empty cluster with the worst-served
                        # object that is not already a medoid — picking
                        # a current (or freshly chosen) medoid would
                        # silently collapse the clustering to k-1
                        # distinct medoids.
                        own_cost = distances[
                            np.arange(n), medoids[assignment]
                        ].copy()
                        own_cost[medoids] = -np.inf
                        own_cost[new_medoids] = -np.inf
                        candidate = int(np.argmax(own_cost))
                        if own_cost[candidate] == -np.inf:
                            # Every object is already a medoid (k == n);
                            # keep the old medoid for this cluster.
                            continue
                        new_medoids[c] = candidate
                        reseed_taken[candidate] = True
                        reseeded += 1
                        continue
                    # Medoid = member minimizing summed ÊD within the
                    # cluster, skipping members an earlier empty cluster
                    # just took as its reseed target (the same collapse
                    # hazard from the other direction).
                    within = distances[np.ix_(members, members)].sum(axis=1)
                    free = ~reseed_taken[members]
                    if free.any():
                        members = members[free]
                        within = within[free]
                    new_medoids[c] = int(members[np.argmin(within)])
                new_assignment = np.argmin(
                    distances[:, new_medoids], axis=1
                ).astype(np.int64)
                if np.array_equal(new_assignment, assignment) and np.array_equal(
                    new_medoids, medoids
                ):
                    converged = True
                    break
                medoids = new_medoids
                assignment = new_assignment
        if not converged:
            warnings.warn(
                f"UK-medoids hit max_iter={self.max_iter} before convergence",
                ConvergenceWarning,
                stacklevel=2,
            )
        objective = float(
            distances[np.arange(n), medoids[assignment]].sum()
        )
        return ClusteringResult(
            labels=assignment,
            objective=objective,
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            extras={"medoids": medoids.tolist(), "reseeded": reseeded},
        )
